"""Snapshot persistence and capacity management.

The paper's §7 asks how checkpoint/restore behaves "as a service",
including "even bigger function code sizes and concurrent snapshots" —
which makes the snapshot registry's footprint a real concern. This
module adds:

* :class:`SnapshotArchive` — serialized snapshots stored through a
  pluggable blob backend (the simulated VFS, or a real directory on
  the host);
* :class:`EvictingSnapshotStore` — a capacity-bounded store that spills
  least-recently-used snapshots to the archive and faults them back in
  transparently on the next restore.
"""

from __future__ import annotations

import os
import pathlib
from collections import OrderedDict
from typing import Dict, List, Optional, Protocol

from repro.core.store import SnapshotKey, SnapshotNotFound, SnapshotStore
from repro.criu.images import CheckpointImage
from repro.criu.serialize import deserialize_image, serialize_image
from repro.osproc.filesystem import FileSystem


class BlobBackend(Protocol):
    """Where serialized snapshots live."""

    def write(self, name: str, blob: bytes) -> None: ...
    def read(self, name: str) -> bytes: ...
    def delete(self, name: str) -> None: ...
    def exists(self, name: str) -> bool: ...
    def names(self) -> List[str]: ...


class VfsBackend:
    """Blob storage inside the simulated VFS."""

    def __init__(self, fs: FileSystem, root: str = "/var/lib/prebake") -> None:
        self.fs = fs
        self.root = root.rstrip("/")

    def _path(self, name: str) -> str:
        return f"{self.root}/{name}.img"

    def write(self, name: str, blob: bytes) -> None:
        path = self._path(name)
        if self.fs.exists(path):
            self.fs.remove(path)
        self.fs.create(path, content=blob)

    def read(self, name: str) -> bytes:
        file = self.fs.lookup(self._path(name))
        if file.content is None:
            raise SnapshotNotFound(f"archive entry {name!r} has no content")
        return file.content

    def delete(self, name: str) -> None:
        self.fs.remove(self._path(name))

    def exists(self, name: str) -> bool:
        return self.fs.exists(self._path(name))

    def names(self) -> List[str]:
        prefix = f"{self.root}/"
        return [p[len(prefix):-4] for p in self.fs.iter_paths()
                if p.startswith(prefix) and p.endswith(".img")]


class DirBackend:
    """Blob storage in a real directory on the host."""

    def __init__(self, root: str) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, name: str) -> pathlib.Path:
        return self.root / f"{name}.img"

    def write(self, name: str, blob: bytes) -> None:
        self._path(name).write_bytes(blob)

    def read(self, name: str) -> bytes:
        path = self._path(name)
        if not path.exists():
            raise SnapshotNotFound(f"no archived snapshot {name!r}")
        return path.read_bytes()

    def delete(self, name: str) -> None:
        os.unlink(self._path(name))

    def exists(self, name: str) -> bool:
        return self._path(name).exists()

    def names(self) -> List[str]:
        return sorted(p.stem for p in self.root.glob("*.img"))


def _archive_name(key: SnapshotKey) -> str:
    return f"{key.function}--v{key.version}--{key.runtime_kind}--{key.policy}"


class SnapshotArchive:
    """Serialized snapshot storage keyed by :class:`SnapshotKey`."""

    def __init__(self, backend: BlobBackend) -> None:
        self.backend = backend

    def save(self, key: SnapshotKey, image: CheckpointImage) -> int:
        """Serialize and store; returns the blob size in bytes."""
        blob = serialize_image(image)
        self.backend.write(_archive_name(key), blob)
        return len(blob)

    def load(self, key: SnapshotKey) -> CheckpointImage:
        return deserialize_image(self.backend.read(_archive_name(key)))

    def delete(self, key: SnapshotKey) -> None:
        self.backend.delete(_archive_name(key))

    def contains(self, key: SnapshotKey) -> bool:
        return self.backend.exists(_archive_name(key))

    def __len__(self) -> int:
        return len(self.backend.names())


class EvictingSnapshotStore(SnapshotStore):
    """A snapshot store bounded by in-memory capacity.

    When adding a snapshot would exceed ``capacity_mib``, the least
    recently *used* (stored or restored) snapshots spill to the archive;
    a later ``get`` faults them back in (and may evict others in turn).
    """

    def __init__(self, capacity_mib: float,
                 archive: Optional[SnapshotArchive] = None) -> None:
        super().__init__()
        if capacity_mib <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_mib}")
        self.capacity_mib = capacity_mib
        self.archive = archive
        self._lru: "OrderedDict[SnapshotKey, None]" = OrderedDict()
        self.evictions = 0
        self.faults = 0

    # -- internals -------------------------------------------------------------

    def _touch(self, key: SnapshotKey) -> None:
        self._lru.pop(key, None)
        self._lru[key] = None

    def _evict_until_fits(self, incoming_mib: float, protect: SnapshotKey) -> None:
        while self._lru and self.total_mib + incoming_mib > self.capacity_mib:
            victim = next((k for k in self._lru if k != protect), None)
            if victim is None:
                break
            image = self.peek(victim)
            if self.archive is not None and image is not None:
                self.archive.save(victim, image)
            super().delete(victim)
            del self._lru[victim]
            self.evictions += 1

    # -- overridden API ------------------------------------------------------------

    def put(self, key: SnapshotKey, image: CheckpointImage, now_ms: float = 0.0) -> None:
        if image.total_mib > self.capacity_mib:
            raise ValueError(
                f"snapshot {key} ({image.total_mib:.1f} MiB) exceeds the "
                f"store capacity ({self.capacity_mib:.1f} MiB)"
            )
        self._evict_until_fits(image.total_mib, protect=key)
        super().put(key, image, now_ms=now_ms)
        self._touch(key)

    def get(self, key: SnapshotKey) -> CheckpointImage:
        if not super().contains(key):
            if self.archive is None or not self.archive.contains(key):
                raise SnapshotNotFound(str(key))
            image = self.archive.load(key)
            self.faults += 1
            self.put(key, image)
        self._touch(key)
        return super().get(key)

    def contains(self, key: SnapshotKey) -> bool:
        if super().contains(key):
            return True
        return self.archive is not None and self.archive.contains(key)

    def delete(self, key: SnapshotKey) -> None:
        if super().contains(key):
            super().delete(key)
            self._lru.pop(key, None)
        if self.archive is not None and self.archive.contains(key):
            self.archive.delete(key)
