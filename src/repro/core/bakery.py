"""Checkpoint-as-a-service: concurrent snapshot generation (paper §7).

"We plan to evaluate the checkpoint/restore as a service including
aspects such as the performance to deal with even bigger function code
sizes and concurrent snapshots."

:class:`BakeService` models a build farm: bake jobs queue against a
fixed number of builder workers; each bake occupies a worker for the
(calibrated) bake duration of its function. The experiment it enables:
how does deploy latency behave when many functions (or versions) bake
at once, and how does worker count trade against queue wait?
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.core.bake import Prebaker
from repro.core.policy import AfterReady, SnapshotPolicy
from repro.functions.base import FunctionApp, make_app
from repro.sim.engine import Simulation
from repro.sim.rng import _derive_seed


def measure_bake_duration(function, policy: SnapshotPolicy = AfterReady(),
                          seed: int = 42) -> float:
    """Measure one bake's duration (ms) in a scratch world."""
    from repro import make_world  # local import: avoids a package cycle
    factory = function if callable(function) else (lambda: make_app(function))
    world = make_world(seed=_derive_seed(seed, "bake-oracle"))
    prebaker = Prebaker(world.kernel)
    report = prebaker.bake(factory(), policy=policy)
    return report.bake_duration_ms


@dataclass
class BakeJob:
    """One queued snapshot-generation request."""

    job_id: int
    function: str
    duration_ms: float
    submitted_ms: float
    started_ms: float = -1.0
    finished_ms: float = -1.0

    @property
    def queue_wait_ms(self) -> float:
        return self.started_ms - self.submitted_ms

    @property
    def turnaround_ms(self) -> float:
        return self.finished_ms - self.submitted_ms

    @property
    def done(self) -> bool:
        return self.finished_ms >= 0


@dataclass
class BakeServiceMetrics:
    jobs: List[BakeJob] = field(default_factory=list)

    @property
    def makespan_ms(self) -> float:
        done = [j for j in self.jobs if j.done]
        if not done:
            return 0.0
        return max(j.finished_ms for j in done) - min(j.submitted_ms for j in done)

    def wait_quantile(self, q: float) -> float:
        from repro.bench.stats import quantile
        waits = [j.queue_wait_ms for j in self.jobs if j.done]
        return quantile(waits, q) if waits else 0.0


class BakeService:
    """FIFO bake queue served by ``workers`` concurrent builders."""

    def __init__(self, sim: Simulation, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.sim = sim
        self.workers = workers
        self.metrics = BakeServiceMetrics()
        self._queue: Deque[BakeJob] = deque()
        self._busy_workers = 0
        self._job_ids = itertools.count(1)
        self._durations: Dict[str, float] = {}

    def register_function(self, name: str, bake_duration_ms: float) -> None:
        """Declare a function's bake cost (from :func:`measure_bake_duration`)."""
        if bake_duration_ms <= 0:
            raise ValueError(f"bake duration must be positive, got {bake_duration_ms}")
        self._durations[name] = bake_duration_ms

    def submit(self, function: str, at_ms: Optional[float] = None) -> None:
        """Schedule a bake request (defaults to now)."""
        duration = self._durations.get(function)
        if duration is None:
            raise KeyError(
                f"function {function!r} not registered; "
                f"known: {sorted(self._durations)}"
            )
        when = self.sim.now if at_ms is None else at_ms
        self.sim.schedule_at(when, lambda: self._enqueue(function, duration),
                             label=f"bake-submit:{function}")

    def run(self) -> BakeServiceMetrics:
        self.sim.run()
        return self.metrics

    # -- internals ---------------------------------------------------------------

    def _enqueue(self, function: str, duration: float) -> None:
        job = BakeJob(
            job_id=next(self._job_ids),
            function=function,
            duration_ms=duration,
            submitted_ms=self.sim.now,
        )
        self.metrics.jobs.append(job)
        self._queue.append(job)
        self._pump()

    def _pump(self) -> None:
        while self._queue and self._busy_workers < self.workers:
            job = self._queue.popleft()
            self._busy_workers += 1
            job.started_ms = self.sim.now
            self.sim.schedule_in(job.duration_ms,
                                 lambda j=job: self._finish(j),
                                 label=f"bake-run:{job.function}")

    def _finish(self, job: BakeJob) -> None:
        job.finished_ms = self.sim.now
        self._busy_workers -= 1
        self._pump()


def registry_growth_curve(
    functions: List[str],
    policy: SnapshotPolicy = AfterReady(),
    seed: int = 42,
) -> List[Dict[str, float]]:
    """Registry footprint as functions accumulate in one shared store.

    Bakes ``functions`` one by one into a single world's content-
    addressed :class:`~repro.core.store.SnapshotStore` and records the
    cumulative logical vs. physical bytes after each deploy. With a
    shared runtime base the physical curve grows sublinearly — the
    registry-engineering claim the dedup experiment renders.
    """
    from repro import make_world  # local import: avoids a package cycle
    from repro.core.manager import PrebakeManager
    world = make_world(seed=_derive_seed(seed, "registry-growth"))
    manager = PrebakeManager(world.kernel)
    points: List[Dict[str, float]] = []
    for count, name in enumerate(functions, start=1):
        manager.deploy(make_app(name), policy=policy)
        store = manager.store
        points.append({
            "functions": float(count),
            "logical_mib": store.logical_bytes / (1024 * 1024),
            "physical_mib": store.physical_bytes / (1024 * 1024),
            "dedup_ratio": store.dedup_ratio,
        })
    return points


def bake_farm_sweep(
    functions: List[str],
    submissions: int,
    worker_counts: List[int],
    seed: int = 42,
) -> Dict[int, BakeServiceMetrics]:
    """Sweep builder concurrency for a burst of bake requests.

    ``submissions`` requests (cycling through ``functions``) all arrive
    at t=0; returns metrics per worker count.
    """
    durations = {name: measure_bake_duration(name, seed=seed)
                 for name in functions}
    results: Dict[int, BakeServiceMetrics] = {}
    for workers in worker_counts:
        sim = Simulation()
        service = BakeService(sim, workers=workers)
        for name, duration in durations.items():
            service.register_function(name, duration)
        for i in range(submissions):
            service.submit(functions[i % len(functions)], at_ms=0.0)
        results[workers] = service.run()
    return results
