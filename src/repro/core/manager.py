"""PrebakeManager: the public facade tying the technique together.

One manager per simulated world. It owns the snapshot store, bakes on
deploy, and hands out starters — the object a FaaS platform (or the
quickstart example) interacts with.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro import obs
from repro.core.bake import BakeReport, Prebaker
from repro.core.policy import AfterReady, SnapshotPolicy
from repro.core.starters import (
    PrebakeStarter,
    ReplicaHandle,
    Starter,
    VanillaStarter,
)
from repro.core.store import SnapshotKey, SnapshotStore
from repro.criu.restore import RestoreMode
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.functions.base import FunctionApp
from repro.osproc.kernel import Kernel


class PrebakeManager:
    """Bake-on-deploy and start-from-snapshot orchestration."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.store = SnapshotStore()
        self.prebaker = Prebaker(kernel, self.store)
        self._versions: Dict[str, int] = {}

    # -- deploy-time ------------------------------------------------------------

    def deploy(
        self,
        app: FunctionApp,
        policy: SnapshotPolicy = AfterReady(),
    ) -> BakeReport:
        """Register a new function version and bake its snapshot."""
        version = self._versions.get(app.name, 0) + 1
        self._versions[app.name] = version
        with obs.span(self.kernel, "deploy", function=app.name,
                      version=version, policy=policy.key):
            report = self.prebaker.bake(app, policy=policy, version=version)
        obs.record(self.kernel, obs.flight.DEPLOY, function=app.name,
                   version=version, policy=policy.key)
        obs.count(self.kernel, "prebake_deploy_total",
                  labels={"function": app.name})
        return report

    def sync_version(self, function: str, version: int) -> None:
        """Record that ``version`` of ``function`` was baked externally
        (e.g. by a platform builder driving the Prebaker directly)."""
        self._versions[function] = max(self._versions.get(function, 0), version)

    def current_version(self, function: str) -> int:
        version = self._versions.get(function)
        if version is None:
            raise KeyError(f"function {function!r} was never deployed")
        return version

    # -- start-time --------------------------------------------------------------

    def rebake(self, app: FunctionApp, policy: SnapshotPolicy,
               version: int) -> BakeReport:
        """Re-bake ``app`` under an *existing* (policy, version) key.

        The recovery path after a quarantined snapshot: unlike
        :meth:`deploy` it does not mint a new version, so starters
        holding the old key pick up the fresh image transparently.
        """
        report = self.prebaker.bake(app, policy=policy, version=version)
        obs.count(self.kernel, "prebake_rebake_total",
                  labels={"function": app.name})
        return report

    def starter(
        self,
        technique: str,
        policy: SnapshotPolicy = AfterReady(),
        restore_mode: RestoreMode = RestoreMode.EAGER,
        in_memory: bool = False,
        version: int = 1,
        retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
        fallback: bool = True,
        repair: bool = True,
        pipeline_workers: int = 1,
        chunk_cache=None,
        cache_policy: Optional[str] = None,
        shard_store=None,
    ) -> Starter:
        """Build a starter for ``technique`` ("vanilla" | "prebake")."""
        if technique == "vanilla":
            return VanillaStarter(self.kernel)
        if technique == "prebake":
            return PrebakeStarter(
                self.kernel,
                self.store,
                policy=policy,
                restore_mode=restore_mode,
                in_memory=in_memory,
                version=version,
                retry_policy=retry_policy,
                fallback=fallback,
                rebake=lambda app: self.rebake(app, policy, version),
                repair=repair,
                pipeline_workers=pipeline_workers,
                chunk_cache=chunk_cache,
                cache_policy=cache_policy,
                shard_store=shard_store,
            )
        raise ValueError(f"unknown technique {technique!r}")

    def start_replica(
        self,
        app: FunctionApp,
        technique: str = "prebake",
        policy: SnapshotPolicy = AfterReady(),
    ) -> ReplicaHandle:
        """Convenience: start one replica with the given technique,
        baking on first use if needed."""
        if technique == "prebake":
            version = self._versions.get(app.name, 0)
            key = SnapshotKey(app.name, app.runtime_kind, policy.key, max(version, 1))
            if version == 0 or not self.store.contains(key):
                self.deploy(app, policy=policy)
            version = self._versions[app.name]
            starter = self.starter(technique, policy=policy, version=version)
        else:
            starter = self.starter(technique, policy=policy)
        return starter.start(app)
