"""The bake pipeline: build-time snapshot generation (paper §3.1).

"The prebaking technique creates function snapshots only when the user
deploys a new function version. ... its more appropriate for the
Function Builder to trigger the function snapshot. ... This has the
additional advantage of not delaying the function execution, since
function building executes before the function is available."

``Prebaker.bake`` starts the function the vanilla way, drives it to the
point the policy asks for (ready, or warmed with n requests), dumps it,
and discards the donor process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import obs
from repro.core.policy import AfterReady, AfterRuntimeBoot, AfterWarmup, SnapshotPolicy
from repro.core.starters import RUNTIME_BINARIES, launch_vanilla
from repro.core.store import SnapshotKey, SnapshotStore
from repro.criu.checkpoint import CheckpointEngine
from repro.criu.images import CheckpointImage
from repro.criu.imgdiff import diff_images
from repro.functions.base import FunctionApp
from repro.osproc.kernel import Kernel
from repro.osproc.process import Process
from repro.runtime import RUNTIME_KINDS
from repro.runtime.base import Request


class BakeError(Exception):
    """Snapshot generation failure."""


@dataclass
class BakeReport:
    """What one bake produced (surfaced in build logs)."""

    key: SnapshotKey
    image: CheckpointImage
    bake_duration_ms: float
    warmup_requests: int

    @property
    def snapshot_mib(self) -> float:
        return self.image.total_mib


class Prebaker:
    """Build-time snapshot generator."""

    def __init__(self, kernel: Kernel, store: Optional[SnapshotStore] = None) -> None:
        self.kernel = kernel
        # `store or ...` would discard an *empty* store (it is falsy
        # because SnapshotStore defines __len__), so test identity.
        self.store = store if store is not None else SnapshotStore()
        self.checkpoint_engine = CheckpointEngine(kernel)

    def bake(
        self,
        app: FunctionApp,
        policy: SnapshotPolicy = AfterReady(),
        version: int = 1,
        parent: Optional[Process] = None,
    ) -> BakeReport:
        """Produce and store a snapshot of ``app`` under ``policy``."""
        kernel = self.kernel
        started = kernel.clock.now
        warmup_requests = 0

        with obs.span(kernel, "bake", function=app.name, policy=policy.key,
                      version=version, runtime=app.runtime_kind):
            with obs.span(kernel, "bake.donor", function=app.name):
                if isinstance(policy, AfterRuntimeBoot):
                    donor = self._boot_only(app, parent)
                else:
                    handle = launch_vanilla(kernel, app, parent=parent)
                    donor = handle.process
                    if isinstance(policy, AfterWarmup):
                        for _ in range(policy.requests):
                            response = handle.invoke(
                                Request(body=policy.warmup_body))
                            if not response.ok:
                                raise BakeError(
                                    f"warm-up request failed with status "
                                    f"{response.status} for function {app.name!r}"
                                )
                            warmup_requests += 1

            image = self.checkpoint_engine.dump(
                donor, leave_running=False, warm=policy.warm
            )
            key = SnapshotKey(
                function=app.name,
                runtime_kind=app.runtime_kind,
                policy=policy.key,
                version=version,
            )
            # Version-to-version image diff (repro.criu.imgdiff): how
            # much of the previous version's snapshot the new one
            # reuses — the delta a content-addressed registry ships.
            if version > 1:
                previous = self.store.peek(SnapshotKey(
                    function=app.name, runtime_kind=app.runtime_kind,
                    policy=policy.key, version=version - 1))
                if previous is not None:
                    diff = diff_images(previous, image)
                    obs.gauge(kernel, "imgdiff_dedup_ratio",
                              diff.dedup_ratio,
                              labels={"function": app.name})
                    obs.gauge(kernel, "imgdiff_delta_mib",
                              diff.delta_bytes / (1024 * 1024),
                              labels={"function": app.name})
            with obs.span(kernel, "snapshot.store", function=app.name,
                          image=image.image_id):
                self.store.put(key, image, now_ms=kernel.clock.now)
            # Registry-level dedup accounting after the put: logical is
            # what monolithic storage would hold, physical what the
            # content-addressed chunk store holds.
            obs.gauge(kernel, "snapshot_store_dedup_ratio",
                      self.store.dedup_ratio)
            obs.gauge(kernel, "snapshot_store_logical_mib",
                      self.store.logical_bytes / (1024 * 1024))
            obs.gauge(kernel, "snapshot_store_physical_mib",
                      self.store.physical_bytes / (1024 * 1024))

        duration = kernel.clock.now - started
        obs.count(kernel, "prebake_bake_total",
                  labels={"function": app.name, "policy": policy.key})
        obs.observe(kernel, "prebake_bake_duration_ms", duration,
                    labels={"function": app.name})
        obs.gauge(kernel, "prebake_snapshot_mib", image.total_mib,
                  labels={"function": app.name, "policy": policy.key})
        return BakeReport(
            key=key,
            image=image,
            bake_duration_ms=duration,
            warmup_requests=warmup_requests,
        )

    def _boot_only(self, app: FunctionApp, parent: Optional[Process]) -> Process:
        """Start the runtime but stop before APPINIT (ablation point)."""
        kernel = self.kernel
        runtime_cls = RUNTIME_KINDS.get(app.runtime_kind)
        if runtime_cls is None:
            raise BakeError(f"unknown runtime kind {app.runtime_kind!r}")
        binary = RUNTIME_BINARIES[app.runtime_kind]
        kernel.fs.ensure(binary, size=128 * 1024)
        proc = kernel.clone(parent or kernel.init_process, comm=app.runtime_kind)
        kernel.execve(proc, binary, argv=[binary, "-jar", app.artifact_path()])
        runtime = runtime_cls(kernel, proc)
        runtime.boot()
        return proc
