"""Snapshot-timing policies (paper §3.1 and §4.2.2).

"The prebaking technique allows the creation of snapshots at any point
of the function setup." The paper evaluates two points and finds the
choice decisive:

* :class:`AfterReady` — right after the function can take requests
  (PB-NOWarmup in Table 1);
* :class:`AfterWarmup` — after the function served n ≥ 1 requests,
  "which forces the Java runtime to compile and optimize the code"
  (PB-Warmup).

:class:`AfterRuntimeBoot` snapshots even earlier (runtime booted,
application not yet loaded) and exists for the snapshot-point ablation
the design discussion motivates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass(frozen=True)
class SnapshotPolicy:
    """Base policy; concrete subclasses pick the snapshot point."""

    @property
    def warm(self) -> bool:
        """Whether the snapshot contains a warmed (JIT-compiled) runtime."""
        return False

    @property
    def key(self) -> str:
        """Stable identifier used in snapshot-store keys."""
        raise NotImplementedError


@dataclass(frozen=True)
class AfterRuntimeBoot(SnapshotPolicy):
    """Snapshot after RTS, before APPINIT (ablation point)."""

    @property
    def key(self) -> str:
        return "after-runtime-boot"


@dataclass(frozen=True)
class AfterReady(SnapshotPolicy):
    """Snapshot once the function is ready to serve (PB-NOWarmup)."""

    @property
    def key(self) -> str:
        return "after-ready"


@dataclass(frozen=True)
class AfterWarmup(SnapshotPolicy):
    """Snapshot after ``requests`` warm-up invocations (PB-Warmup).

    "The warmup procedure consisted of sending one request to the
    serverless function, which triggers the code compilation."
    """

    requests: int = 1
    warmup_body: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"warmup needs >= 1 request, got {self.requests}")

    @property
    def warm(self) -> bool:
        return True

    @property
    def key(self) -> str:
        return f"after-warmup-{self.requests}"


def policy_from_key(key: str) -> SnapshotPolicy:
    """Inverse of :attr:`SnapshotPolicy.key` (used when a snapshot key
    travels inside a container image and the policy must be rebuilt)."""
    if key == "after-ready":
        return AfterReady()
    if key == "after-runtime-boot":
        return AfterRuntimeBoot()
    if key.startswith("after-warmup-"):
        suffix = key[len("after-warmup-"):]
        try:
            return AfterWarmup(requests=int(suffix))
        except ValueError:
            pass
    raise ValueError(f"unparseable snapshot policy key {key!r}")
