"""Prebaking: the paper's contribution (§3).

Prebaking "reduces function start-up time by restoring snapshots of
previously started function runtimes". The pieces:

* :mod:`repro.core.policy` — *when* along the start-up lifecycle to
  take the snapshot (the paper's key sensitivity: after-ready vs
  after-warmup changes speed-ups from ~127 % to ~404 % on small
  functions and ~121 % to ~1932 % on big ones);
* :mod:`repro.core.store` — the snapshot registry replicas restore from
  (one snapshot serves any number of replicas, §3.1);
* :mod:`repro.core.bake` — the build-time pipeline that starts the
  function, optionally warms it, and checkpoints it;
* :mod:`repro.core.starters` — the two replica start methods compared
  throughout the evaluation: ``VanillaStarter`` (fork-exec) and
  ``PrebakeStarter`` (CRIU restore).
"""

from repro.core.policy import (
    AfterReady,
    AfterRuntimeBoot,
    AfterWarmup,
    SnapshotPolicy,
)
from repro.core.store import SnapshotKey, SnapshotStore
from repro.core.bake import BakeError, Prebaker
from repro.core.starters import (
    PrebakeStarter,
    ReplicaHandle,
    StartError,
    Starter,
    VanillaStarter,
)
from repro.core.manager import PrebakeManager
from repro.core.persistence import (
    DirBackend,
    EvictingSnapshotStore,
    SnapshotArchive,
    VfsBackend,
)
from repro.core.bakery import BakeService, bake_farm_sweep

__all__ = [
    "SnapshotArchive",
    "EvictingSnapshotStore",
    "VfsBackend",
    "DirBackend",
    "BakeService",
    "bake_farm_sweep",
    "SnapshotPolicy",
    "AfterRuntimeBoot",
    "AfterReady",
    "AfterWarmup",
    "SnapshotKey",
    "SnapshotStore",
    "Prebaker",
    "BakeError",
    "Starter",
    "VanillaStarter",
    "PrebakeStarter",
    "ReplicaHandle",
    "StartError",
    "PrebakeManager",
]
