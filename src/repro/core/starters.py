"""Replica start methods: Vanilla (fork-exec) vs Prebake (restore).

These are the two treatments of the paper's 2^2 factorial experiment
(§4.1): "prebaking versus the usual start method, based on fork-exec
system calls (henceforth, the Vanilla method)".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import faults, obs
from repro.obs.log import get_logger
from repro.obs.profile import (
    RESTORE_BACKOFF,
    RESTORE_REPAIR,
    RESTORE_SUBTREE_VERIFY,
)
from repro.core.policy import AfterReady, SnapshotPolicy
from repro.core.store import SnapshotKey, SnapshotNotFound, SnapshotStore
from repro.criu.images import CheckpointImage
from repro.criu.restore import RestoreEngine, RestoreMode
from repro.faults.errors import PlatformError, RestoreFailed, SnapshotCorrupted
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.functions.base import FunctionApp
from repro.osproc.kernel import Kernel
from repro.osproc.process import Process
from repro.runtime import RUNTIME_KINDS
from repro.runtime.base import ManagedRuntime, Request, Response

_log = get_logger("prebake")


class StartError(PlatformError):
    """Replica could not be started."""


RUNTIME_BINARIES = {
    "jvm": "/opt/jvm/bin/java",
    "python": "/usr/bin/python3",
    "nodejs": "/usr/bin/node",
}


@dataclass
class ReplicaHandle:
    """A started function replica plus its start-up timeline."""

    process: Process
    runtime: ManagedRuntime
    technique: str
    spawned_at_ms: float
    ready_at_ms: float
    first_response_at_ms: Optional[float] = None

    def invoke(self, request: Optional[Request] = None) -> Response:
        """Send one request to the replica."""
        kernel = self.runtime.kernel
        request = request or Request()
        request.arrival_ms = kernel.clock.now
        first = self.first_response_at_ms is None
        with obs.span(kernel, "replica.serve", context=request.trace,
                      technique=self.technique,
                      request_id=request.request_id, first_request=first):
            response = self.runtime.handle(request)
        if first:
            self.first_response_at_ms = response.finished_ms
        obs.observe(kernel, "replica_service_ms", response.service_ms,
                    labels={"technique": self.technique})
        return response

    def startup_ms(self, metric: str = "ready") -> float:
        """Start-up duration under the requested metric.

        ``"ready"`` = spawn → ready-to-serve (paper's real functions);
        ``"first_response"`` = spawn → first response (synthetic
        functions, whose class loading triggers on first invocation).
        """
        if metric == "ready":
            return self.ready_at_ms - self.spawned_at_ms
        if metric == "first_response":
            if self.first_response_at_ms is None:
                raise StartError("no request has completed yet")
            return self.first_response_at_ms - self.spawned_at_ms
        raise ValueError(f"unknown startup metric {metric!r}")

    def kill(self) -> None:
        self.runtime.kernel.kill(self.process.pid)


class Starter:
    """Common interface for replica start methods."""

    technique = "abstract"

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel

    def start(self, app: FunctionApp, parent: Optional[Process] = None) -> ReplicaHandle:
        raise NotImplementedError


def launch_vanilla(kernel: Kernel, app: FunctionApp,
                   parent: Optional[Process] = None) -> ReplicaHandle:
    """The standard start path: clone, exec, runtime boot, app init."""
    runtime_cls = RUNTIME_KINDS.get(app.runtime_kind)
    if runtime_cls is None:
        raise StartError(f"unknown runtime kind {app.runtime_kind!r}")
    binary = RUNTIME_BINARIES[app.runtime_kind]
    kernel.fs.ensure(binary, size=128 * 1024)
    parent = parent or kernel.init_process
    spawned_at = kernel.clock.now
    with obs.span(kernel, "replica.start", technique="vanilla",
                  function=app.name, runtime=app.runtime_kind):
        proc = kernel.clone(parent, comm=app.runtime_kind)
        kernel.execve(proc, binary, argv=[binary, "-jar", app.artifact_path()])
        runtime = runtime_cls(kernel, proc)
        with obs.span(kernel, "runtime.boot", runtime=app.runtime_kind):
            runtime.boot()
        with obs.span(kernel, "runtime.appinit", function=app.name):
            runtime.load_application(app)
    ready_at = kernel.clock.now
    obs.count(kernel, "replica_start_total",
              labels={"technique": "vanilla", "function": app.name})
    obs.observe(kernel, "replica_start_duration_ms", ready_at - spawned_at,
                labels={"technique": "vanilla", "function": app.name})
    return ReplicaHandle(
        process=proc,
        runtime=runtime,
        technique="vanilla",
        spawned_at_ms=spawned_at,
        ready_at_ms=ready_at,
    )


class VanillaStarter(Starter):
    """fork-exec + full runtime bootstrap (the state of the practice)."""

    technique = "vanilla"

    def start(self, app: FunctionApp, parent: Optional[Process] = None) -> ReplicaHandle:
        return launch_vanilla(self.kernel, app, parent=parent)


class PrebakeStarter(Starter):
    """Restore a previously baked snapshot instead of starting fresh.

    Production resilience lives here: failed restores are retried with
    capped exponential backoff (on simulated time), corrupted snapshots
    are quarantined — and rebaked when a ``rebake`` hook is wired in —
    and once the retry budget is spent the starter falls back to the
    vanilla fork/exec path, so a broken snapshot registry degrades a
    cold start to vanilla speed instead of failing the request.
    """

    technique = "prebake"

    def __init__(
        self,
        kernel: Kernel,
        store: SnapshotStore,
        policy: SnapshotPolicy = AfterReady(),
        restore_mode: RestoreMode = RestoreMode.EAGER,
        in_memory: bool = False,
        version: int = 1,
        retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
        fallback: bool = True,
        rebake: Optional[Callable[[FunctionApp], object]] = None,
        repair: bool = True,
        pipeline_workers: int = 1,
        chunk_cache=None,
        cache_policy: Optional[str] = None,
        shard_store=None,
    ) -> None:
        super().__init__(kernel)
        self.store = store
        self.policy = policy
        self.restore_mode = restore_mode
        self.in_memory = in_memory
        self.version = version
        self.retry_policy = retry_policy
        self.fallback = fallback
        self.rebake = rebake
        # Chunk-level repair from the content-addressed page store —
        # cheaper than quarantine + rebake when the corruption sits in
        # the page data; disable to force the legacy rebake-only path.
        self.repair = repair
        # Pipelined restore + node-local hot-chunk cache + sharded
        # store knobs travel straight into the engine; the defaults
        # (one worker, no cache, no shard store) keep the serial path
        # bit-identical.
        self.restore_engine = RestoreEngine(
            kernel, pipeline_workers=pipeline_workers,
            chunk_cache=chunk_cache, cache_policy=cache_policy,
            shard_store=shard_store)

    def snapshot_key(self, app: FunctionApp) -> SnapshotKey:
        return SnapshotKey(
            function=app.name,
            runtime_kind=app.runtime_kind,
            policy=self.policy.key,
            version=self.version,
        )

    def start(self, app: FunctionApp, parent: Optional[Process] = None) -> ReplicaHandle:
        kernel = self.kernel
        key = self.snapshot_key(app)
        labels = {"function": app.name}
        started_at = kernel.clock.now
        failure: Optional[PlatformError] = None
        for attempt in range(1, self.retry_policy.max_attempts + 1):
            try:
                image = self.store.get(key)
                faults.corrupt_image(kernel, image)
                handle = self._start_from_image(app, image, parent)
                # Request-observed start-up includes any retries that
                # preceded this successful attempt.
                handle.spawned_at_ms = started_at
                return handle
            except SnapshotCorrupted as exc:
                failure = exc
                # Corrupted page data can usually be rewritten from the
                # content-addressed chunk store — far cheaper than a
                # rebake and the key stays in circulation.
                if self.repair and self._repair_snapshot(key, labels):
                    obs.count(kernel, "prebake_restore_failures_total",
                              labels={**labels,
                                      "reason": type(failure).__name__})
                    continue  # retry immediately; repair is registry-side
                # Beyond repair: quarantine the poisoned snapshot so no
                # other replica restores it, then rebake when we can.
                self.store.quarantine(key)
                obs.record(kernel, obs.flight.SNAPSHOT_QUARANTINED,
                           function=app.name, version=self.version)
                obs.count(kernel, "prebake_snapshot_quarantined_total",
                          labels=labels)
                if self.rebake is not None:
                    self.rebake(app)
            except RestoreFailed as exc:
                failure = exc
            except SnapshotNotFound:
                # A registry miss is a configuration error, not a
                # runtime fault: without a rebake hook, stay loud
                # rather than silently serving vanilla forever.
                if self.rebake is None:
                    raise
                obs.count(kernel, "prebake_restore_failures_total",
                          labels={**labels, "reason": "SnapshotNotFound"})
                self.rebake(app)
                continue  # retry immediately; the registry miss cost nothing
            obs.count(kernel, "prebake_restore_failures_total",
                      labels={**labels, "reason": type(failure).__name__})
            if attempt < self.retry_policy.max_attempts:
                backoff = self.retry_policy.backoff_ms(attempt)
                # Inside the start span: CLIs that bound a trace
                # provider get this line stamped with trace_id=.
                _log.warning("restore.retry", function=app.name,
                             attempt=attempt,
                             reason=type(failure).__name__)
                obs.record(kernel, obs.flight.RESTORE_RETRY,
                           function=app.name, attempt=attempt,
                           backoff_ms=round(backoff, 3),
                           reason=type(failure).__name__)
                obs.observe(kernel, "prebake_retry_backoff_ms", backoff,
                            labels=labels)
                obs.count(kernel, "prebake_restore_retries_total", labels=labels)
                kernel.clock.advance(backoff)
                if kernel.profile is not None:
                    kernel.profile.record(RESTORE_BACKOFF, backoff,
                                          attempt=attempt,
                                          function=app.name)
        if failure is None:
            failure = StartError(
                f"prebake start of {app.name!r} exhausted "
                f"{self.retry_policy.max_attempts} attempts"
            )
        if not self.fallback:
            raise failure
        _log.warning("restore.fallback", function=app.name,
                     reason=type(failure).__name__,
                     attempts=self.retry_policy.max_attempts)
        obs.record(kernel, obs.flight.RESTORE_FALLBACK, function=app.name,
                   reason=type(failure).__name__,
                   attempts=self.retry_policy.max_attempts)
        obs.count(kernel, "prebake_fallback_total", labels=labels)
        with obs.span(kernel, "prebake.fallback", function=app.name,
                      reason=type(failure).__name__):
            handle = launch_vanilla(kernel, app, parent=parent)
        handle.spawned_at_ms = started_at
        return handle

    def _repair_snapshot(self, key: SnapshotKey, labels: dict) -> bool:
        """Try a chunk-level repair of the stored image; True on success."""
        kernel = self.kernel
        repair_start = kernel.clock.now
        repaired_chunks = self.store.repair(key)
        if repaired_chunks and kernel.profile is not None:
            # Registry-side chunk rewrites are free on the simulated
            # clock today; the zero-duration sample still puts the
            # repair on the critical-path ledger (count + chunks).
            kernel.profile.record(RESTORE_REPAIR,
                                  kernel.clock.now - repair_start,
                                  chunks=repaired_chunks,
                                  function=key.function)
        if not repaired_chunks:
            return False
        image = self.store.peek(key)
        if image is None:
            return False
        stats = self.store.last_repair_stats
        if stats.targeted and stats.verified_ok is not None:
            # Incremental verification: the repaired leaves were folded
            # back into the sealed Merkle tree and the root + meta
            # digest re-checked — no full-image re-hash needed. The
            # sample is zero-duration (registry-side work is free on
            # the simulated clock) but keeps the subtree verify and
            # its hash-op count on the critical-path ledger.
            if kernel.profile is not None:
                kernel.profile.record(RESTORE_SUBTREE_VERIFY, 0.0,
                                      chunks=stats.checked_chunks,
                                      hash_ops=stats.hash_ops,
                                      function=key.function)
            obs.count(kernel, "snapshot_subtree_verify_total", labels=labels)
            if not stats.verified_ok:
                # The subtree folded back to a different root: the
                # damage exceeds what the chunk store can reproduce;
                # fall through to quarantine + rebake.
                return False
        else:
            try:
                image.verify_integrity()
            except SnapshotCorrupted:
                # The chunk store could not reproduce the sealed content
                # (e.g. corruption predating the manifest); fall through
                # to quarantine + rebake.
                return False
        obs.record(kernel, obs.flight.SNAPSHOT_REPAIRED,
                   function=key.function, chunks=repaired_chunks)
        obs.count(kernel, "prebake_snapshot_repaired_total", labels=labels)
        obs.count(kernel, "snapshot_chunks_repaired_total",
                  value=float(repaired_chunks), labels=labels)
        return True

    def _start_from_image(self, app: FunctionApp, image: CheckpointImage,
                          parent: Optional[Process]) -> ReplicaHandle:
        kernel = self.kernel
        spawned_at = kernel.clock.now
        override = app.profile.restore_override_ms(image.warm)
        with obs.span(kernel, "replica.start", technique="prebake",
                      function=app.name, runtime=app.runtime_kind,
                      policy=self.policy.key):
            proc = self.restore_engine.restore(
                image,
                parent=parent,
                mode=self.restore_mode,
                in_memory=self.in_memory,
                duration_override_ms=override,
            )
            runtime = proc.payload.get("runtime")
            if runtime is None:
                raise StartError(
                    f"snapshot {image.image_id} did not contain a runtime")
            if not runtime.ready:
                # Earlier-point snapshots (e.g. AfterRuntimeBoot) resume a
                # booted-but-unloaded runtime; APPINIT still runs here.
                with obs.span(kernel, "runtime.appinit", function=app.name):
                    runtime.load_application(app)
        ready_at = kernel.clock.now
        obs.count(kernel, "replica_start_total",
                  labels={"technique": "prebake", "function": app.name})
        obs.observe(kernel, "replica_start_duration_ms", ready_at - spawned_at,
                    labels={"technique": "prebake", "function": app.name})
        return ReplicaHandle(
            process=proc,
            runtime=runtime,
            technique="prebake",
            spawned_at_ms=spawned_at,
            ready_at_ms=ready_at,
        )
