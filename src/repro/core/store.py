"""Snapshot store: the registry function replicas restore from.

"The same snapshot can be used to restore different Function Replicas
because all of them have the same state at the beginning of the
execution" (§3.1). The store keys snapshots by (function, runtime,
policy, version) and tracks restore counts and byte usage so platform
operators can reason about registry growth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.criu.images import CheckpointImage


class SnapshotNotFound(KeyError):
    """No snapshot stored under the requested key."""


@dataclass(frozen=True, order=True)
class SnapshotKey:
    """Identity of one baked snapshot."""

    function: str
    runtime_kind: str
    policy: str
    version: int = 1

    def __str__(self) -> str:
        return f"{self.function}@v{self.version}/{self.runtime_kind}/{self.policy}"


@dataclass
class StoredSnapshot:
    key: SnapshotKey
    image: CheckpointImage
    stored_at_ms: float
    restore_count: int = 0


class SnapshotStore:
    """In-memory snapshot registry with usage accounting."""

    def __init__(self) -> None:
        self._snapshots: Dict[SnapshotKey, StoredSnapshot] = {}
        self._quarantined: List[StoredSnapshot] = []

    def put(self, key: SnapshotKey, image: CheckpointImage, now_ms: float = 0.0) -> None:
        """Store (or replace — new function version) a snapshot."""
        image.validate()
        self._snapshots[key] = StoredSnapshot(key=key, image=image, stored_at_ms=now_ms)

    def get(self, key: SnapshotKey) -> CheckpointImage:
        entry = self._snapshots.get(key)
        if entry is None:
            raise SnapshotNotFound(
                f"no snapshot for {key}; stored: {[str(k) for k in sorted(self._snapshots)]}"
            )
        entry.restore_count += 1
        return entry.image

    def peek(self, key: SnapshotKey) -> Optional[CheckpointImage]:
        entry = self._snapshots.get(key)
        return entry.image if entry else None

    def contains(self, key: SnapshotKey) -> bool:
        return key in self._snapshots

    def delete(self, key: SnapshotKey) -> None:
        if key not in self._snapshots:
            raise SnapshotNotFound(str(key))
        del self._snapshots[key]

    def quarantine(self, key: SnapshotKey) -> bool:
        """Pull a (corrupted) snapshot out of circulation.

        The entry is kept on a quarantine list for forensics rather
        than deleted; returns whether anything was stored under the
        key. Missing keys are tolerated — two replicas may race to
        quarantine the same poisoned image.
        """
        entry = self._snapshots.pop(key, None)
        if entry is None:
            return False
        self._quarantined.append(entry)
        return True

    @property
    def quarantined_count(self) -> int:
        return len(self._quarantined)

    def quarantined_keys(self) -> List[SnapshotKey]:
        return [e.key for e in self._quarantined]

    def restore_count(self, key: SnapshotKey) -> int:
        entry = self._snapshots.get(key)
        return entry.restore_count if entry else 0

    def keys(self) -> List[SnapshotKey]:
        return sorted(self._snapshots)

    @property
    def total_bytes(self) -> int:
        return sum(e.image.total_bytes for e in self._snapshots.values())

    @property
    def total_mib(self) -> float:
        return self.total_bytes / (1024 * 1024)

    def __len__(self) -> int:
        return len(self._snapshots)
