"""Snapshot store: the registry function replicas restore from.

"The same snapshot can be used to restore different Function Replicas
because all of them have the same state at the beginning of the
execution" (§3.1). The store keys snapshots by (function, runtime,
policy, version) and tracks restore counts and byte usage so platform
operators can reason about registry growth.

Storage is content-addressed: every stored image is decomposed into
layered chunks in a shared :class:`~repro.criu.pagestore.PageStore`,
so the registry's *physical* footprint grows sublinearly in function
count when functions share a runtime base — ``logical_bytes`` is what
monolithic storage would hold, ``physical_bytes`` what the chunk store
actually holds, and ``dedup_ratio`` their quotient. The chunk payloads
double as parity data: :meth:`repair` rewrites corrupted pages of an
active image from the store instead of forcing a full rebake.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.criu.images import CheckpointImage, build_image_files
from repro.criu.pagestore import (
    LayeredImage,
    PageStore,
    layer_image,
    rebuild_vma_pages,
)


class SnapshotNotFound(KeyError):
    """No snapshot stored under the requested key."""


@dataclass(frozen=True, order=True)
class SnapshotKey:
    """Identity of one baked snapshot."""

    function: str
    runtime_kind: str
    policy: str
    version: int = 1

    def __str__(self) -> str:
        return f"{self.function}@v{self.version}/{self.runtime_kind}/{self.policy}"


@dataclass
class StoredSnapshot:
    key: SnapshotKey
    image: CheckpointImage
    stored_at_ms: float
    restore_count: int = 0


class SnapshotStore:
    """In-memory snapshot registry with content-addressed accounting."""

    def __init__(self, page_store: Optional[PageStore] = None) -> None:
        self._snapshots: Dict[SnapshotKey, StoredSnapshot] = {}
        self._quarantined: List[StoredSnapshot] = []
        self.pages = page_store if page_store is not None else PageStore()
        self._layered: Dict[SnapshotKey, LayeredImage] = {}

    def put(self, key: SnapshotKey, image: CheckpointImage, now_ms: float = 0.0) -> None:
        """Store (or replace — new function version) a snapshot."""
        image.validate()
        self._release_layers(key)
        self._snapshots[key] = StoredSnapshot(key=key, image=image, stored_at_ms=now_ms)
        self._layered[key] = layer_image(image, self.pages,
                                         base=self._delta_base(key, image))

    def get(self, key: SnapshotKey) -> CheckpointImage:
        entry = self._snapshots.get(key)
        if entry is None:
            raise SnapshotNotFound(
                f"no snapshot for {key}; stored: {[str(k) for k in sorted(self._snapshots)]}"
            )
        entry.restore_count += 1
        return entry.image

    def peek(self, key: SnapshotKey) -> Optional[CheckpointImage]:
        entry = self._snapshots.get(key)
        return entry.image if entry else None

    def contains(self, key: SnapshotKey) -> bool:
        return key in self._snapshots

    def delete(self, key: SnapshotKey) -> None:
        if key not in self._snapshots:
            raise SnapshotNotFound(str(key))
        self._release_layers(key)
        del self._snapshots[key]

    def quarantine(self, key: SnapshotKey) -> bool:
        """Pull a (corrupted) snapshot out of circulation.

        The entry is kept on a quarantine list for forensics rather
        than deleted (its chunk references are released — quarantined
        bytes should not count as registry content); returns whether
        anything was stored under the key. Missing keys are tolerated —
        two replicas may race to quarantine the same poisoned image.
        """
        entry = self._snapshots.pop(key, None)
        if entry is None:
            return False
        self._release_layers(key)
        self._quarantined.append(entry)
        return True

    @property
    def quarantined_count(self) -> int:
        return len(self._quarantined)

    def quarantined_keys(self) -> List[SnapshotKey]:
        return [e.key for e in self._quarantined]

    def restore_count(self, key: SnapshotKey) -> int:
        entry = self._snapshots.get(key)
        return entry.restore_count if entry else 0

    def keys(self) -> List[SnapshotKey]:
        return sorted(self._snapshots)

    @property
    def total_bytes(self) -> int:
        return sum(e.image.total_bytes for e in self._snapshots.values())

    @property
    def total_mib(self) -> float:
        return self.total_bytes / (1024 * 1024)

    def __len__(self) -> int:
        return len(self._snapshots)

    # -- content-addressed layering ----------------------------------------------

    def layered(self, key: SnapshotKey) -> Optional[LayeredImage]:
        """The layer manifest of an active snapshot (None if absent)."""
        return self._layered.get(key)

    @property
    def logical_bytes(self) -> int:
        """Page bytes as monolithic storage would hold them."""
        return sum(e.image.pages_bytes for e in self._snapshots.values())

    @property
    def physical_bytes(self) -> int:
        """Distinct chunk bytes actually held by the page store."""
        return self.pages.physical_bytes

    @property
    def dedup_ratio(self) -> float:
        """Cross-snapshot dedup factor (> 1 whenever content is shared)."""
        physical = self.physical_bytes
        return self.logical_bytes / physical if physical else 1.0

    def materialize(self, key: SnapshotKey) -> CheckpointImage:
        """Rebuild the stored image's page content purely from chunks.

        What a registry pull does: descriptors come from the manifest,
        page tags from the content-addressed chunks. The result is a
        fresh image object carrying the original sealed digest, so any
        chunk-store corruption would fail integrity verification.
        """
        entry = self._snapshots.get(key)
        layered = self._layered.get(key)
        if entry is None or layered is None:
            raise SnapshotNotFound(str(key))
        source = entry.image
        rebuilt_pages = rebuild_vma_pages(source, layered, self.pages)
        vmas = [
            replace(vma,
                    resident_indices=rebuilt_pages[i][0],
                    content_tags=rebuilt_pages[i][1])
            for i, vma in enumerate(source.vmas)
        ]
        image = CheckpointImage(
            image_id=source.image_id,
            pid=source.pid,
            comm=source.comm,
            argv=list(source.argv),
            created_at_ms=source.created_at_ms,
            namespace_ids=dict(source.namespace_ids),
            vmas=vmas,
            fds=list(source.fds),
            runtime_state=source.runtime_state,
            parent_image_id=source.parent_image_id,
            warm=source.warm,
            digest=source.digest,
        )
        build_image_files(image)
        return image

    def repair(self, key: SnapshotKey) -> int:
        """Rewrite corrupted pages of an active image from the chunk store.

        The layer manifest was built from the image as sealed at bake
        time, so the chunk payloads are known-good parity data: any
        chunk window whose current page content drifted from the store
        is rewritten in place. Returns the number of chunks repaired —
        0 means nothing differed (the corruption lies outside the page
        data and only quarantine + rebake can recover).
        """
        entry = self._snapshots.get(key)
        layered = self._layered.get(key)
        if entry is None or layered is None:
            return 0
        image = entry.image
        current: Dict[int, Dict[int, str]] = {
            i: dict(zip(vma.resident_indices, vma.content_tags))
            for i, vma in enumerate(image.vmas)
        }
        repaired_chunks = 0
        for ref in layered.chunk_refs:
            chunk = self.pages.chunk(ref.chunk_id)
            pages = current[ref.vma_index]
            if any(pages.get(ref.window_start + rel) != tag
                   for rel, tag in chunk.pairs):
                repaired_chunks += 1
        if repaired_chunks == 0:
            return 0
        rebuilt_pages = rebuild_vma_pages(image, layered, self.pages)
        for i, vma in enumerate(image.vmas):
            indices, tags = rebuilt_pages[i]
            if (tuple(vma.resident_indices), tuple(vma.content_tags)) != (indices, tags):
                image.vmas[i] = replace(vma, resident_indices=indices,
                                        content_tags=tags)
        return repaired_chunks

    # -- internals ---------------------------------------------------------------

    def _release_layers(self, key: SnapshotKey) -> None:
        layered = self._layered.pop(key, None)
        if layered is None:
            return
        for cid in layered.chunk_ids:
            self.pages.release(cid)

    def _delta_base(self, key: SnapshotKey,
                    image: CheckpointImage) -> Optional[CheckpointImage]:
        """The ready-state sibling a warm image's delta layer diffs against."""
        if not image.warm:
            return None
        for other_key, entry in self._snapshots.items():
            if (other_key != key
                    and other_key.function == key.function
                    and other_key.runtime_kind == key.runtime_kind
                    and not entry.image.warm):
                return entry.image
        return None
