"""Snapshot store: the registry function replicas restore from.

"The same snapshot can be used to restore different Function Replicas
because all of them have the same state at the beginning of the
execution" (§3.1). The store keys snapshots by (function, runtime,
policy, version) and tracks restore counts and byte usage so platform
operators can reason about registry growth.

Storage is content-addressed: every stored image is decomposed into
layered chunks in a shared :class:`~repro.criu.pagestore.PageStore`,
so the registry's *physical* footprint grows sublinearly in function
count when functions share a runtime base — ``logical_bytes`` is what
monolithic storage would hold, ``physical_bytes`` what the chunk store
actually holds, and ``dedup_ratio`` their quotient. The chunk payloads
double as parity data: :meth:`repair` rewrites corrupted pages of an
active image from the store instead of forcing a full rebake.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.criu.images import CheckpointImage, build_image_files
from repro.criu.merkle import ImageMerkle
from repro.criu.pagestore import (
    LayeredImage,
    PageStore,
    chunk_id as compute_chunk_id,
    layer_image,
    rebuild_vma_pages,
)


class SnapshotNotFound(KeyError):
    """No snapshot stored under the requested key."""


@dataclass(frozen=True, order=True)
class SnapshotKey:
    """Identity of one baked snapshot."""

    function: str
    runtime_kind: str
    policy: str
    version: int = 1

    def __str__(self) -> str:
        return f"{self.function}@v{self.version}/{self.runtime_kind}/{self.policy}"


@dataclass
class StoredSnapshot:
    key: SnapshotKey
    image: CheckpointImage
    stored_at_ms: float
    restore_count: int = 0


@dataclass
class RepairStats:
    """Accounting of one :meth:`SnapshotStore.repair` run.

    ``targeted`` is True when the Merkle-guided path ran (only the
    damaged subtrees were checked and re-verified); ``verified_ok``
    reports the incremental verification outcome — sealed Merkle root
    plus meta digest both matching — or ``None`` when the full-scan
    fallback ran and the caller must re-verify the whole image.
    ``hash_ops`` counts the Merkle combines spent, the currency the
    sublinear-repair property is asserted in.
    """

    repaired_chunks: int = 0
    checked_chunks: int = 0
    hash_ops: int = 0
    targeted: bool = False
    verified_ok: Optional[bool] = None


class SnapshotStore:
    """In-memory snapshot registry with content-addressed accounting."""

    def __init__(self, page_store: Optional[PageStore] = None) -> None:
        self._snapshots: Dict[SnapshotKey, StoredSnapshot] = {}
        self._quarantined: List[StoredSnapshot] = []
        self.pages = page_store if page_store is not None else PageStore()
        self._layered: Dict[SnapshotKey, LayeredImage] = {}
        self._merkle: Dict[SnapshotKey, ImageMerkle] = {}
        self.last_repair_stats = RepairStats()

    def put(self, key: SnapshotKey, image: CheckpointImage, now_ms: float = 0.0) -> None:
        """Store (or replace — new function version) a snapshot."""
        image.validate()
        self._release_layers(key)
        self._snapshots[key] = StoredSnapshot(key=key, image=image, stored_at_ms=now_ms)
        layered = layer_image(image, self.pages,
                              base=self._delta_base(key, image))
        self._layered[key] = layered
        # Seal the layer manifest in a Merkle tree at the moment the
        # registry trusts the content; repairs re-verify against it
        # without re-hashing undamaged chunks.
        self._merkle[key] = ImageMerkle.from_layered(layered)

    def get(self, key: SnapshotKey) -> CheckpointImage:
        entry = self._snapshots.get(key)
        if entry is None:
            raise SnapshotNotFound(
                f"no snapshot for {key}; stored: {[str(k) for k in sorted(self._snapshots)]}"
            )
        entry.restore_count += 1
        return entry.image

    def peek(self, key: SnapshotKey) -> Optional[CheckpointImage]:
        entry = self._snapshots.get(key)
        return entry.image if entry else None

    def contains(self, key: SnapshotKey) -> bool:
        return key in self._snapshots

    def delete(self, key: SnapshotKey) -> None:
        if key not in self._snapshots:
            raise SnapshotNotFound(str(key))
        self._release_layers(key)
        del self._snapshots[key]

    def quarantine(self, key: SnapshotKey) -> bool:
        """Pull a (corrupted) snapshot out of circulation.

        The entry is kept on a quarantine list for forensics rather
        than deleted (its chunk references are released — quarantined
        bytes should not count as registry content); returns whether
        anything was stored under the key. Missing keys are tolerated —
        two replicas may race to quarantine the same poisoned image.
        """
        entry = self._snapshots.pop(key, None)
        if entry is None:
            return False
        self._release_layers(key)
        self._quarantined.append(entry)
        return True

    @property
    def quarantined_count(self) -> int:
        return len(self._quarantined)

    def quarantined_keys(self) -> List[SnapshotKey]:
        return [e.key for e in self._quarantined]

    def restore_count(self, key: SnapshotKey) -> int:
        entry = self._snapshots.get(key)
        return entry.restore_count if entry else 0

    def keys(self) -> List[SnapshotKey]:
        return sorted(self._snapshots)

    @property
    def total_bytes(self) -> int:
        return sum(e.image.total_bytes for e in self._snapshots.values())

    @property
    def total_mib(self) -> float:
        return self.total_bytes / (1024 * 1024)

    def __len__(self) -> int:
        return len(self._snapshots)

    # -- content-addressed layering ----------------------------------------------

    def layered(self, key: SnapshotKey) -> Optional[LayeredImage]:
        """The layer manifest of an active snapshot (None if absent)."""
        return self._layered.get(key)

    def merkle(self, key: SnapshotKey) -> Optional[ImageMerkle]:
        """The sealed Merkle trees of an active snapshot (None if absent)."""
        return self._merkle.get(key)

    @property
    def logical_bytes(self) -> int:
        """Page bytes as monolithic storage would hold them."""
        return sum(e.image.pages_bytes for e in self._snapshots.values())

    @property
    def physical_bytes(self) -> int:
        """Distinct chunk bytes actually held by the page store."""
        return self.pages.physical_bytes

    @property
    def dedup_ratio(self) -> float:
        """Cross-snapshot dedup factor (> 1 whenever content is shared)."""
        physical = self.physical_bytes
        return self.logical_bytes / physical if physical else 1.0

    def materialize(self, key: SnapshotKey) -> CheckpointImage:
        """Rebuild the stored image's page content purely from chunks.

        What a registry pull does: descriptors come from the manifest,
        page tags from the content-addressed chunks. The result is a
        fresh image object carrying the original sealed digest, so any
        chunk-store corruption would fail integrity verification.
        """
        entry = self._snapshots.get(key)
        layered = self._layered.get(key)
        if entry is None or layered is None:
            raise SnapshotNotFound(str(key))
        source = entry.image
        rebuilt_pages = rebuild_vma_pages(source, layered, self.pages)
        vmas = [
            replace(vma,
                    resident_indices=rebuilt_pages[i][0],
                    content_tags=rebuilt_pages[i][1])
            for i, vma in enumerate(source.vmas)
        ]
        image = CheckpointImage(
            image_id=source.image_id,
            pid=source.pid,
            comm=source.comm,
            argv=list(source.argv),
            created_at_ms=source.created_at_ms,
            namespace_ids=dict(source.namespace_ids),
            vmas=vmas,
            fds=list(source.fds),
            runtime_state=source.runtime_state,
            parent_image_id=source.parent_image_id,
            warm=source.warm,
            digest=source.digest,
            meta_digest=source.meta_digest,
        )
        build_image_files(image)
        return image

    def repair(self, key: SnapshotKey) -> int:
        """Rewrite corrupted pages of an active image from the chunk store.

        The layer manifest was built from the image as sealed at bake
        time, so the chunk payloads are known-good parity data: any
        chunk window whose current page content drifted from the store
        is rewritten in place. Returns the number of chunks repaired —
        0 means nothing differed (the corruption lies outside the page
        data and only quarantine + rebake can recover).

        When the image carries damage hints (``dirty_pages`` from
        fault injection) and a sealed Merkle tree exists, only the
        damaged chunk windows are checked and re-verified — repaired
        leaf digests fold back into the tree along their ancestor
        paths and the new root is compared against the sealed one, so
        the cost is O(damage × tree depth) hash operations instead of
        a full-image re-hash. :attr:`last_repair_stats` records which
        path ran and whether incremental verification already proved
        the repair (callers can then skip the flat digest pass).
        """
        entry = self._snapshots.get(key)
        layered = self._layered.get(key)
        if entry is None or layered is None:
            self.last_repair_stats = RepairStats()
            return 0
        image = entry.image
        merkle = self._merkle.get(key)
        if merkle is not None and image.dirty_pages and not image.dirty_meta:
            stats = self._repair_targeted(image, layered, merkle)
            if stats is not None:
                self.last_repair_stats = stats
                return stats.repaired_chunks
        repaired_chunks = self._repair_full_scan(image, layered)
        self.last_repair_stats = RepairStats(
            repaired_chunks=repaired_chunks,
            checked_chunks=len(layered.chunk_refs),
            targeted=False,
        )
        return repaired_chunks

    def _repair_targeted(self, image: CheckpointImage, layered: LayeredImage,
                         merkle: ImageMerkle) -> Optional[RepairStats]:
        """Merkle-guided repair of just the damaged chunk windows.

        Returns None when any damage hint falls outside the sealed
        manifest (e.g. pages resident only after the dump) — the
        caller falls back to the full scan.
        """
        chunk_pages = self.pages.chunk_pages
        damaged: Dict[Tuple[int, int], object] = {}
        for vma_index, page_index in sorted(image.dirty_pages):
            window_start = (page_index // chunk_pages) * chunk_pages
            ref = layered.ref_at(vma_index, window_start)
            if ref is None:
                return None
            damaged[(vma_index, window_start)] = ref
        repaired_chunks = 0
        hash_ops = 0
        for (vma_index, window_start), ref in damaged.items():
            chunk = self.pages.chunk(ref.chunk_id)
            vma = image.vmas[vma_index]
            pages = dict(zip(vma.resident_indices, vma.content_tags))
            if all(pages.get(window_start + rel) == tag
                   for rel, tag in chunk.pairs):
                continue
            repaired_chunks += 1
            for rel, tag in chunk.pairs:
                pages[window_start + rel] = tag
            ordered = sorted(pages.items())
            image.vmas[vma_index] = replace(
                vma,
                resident_indices=tuple(i for i, _ in ordered),
                content_tags=tuple(t for _, t in ordered),
            )
            # Fold the repaired window back into the tree: the digest
            # is recomputed from the *rewritten image pages* (not the
            # store chunk), so a botched rewrite cannot verify.
            window_pairs = [
                (i - window_start, t) for i, t in ordered
                if window_start <= i < window_start + chunk_pages
            ]
            digest = compute_chunk_id(vma.kind, vma.prot, window_pairs)
            hash_ops += merkle.reverify_subtree(vma_index, window_start, digest)
        if repaired_chunks == 0:
            return RepairStats(checked_chunks=len(damaged), targeted=True)
        image.generation += 1
        verified_ok = merkle.root_matches_seal() and (
            image.meta_digest is None
            or image.compute_meta_digest() == image.meta_digest)
        if verified_ok:
            image.dirty_pages.clear()
        return RepairStats(
            repaired_chunks=repaired_chunks,
            checked_chunks=len(damaged),
            hash_ops=hash_ops,
            targeted=True,
            verified_ok=verified_ok,
        )

    def _repair_full_scan(self, image: CheckpointImage,
                          layered: LayeredImage) -> int:
        """Legacy manifest-wide repair (no damage hints available)."""
        current: Dict[int, Dict[int, str]] = {
            i: dict(zip(vma.resident_indices, vma.content_tags))
            for i, vma in enumerate(image.vmas)
        }
        repaired_chunks = 0
        for ref in layered.chunk_refs:
            chunk = self.pages.chunk(ref.chunk_id)
            pages = current[ref.vma_index]
            if any(pages.get(ref.window_start + rel) != tag
                   for rel, tag in chunk.pairs):
                repaired_chunks += 1
        if repaired_chunks == 0:
            return 0
        rebuilt_pages = rebuild_vma_pages(image, layered, self.pages)
        for i, vma in enumerate(image.vmas):
            indices, tags = rebuilt_pages[i]
            if (tuple(vma.resident_indices), tuple(vma.content_tags)) != (indices, tags):
                image.vmas[i] = replace(vma, resident_indices=indices,
                                        content_tags=tags)
        image.generation += 1
        image.dirty_pages.clear()
        return repaired_chunks

    # -- internals ---------------------------------------------------------------

    def _release_layers(self, key: SnapshotKey) -> None:
        self._merkle.pop(key, None)
        layered = self._layered.pop(key, None)
        if layered is None:
            return
        for cid in layered.chunk_ids:
            self.pages.release(cid)

    def _delta_base(self, key: SnapshotKey,
                    image: CheckpointImage) -> Optional[CheckpointImage]:
        """The ready-state sibling a warm image's delta layer diffs against."""
        if not image.warm:
            return None
        for other_key, entry in self._snapshots.items():
            if (other_key != key
                    and other_key.function == key.function
                    and other_key.runtime_kind == key.runtime_kind
                    and not entry.image.warm):
                return entry.image
        return None
