"""Seeded, named random-number streams.

Experiments need statistical noise (the paper reports bootstrap
confidence intervals over 200 repetitions) while remaining exactly
reproducible run-to-run. ``RandomStreams`` derives an independent
``random.Random`` per *named* stream from a single master seed, so that
adding a new consumer of randomness never perturbs the draws seen by
existing consumers.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Dict, Sequence


def _derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for ``name`` from ``master_seed``."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A family of independently seeded random streams.

    Example::

        streams = RandomStreams(seed=42)
        jitter = streams.get("startup-noise")
        x = jitter.random()
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(_derive_seed(self.seed, name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RandomStreams":
        """Return a new family whose master seed derives from ``name``.

        Used to give each experiment repetition its own independent
        sub-family while staying reproducible.
        """
        return RandomStreams(_derive_seed(self.seed, name))

    # -- distribution helpers ------------------------------------------------

    def lognormal_jitter(self, name: str, median: float, sigma: float) -> float:
        """Draw a log-normally distributed value with the given median.

        ``sigma`` is the shape parameter of the underlying normal; small
        values (0.01-0.05) give the tight, slightly right-skewed spread
        seen in start-up latency samples.
        """
        if median <= 0:
            return 0.0
        stream = self.get(name)
        return median * math.exp(stream.gauss(0.0, sigma))

    def triangular(self, name: str, low: float, high: float, mode: float) -> float:
        """Draw from a triangular distribution (used for outlier tails)."""
        return self.get(name).triangular(low, high, mode)

    def choice(self, name: str, options: Sequence):
        """Uniformly pick one element of ``options``."""
        return self.get(name).choice(list(options))
