"""Calibrated cost model for the simulated substrate.

Every rate below is *fitted to numbers the paper reports* (Middleware
'20, Table 1 and Section 4). The fit procedure is recorded next to each
constant so the calibration is auditable:

* The paper's synthetic functions (small = 374 classes / 2.8 MiB,
  medium = 574 / 9.2 MiB, big = 1574 / 41 MiB) give three measurements
  per start-up technique, enough to fit two-parameter linear models:

  - vanilla (fork-exec) start-up =
    ``CLONE + EXEC + RTS + APPINIT_BASE + classes*COLD_PER_CLASS +
    kib*COLD_PER_KIB`` — fits all three paper values within 0.7 %;
  - prebake restore = ``RESTORE_BASE + mib*RESTORE_PER_MIB`` — fits the
    small/big warm-snapshot rows exactly and medium within ~7 %;
  - post-restore lazy class loading keeps the per-class linking cost
    but pays a lower per-byte cost (the restore pass leaves the class
    file pages warm in the page cache) — fits within ~3 %.

* The three *real* functions (NOOP / Markdown / Image Resizer) do not
  fit any single monotone size model: the paper's NOOP restores slower
  than Markdown despite a smaller snapshot (13 MiB vs 14 MiB). Their
  profiles therefore carry per-function calibrated medians taken
  straight from the paper's reported numbers; see
  :data:`NOOP_COSTS` / :data:`MARKDOWN_COSTS` / :data:`IMAGE_RESIZER_COSTS`.

All durations are milliseconds; sizes are MiB unless suffixed ``_kib``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.sim.rng import RandomStreams

KIB_PER_MIB = 1024.0


@dataclass(frozen=True)
class FunctionCosts:
    """Per-function calibrated timing/size profile.

    ``restore_ready_ms`` / ``restore_warm_ms`` override the generic
    restore formula when the paper reports a measured value; ``None``
    means "derive from snapshot size via :meth:`CostModel.restore_cost`".
    """

    name: str
    appinit_vanilla_ms: float
    snapshot_ready_mib: float
    snapshot_warm_mib: float
    service_ms: float
    service_sigma: float = 0.06
    restore_ready_ms: Optional[float] = None
    restore_warm_ms: Optional[float] = None
    classes: int = 0
    class_kib: float = 0.0
    startup_metric: str = "ready"  # "ready" | "first_response"

    def snapshot_mib(self, warm: bool) -> float:
        return self.snapshot_warm_mib if warm else self.snapshot_ready_mib

    def restore_override_ms(self, warm: bool) -> Optional[float]:
        return self.restore_warm_ms if warm else self.restore_ready_ms


@dataclass(frozen=True)
class CostModel:
    """Substrate-wide calibrated rates (see module docstring)."""

    # Fig 4: CLONE and EXEC "contribute a tiny fraction" of start-up.
    clone_ms: float = 0.45
    exec_ms: float = 1.55
    # Fig 4: vanilla RTS adds ~70 ms regardless of the function.
    jvm_rts_ms: float = 70.0
    # Baseline APPINIT of the embedded HTTP server in the synthetic
    # functions (the remainder after subtracting the class-load fit).
    appinit_base_ms: float = 5.0

    # Cold (fork-exec path) class load + JIT; fitted to Table 1 vanilla
    # rows within 0.7 %.
    cold_load_per_class_ms: float = 0.1372
    cold_load_per_kib_ms: float = 0.03265

    # Lazy class load on the first request of an *unwarmed* restored
    # process; per-class linking cost unchanged, per-byte cost reduced
    # by restore-time page-cache warming. Fitted to Table 1
    # PB-NOWarmup rows within ~3 %.
    restored_load_per_class_ms: float = 0.1372
    restored_load_per_kib_ms: float = 0.0252

    # CRIU restore: fixed engine overhead + per-MiB page mapping cost.
    # Fitted to Table 1 PB-Warmup small/big rows.
    restore_base_ms: float = 42.2
    restore_per_mib_ms: float = 0.775
    # Spawning the criu process itself (clone+exec of /usr/sbin/criu).
    criu_spawn_ms: float = 2.0
    # Per-MiB restore-cost multiplier when the image is served from an
    # in-memory cache instead of disk (future-work optimization [26]).
    restore_in_memory_factor: float = 0.45

    # -- pipelined restore (overlapped fetch / map) --------------------------
    #
    # The serial page-population charge decomposes into a *fetch* stage
    # (chunk reads from the registry, ~70% of the per-page cost at the
    # calibrated disk bandwidth — the I/O share REAP and vHive report
    # for snapshot loads) and a *map* stage (mm population + page-table
    # writes, the remainder). N fetch workers overlap fetching with
    # mapping: critical path = pipeline ramp (first chunk arriving)
    # + max(fetch/effective_workers, map), never their sum.
    restore_fetch_fraction: float = 0.7
    # Marginal worker efficiency: worker N adds this fraction of a full
    # worker's bandwidth (registry-side contention, stragglers).
    restore_pipeline_efficiency: float = 0.85
    # Fetch-cost multiplier for chunks served from the node-local
    # hot-chunk cache instead of the registry (local page cache read
    # vs a registry round-trip).
    restore_cache_hit_factor: float = 0.2

    # -- sharded snapshot store (quorum fetch over replicas) -----------------
    #
    # The per-chunk fetch cost itself is already part of the restore
    # charge above; sharding only adds latency when a fetch has to hop
    # to another replica (home shard down/partitioned/breaker-open) —
    # one extra registry RTT per failed hop.
    shard_retry_hop_ms: float = 0.35
    # Half-open circuit-breaker probes against a recovering node ride
    # on a real fetch, so they cost one hop too (no separate rate).

    # Checkpoint (dump) side — exercised by the build pipeline only;
    # the paper does not evaluate dump latency (it happens at build
    # time), so these are plausible engineering numbers.
    freeze_ms: float = 1.0
    parasite_inject_ms: float = 1.5
    dump_per_mib_ms: float = 1.1
    dump_base_ms: float = 8.0

    # Container-level provisioning (excluded from the paper's
    # experiments, §4.1: "we deliberately excluded ... container
    # orchestrators"); non-zero only in the OpenFaaS integration demos.
    container_provision_ms: float = 0.0

    # Log-normal jitter applied per phase; sized so 200-rep bootstrap
    # CIs match the ~±0.5 ms widths of the paper's Table 1.
    noise_sigma: float = 0.015

    # -- derived costs -------------------------------------------------------

    def cold_load_cost(self, classes: int, kib: float) -> float:
        """Class load + JIT compile cost on the fork-exec path."""
        return classes * self.cold_load_per_class_ms + kib * self.cold_load_per_kib_ms

    def restored_load_cost(self, classes: int, kib: float) -> float:
        """Lazy class load cost on the first request after restore."""
        return classes * self.restored_load_per_class_ms + kib * self.restored_load_per_kib_ms

    def restore_cost(self, image_mib: float, override_ms: Optional[float] = None) -> float:
        """Snapshot restore duration (excluding criu process spawn)."""
        if override_ms is not None:
            return override_ms
        return self.restore_base_ms + image_mib * self.restore_per_mib_ms

    def dump_cost(self, image_mib: float) -> float:
        """Checkpoint dump duration for an ``image_mib``-sized image."""
        return (
            self.freeze_ms
            + self.parasite_inject_ms
            + self.dump_base_ms
            + image_mib * self.dump_per_mib_ms
        )

    def plan_restore_pipeline(
        self,
        pages_ms: float,
        workers: int = 1,
        chunk_count: int = 1,
        cached_fraction: float = 0.0,
    ) -> "PipelinePlan":
        """Cost plan for the page-population stage of one restore.

        ``pages_ms`` is the serial page charge (restore cost minus the
        base); ``cached_fraction`` the byte fraction of the image's
        chunks served by the node-local hot-chunk cache. A single
        worker with no cache hits degenerates to exactly ``pages_ms``
        (bit-identical to the unpipelined model); more workers overlap
        fetch with map, bounded below by the slower of the two stages
        plus the one-chunk ramp, and never slower than serial.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        cached_fraction = min(1.0, max(0.0, cached_fraction))
        fetch_full = pages_ms * self.restore_fetch_fraction
        map_ms = pages_ms - fetch_full
        if workers == 1 and cached_fraction == 0.0:
            # The unpipelined path: keep the original charge exactly
            # (fetch + map could differ from pages_ms by a float ulp).
            return PipelinePlan(workers=1, chunk_count=chunk_count,
                                cached_fraction=0.0, fetch_ms=fetch_full,
                                map_ms=map_ms, ramp_ms=0.0,
                                serial_ms=pages_ms, total_ms=pages_ms)
        fetch_ms = fetch_full * ((1.0 - cached_fraction)
                                 + cached_fraction * self.restore_cache_hit_factor)
        serial_ms = fetch_ms + map_ms
        if workers == 1:
            return PipelinePlan(workers=1, chunk_count=chunk_count,
                                cached_fraction=cached_fraction,
                                fetch_ms=fetch_ms, map_ms=map_ms,
                                ramp_ms=0.0, serial_ms=serial_ms,
                                total_ms=serial_ms)
        effective = 1.0 + (workers - 1) * self.restore_pipeline_efficiency
        ramp_ms = fetch_ms / max(1, chunk_count)
        steady_ms = max(fetch_ms / effective, map_ms)
        total_ms = min(serial_ms, ramp_ms + steady_ms)
        return PipelinePlan(workers=workers, chunk_count=chunk_count,
                            cached_fraction=cached_fraction,
                            fetch_ms=fetch_ms, map_ms=map_ms,
                            ramp_ms=max(0.0, total_ms - steady_ms),
                            serial_ms=serial_ms, total_ms=total_ms)

    def shard_fetch_overhead_ms(self, retry_hops: int, slow_ms: float = 0.0,
                                workers: int = 1) -> float:
        """Extra restore latency one sharded fetch pass imposed.

        ``retry_hops`` failed replica attempts each cost one registry
        RTT; ``slow_ms`` is the accumulated straggler penalty from
        ``store.slow_shard``. With a pipelined restore the retries
        overlap across the fetch workers, so the wall charge divides
        by the same effective-worker factor the pipeline plan uses.
        A clean pass (no hops, no stragglers) costs exactly 0.0.
        """
        if retry_hops < 0:
            raise ValueError(f"retry_hops must be >= 0, got {retry_hops}")
        extra = retry_hops * self.shard_retry_hop_ms + max(0.0, slow_ms)
        if extra == 0.0:
            return 0.0
        if workers > 1:
            effective = 1.0 + (workers - 1) * self.restore_pipeline_efficiency
            extra /= effective
        return extra

    def jitter(self, median: float, streams: RandomStreams, stream_name: str) -> float:
        """Apply seeded log-normal jitter to a median duration."""
        return streams.lognormal_jitter(stream_name, median, self.noise_sigma)

    def with_noise_sigma(self, sigma: float) -> "CostModel":
        """Return a copy with a different noise level (0 = deterministic)."""
        return replace(self, noise_sigma=sigma)


@dataclass(frozen=True)
class PipelinePlan:
    """How one restore's page-population charge breaks down.

    ``total_ms`` is the wall charge: ``serial_ms`` when unpipelined,
    ``ramp_ms + max(fetch/effective_workers, map)`` when overlapped.
    ``ramp_ms`` is the pipeline fill (the map stage idles until the
    first chunk arrives) — the profiler's ``restore.pipeline-ramp``.
    """

    workers: int
    chunk_count: int
    cached_fraction: float
    fetch_ms: float
    map_ms: float
    ramp_ms: float
    serial_ms: float
    total_ms: float

    @property
    def pipelined(self) -> bool:
        return self.workers > 1

    @property
    def overlap_saved_ms(self) -> float:
        return self.serial_ms - self.total_ms


DEFAULT_COST_MODEL = CostModel()


def _mib(kib: float) -> float:
    return kib / KIB_PER_MIB


# --------------------------------------------------------------------------
# Real-function profiles (paper §4.2, Figures 3/4/7).
#
# Calibration notes:
#   NOOP:    vanilla ≈ 103 ms (paper: 40 % improvement, median difference
#            [40.35, 42.29] ms); prebaked ≈ 62 ms; snapshot 13 MiB.
#   MARKDOWN: "reduced from 100 ms to 53 ms" — vanilla 100, prebaked 53;
#            snapshot 14 MiB.
#   RESIZER: "decreased from 310 ms to 87 ms" — snapshot 99.2 MiB; its
#            APPINIT loads a 1 MiB 3440x1440 image (the I/O the paper
#            calls out as dominating its vanilla APPINIT).
# Vanilla APPINIT = vanilla_total - (CLONE + EXEC + RTS) = total - 72 ms.
# Prebake restore = prebake_total - criu_spawn = total - 2 ms.
# --------------------------------------------------------------------------

NOOP_COSTS = FunctionCosts(
    name="noop",
    appinit_vanilla_ms=31.3,
    snapshot_ready_mib=13.0,
    snapshot_warm_mib=13.0,
    restore_ready_ms=60.0,
    restore_warm_ms=60.0,
    service_ms=0.9,
    service_sigma=0.10,
)

MARKDOWN_COSTS = FunctionCosts(
    name="markdown",
    appinit_vanilla_ms=28.0,
    snapshot_ready_mib=14.0,
    snapshot_warm_mib=14.3,
    restore_ready_ms=51.0,
    restore_warm_ms=51.2,
    service_ms=4.2,
    service_sigma=0.08,
)

IMAGE_RESIZER_COSTS = FunctionCosts(
    name="image-resizer",
    appinit_vanilla_ms=238.0,
    snapshot_ready_mib=99.2,
    snapshot_warm_mib=101.0,
    restore_ready_ms=85.0,
    restore_warm_ms=86.4,
    service_ms=22.0,
    service_sigma=0.06,
)


# --------------------------------------------------------------------------
# Synthetic function profiles (paper §4.2.2, Figures 5/6, Table 1).
# Classes load lazily on the *first invocation*, so the start-up metric
# for these experiments is time-to-first-response (as measured by the
# paper's load generator). Sizes straight from the paper.
# --------------------------------------------------------------------------


def synthetic_costs(name: str, classes: int, class_kib: float,
                    base_rss_mib: float = 13.0,
                    service_ms: float = 0.5) -> FunctionCosts:
    """Build the profile of a synthetic class-loading function.

    The ready-state snapshot holds only the bare runtime
    (``base_rss_mib``); the warm snapshot additionally holds the loaded
    classes (+ JIT artifacts), i.e. ``base_rss_mib + class_kib``.
    """
    return FunctionCosts(
        name=name,
        appinit_vanilla_ms=DEFAULT_COST_MODEL.appinit_base_ms,
        snapshot_ready_mib=base_rss_mib,
        snapshot_warm_mib=base_rss_mib + _mib(class_kib),
        service_ms=service_ms,
        service_sigma=0.10,
        classes=classes,
        class_kib=class_kib,
        startup_metric="first_response",
    )


SYNTHETIC_SMALL = synthetic_costs("synthetic-small", classes=374, class_kib=2.8 * 1024)
SYNTHETIC_MEDIUM = synthetic_costs("synthetic-medium", classes=574, class_kib=9.2 * 1024)
SYNTHETIC_BIG = synthetic_costs("synthetic-big", classes=1574, class_kib=41.0 * 1024)

BUILTIN_PROFILES = {
    p.name: p
    for p in (
        NOOP_COSTS,
        MARKDOWN_COSTS,
        IMAGE_RESIZER_COSTS,
        SYNTHETIC_SMALL,
        SYNTHETIC_MEDIUM,
        SYNTHETIC_BIG,
    )
}
