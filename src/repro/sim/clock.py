"""Virtual clock used by the whole simulated substrate.

All durations in this codebase are expressed in *milliseconds* as
floats, matching the unit the paper reports its results in.
"""

from __future__ import annotations


class ClockError(Exception):
    """Raised on attempts to move the clock backwards."""


class SimClock:
    """A monotonically advancing virtual clock.

    The clock is advanced in two ways:

    * synchronously, by substrate code that models work being done
      (:meth:`advance`), e.g. the simulated kernel charging the cost of
      an ``exec`` system call;
    * by the event engine when it dispatches the next scheduled event
      (:meth:`set_time`).
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def advance(self, delta_ms: float) -> float:
        """Advance the clock by ``delta_ms`` and return the new time.

        Negative deltas are rejected: simulated work cannot take
        negative time and allowing it would corrupt event ordering.
        """
        if delta_ms < 0:
            raise ClockError(f"cannot advance clock by negative delta {delta_ms!r}")
        self._now += delta_ms
        return self._now

    def set_time(self, t: float) -> None:
        """Jump the clock forward to absolute time ``t`` (engine use)."""
        if t < self._now:
            raise ClockError(f"cannot move clock backwards: {t} < {self._now}")
        self._now = float(t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.3f}ms)"
