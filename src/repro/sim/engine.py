"""Coroutine-style discrete-event simulation engine.

Simulated activities (platform components, replicas, load generators)
are written as generator functions that ``yield`` either

* a ``float`` — sleep that many simulated milliseconds, or
* a :class:`~repro.sim.events.Signal` — park until the signal fires
  (the fired payload is sent back into the generator).

The engine interleaves processes deterministically: ties in virtual
time resolve in scheduling order. Substrate code that models
synchronous work (system calls, page copies) simply advances the shared
clock; both styles compose because the engine never moves the clock
backwards.

Hot-path layout notes (DESIGN.md §15): ``SimProcess`` is slotted and
binds its step/resume methods once at construction, so scheduling a
wakeup enqueues a pre-existing bound method instead of allocating a
fresh closure per yielded delay.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventQueue, Signal

SimGenerator = Generator[Any, Any, Any]


class SimProcess:
    """A running simulated activity wrapping a generator."""

    __slots__ = ("_sim", "_gen", "name", "finished", "result", "done_signal",
                 "_step_cb", "_resume_cb")

    def __init__(self, sim: "Simulation", gen: SimGenerator, name: str = "") -> None:
        self._sim = sim
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.finished = False
        self.result: Any = None
        self.done_signal = Signal(f"{self.name}.done")
        # Bind once: every timer/signal wakeup reuses these two bound
        # methods instead of allocating a closure per scheduled event.
        self._step_cb = self._step
        self._resume_cb = self._resume

    def _resume(self) -> None:
        """No-arg timer callback: resume the generator with None."""
        self._step(None)

    def _step(self, send_value: Any = None) -> None:
        """Resume the generator and schedule its next wakeup."""
        if self.finished:
            return
        try:
            yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.done_signal.fire(stop.value)
            return
        if isinstance(yielded, Signal):
            yielded.wait(self._step_cb)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                raise ValueError(f"process {self.name!r} yielded negative delay {yielded}")
            self._sim.schedule_in(float(yielded), self._resume_cb, label=self.name)
        elif yielded is None:
            # Yielding None is a cooperative re-schedule at the current time.
            self._sim.schedule_in(0.0, self._resume_cb, label=self.name)
        else:
            raise TypeError(
                f"process {self.name!r} yielded unsupported value {yielded!r}; "
                "yield a delay in ms, a Signal, or None"
            )


class Simulation:
    """Owns the clock and event queue and drives processes to completion."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock or SimClock()
        self.queue = EventQueue()
        self.events_dispatched = 0
        self._trace: List[str] = []

    # -- scheduling ----------------------------------------------------------

    def schedule_at(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self.clock.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.clock.now}")
        return self.queue.push(time, callback, label=label)

    def schedule_in(self, delay_ms: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` after ``delay_ms`` simulated milliseconds."""
        return self.schedule_at(self.clock.now + delay_ms, callback, label=label)

    def schedule_many(
        self,
        entries: Iterable[Tuple[float, Callable[[], None]]],
        label: str = "",
    ) -> List[Event]:
        """Bulk-schedule ``(absolute_time, callback)`` pairs.

        One past-time validation sweep plus a single heapify replaces a
        Python-level ``schedule_at`` call per entry; FIFO tie-breaking
        matches sequential scheduling exactly.
        """
        batch = list(entries)
        now = self.clock.now
        for time, _ in batch:
            if time < now:
                raise ValueError(f"cannot schedule in the past: {time} < {now}")
        return self.queue.push_many(batch, label=label)

    def spawn(self, gen: SimGenerator, name: str = "") -> SimProcess:
        """Start a new simulated process; it takes its first step at t=now."""
        process = SimProcess(self, gen, name=name)
        self.schedule_in(0.0, process._resume_cb, label=f"spawn:{process.name}")
        return process

    # -- execution -----------------------------------------------------------

    def step(self) -> bool:
        """Dispatch the next event. Returns False when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.set_time(event.time)
        self.events_dispatched += 1
        event.callback()
        return True

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain (bounded to catch runaway loops)."""
        pop = self.queue.pop
        set_time = self.clock.set_time
        dispatched = 0
        try:
            for _ in range(max_events):
                event = pop()
                if event is None:
                    return
                set_time(event.time)
                dispatched += 1
                event.callback()
        finally:
            self.events_dispatched += dispatched
        raise RuntimeError(f"simulation exceeded {max_events} events; likely a livelock")

    def run_until(self, t: float, max_events: int = 10_000_000) -> None:
        """Run events with time <= ``t``; the clock ends at ``t``."""
        peek_time = self.queue.peek_time
        for _ in range(max_events):
            nxt = peek_time()
            if nxt is None or nxt > t:
                break
            self.step()
        else:
            raise RuntimeError(f"simulation exceeded {max_events} events; likely a livelock")
        if t > self.clock.now:
            self.clock.set_time(t)

    def run_process(self, gen: SimGenerator, name: str = "") -> Any:
        """Spawn ``gen``, run the simulation until it finishes, return its result."""
        process = self.spawn(gen, name=name)
        while not process.finished:
            if not self.step():
                raise RuntimeError(
                    f"simulation drained before process {process.name!r} finished; "
                    "it is waiting on a signal nobody fires"
                )
        return process.result

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self.clock.now
