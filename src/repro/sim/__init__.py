"""Deterministic discrete-event simulation kernel.

This package provides the virtual time base every other subsystem runs
on: a millisecond-resolution clock (:class:`~repro.sim.clock.SimClock`),
an event queue and coroutine-style process engine
(:class:`~repro.sim.engine.Simulation`), seeded random-number streams
(:class:`~repro.sim.rng.RandomStreams`) and the calibrated cost model
(:class:`~repro.sim.costmodel.CostModel`) whose rates were fitted to the
numbers reported in the paper (see DESIGN.md section 4).
"""

from repro.sim.clock import SimClock
from repro.sim.costmodel import CostModel, FunctionCosts
from repro.sim.engine import Simulation, SimProcess
from repro.sim.events import Event, EventQueue, Signal
from repro.sim.rng import RandomStreams

__all__ = [
    "SimClock",
    "CostModel",
    "FunctionCosts",
    "Simulation",
    "SimProcess",
    "Event",
    "EventQueue",
    "Signal",
    "RandomStreams",
]
