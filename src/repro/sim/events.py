"""Event queue primitives for the discrete-event engine.

Hot-path layout notes (DESIGN.md §15): ``Event`` and ``Signal`` are
slotted so a fig3-scale world allocating hundreds of thousands of
events avoids per-instance ``__dict__`` churn, and ``EventQueue`` keeps
O(1) live/cancelled counters so ``len(queue)`` never scans the heap.
Cancelled events stay in the heap as tombstones until they either
bubble to the top or outnumber the live events, at which point the
queue compacts (filter + re-heapify) so long-lived worlds with many
cancelled timers do not leak heap slots.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Tuple


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, seq)``; ``seq`` is a monotonically
    increasing tie-breaker so same-time events fire in scheduling order
    (FIFO), which keeps the simulation deterministic.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)
    # Back-reference so cancel() can keep the owning queue's live count
    # exact without a heap scan. None for events popped or never queued.
    _queue: Optional["EventQueue"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            self._queue = None
            queue._note_cancel()


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects.

    ``__len__`` is O(1): the queue tracks live and cancelled counts on
    push/pop/cancel instead of scanning the heap. When cancelled
    tombstones exceed the live population the heap is compacted in one
    O(n) filter + heapify pass.
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        self._live = 0
        self._cancelled = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, False, label, self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def push_many(
        self,
        entries: Iterable[Tuple[float, Callable[[], None]]],
        label: str = "",
    ) -> List[Event]:
        """Bulk-schedule ``(time, callback)`` pairs in one heapify pass.

        Sequence numbers are assigned in iteration order, so same-time
        entries keep FIFO semantics exactly as repeated :meth:`push`
        calls would.
        """
        seq = self._seq
        heap = self._heap
        events: List[Event] = []
        append = events.append
        for time, callback in entries:
            append(Event(time, seq, callback, False, label, self))
            seq += 1
        self._seq = seq
        if not events:
            return events
        heap.extend(events)
        heapq.heapify(heap)
        self._live += len(events)
        return events

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if not event.cancelled:
                event._queue = None
                self._live -= 1
                return event
            self._cancelled -= 1
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None``."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        return heap[0].time if heap else None

    def _note_cancel(self) -> None:
        """Account a cancellation; compact when tombstones dominate."""
        self._live -= 1
        self._cancelled += 1
        if self._cancelled > self._live:
            self._compact()

    def _compact(self) -> None:
        """Purge cancelled tombstones and re-heapify the survivors."""
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0


class Signal:
    """A broadcast condition processes can wait on.

    ``fire(payload)`` wakes every waiter exactly once. A signal may be
    fired repeatedly; waiters registered after a firing wait for the
    next one (edge-triggered semantics, like a condition variable).

    Re-entrancy contract: ``fire`` snapshots the current waiter list
    and clears it *before* invoking any waiter, so

    * a waiter that registers a new waiter during a firing defers that
      new waiter to the *next* firing, and
    * a waiter that recursively fires the same signal runs the inner
      firing to completion first — ``fire_count`` and ``last_payload``
      reflect the most recent (innermost) firing by the time the outer
      ``fire`` returns, and each waiter receives the payload of the
      firing that woke it, not whatever ``last_payload`` ends up as.
    """

    __slots__ = ("name", "_waiters", "fire_count", "last_payload")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: List[Callable[[Any], None]] = []
        self.fire_count = 0
        self.last_payload: Any = None

    def wait(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback`` to run on the next :meth:`fire`."""
        self._waiters.append(callback)

    def fire(self, payload: Any = None) -> int:
        """Wake all current waiters; return how many were woken."""
        self.fire_count += 1
        self.last_payload = payload
        waiters = self._waiters
        if not waiters:
            return 0
        self._waiters = []
        for waiter in waiters:
            waiter(payload)
        return len(waiters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"
