"""Event queue primitives for the discrete-event engine."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, seq)``; ``seq`` is a monotonically
    increasing tie-breaker so same-time events fire in scheduling order
    (FIFO), which keeps the simulation deterministic.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def push(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        event = Event(time=time, seq=next(self._counter), callback=callback, label=label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None


class Signal:
    """A broadcast condition processes can wait on.

    ``fire(payload)`` wakes every waiter exactly once. A signal may be
    fired repeatedly; waiters registered after a firing wait for the
    next one (edge-triggered semantics, like a condition variable).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: List[Callable[[Any], None]] = []
        self.fire_count = 0
        self.last_payload: Any = None

    def wait(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback`` to run on the next :meth:`fire`."""
        self._waiters.append(callback)

    def fire(self, payload: Any = None) -> int:
        """Wake all current waiters; return how many were woken."""
        self.fire_count += 1
        self.last_payload = payload
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(payload)
        return len(waiters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"
