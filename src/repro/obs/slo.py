"""Service-level objectives with burn-rate evaluation.

An :class:`SLO` declares what fraction of events must be *good* (the
objective); the complement is the error budget. The **burn rate** is
the observed bad fraction divided by the budget — burn rate 1.0 means
the service is spending its budget exactly as fast as allowed, >1
means the objective will be violated if the window's behaviour
persists. Both SRE-style multi-window alerting and our single-window
offline evaluation reduce to this one ratio.

Two SLO kinds cover the prebake stack's contract:

* ``latency`` — a histogram metric plus a threshold; an observation is
  bad when it lands above the threshold (e.g. cold-start p99 under
  500 ms means at most 1% of cold starts may exceed 500 ms).
* ``ratio`` — a failure counter over a total counter (e.g. restore
  success rate: ``criu_restore_failures_total`` over
  ``criu_restore_total``).

SLOs evaluate against any :class:`~repro.obs.metrics.MetricsRegistry`
— live (via ``PrometheusLite.add_slo``) or reconstructed from a
metrics JSONL dump (``repro.obs.cli alerts``), so a recorded run can
be audited without re-simulating it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.metrics import (
    HISTOGRAM,
    Histogram,
    MetricsRegistry,
    labels_match,
)

LATENCY = "latency"
RATIO = "ratio"


def merged_histogram(registry: MetricsRegistry, name: str,
                     labels: Optional[Dict[str, str]] = None) -> Optional[Histogram]:
    """Merge every series of ``name`` matching the label subset."""
    want = dict(labels or {})
    merged: Optional[Histogram] = None
    for family in registry.families():
        if family.name != name or family.kind != HISTOGRAM:
            continue
        for series_labels, histogram in family.series.items():
            if not labels_match(series_labels, want):
                continue
            if merged is None:
                merged = Histogram()
            merged.merge(histogram)  # type: ignore[arg-type]
    return merged


@dataclass(frozen=True)
class SLO:
    """One service-level objective over registry metrics."""

    name: str
    objective: float                    # good fraction required, e.g. 0.99
    kind: str = LATENCY                 # LATENCY or RATIO
    metric: str = ""                    # histogram (latency) / total counter (ratio)
    threshold_ms: float = 0.0           # latency: bad when above this
    bad_metric: str = ""                # ratio: the failures counter
    labels: Dict[str, str] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective}")
        if self.kind not in (LATENCY, RATIO):
            raise ValueError(f"unknown SLO kind {self.kind!r}")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective

    def bad_fraction(self, registry: MetricsRegistry) -> Optional[float]:
        """Observed bad fraction, or None when there is no data yet."""
        if self.kind == LATENCY:
            histogram = merged_histogram(registry, self.metric, self.labels)
            if histogram is None or histogram.count == 0:
                return None
            return histogram.fraction_above(self.threshold_ms)
        total = registry.value(self.metric, self.labels)
        if total <= 0:
            return None
        bad = registry.value(self.bad_metric, self.labels)
        return min(1.0, bad / total)

    def burn_rate(self, registry: MetricsRegistry) -> Optional[float]:
        """Bad fraction over error budget (1.0 = spending exactly on
        budget); None when no data has been observed."""
        bad = self.bad_fraction(registry)
        if bad is None:
            return None
        return bad / self.error_budget


@dataclass
class SLOStatus:
    """One SLO evaluated against one registry."""

    slo: SLO
    bad_fraction: Optional[float]
    burn_rate: Optional[float]

    @property
    def breached(self) -> bool:
        return self.burn_rate is not None and self.burn_rate > 1.0

    @property
    def healthy(self) -> bool:
        return not self.breached


# -- the stack's default contract --------------------------------------------

# Cold starts: 99% of request-observed cold-start waits under 800 ms.
# The bound sits between the paper's prebaked image-resizer (~550 ms)
# and vanilla (~2 s), so prebaked fleets pass and vanilla fleets burn.
COLD_START_P99 = SLO(
    name="cold-start-p99",
    objective=0.99,
    kind=LATENCY,
    metric="router_cold_start_wait_ms",
    threshold_ms=800.0,
    description="99% of cold starts complete within 800 ms",
)

# Restores: at least 99% of criu restore attempts succeed.
RESTORE_SUCCESS = SLO(
    name="restore-success-rate",
    objective=0.99,
    kind=RATIO,
    metric="criu_restore_total",
    bad_metric="criu_restore_failures_total",
    description="at least 99% of snapshot restores succeed",
)

# Hot-chunk cache: once nodes are warm, at least half the restore-time
# chunk lookups should hit the node-local cache (a persistently cold
# cache means placement is scattering replicas or the cache is sized
# below the working set). Evaluates to "no data" on worlds that never
# enable the cache.
CHUNK_CACHE_HIT_RATE = SLO(
    name="chunk-cache-hit-rate",
    objective=0.50,
    kind=RATIO,
    metric="chunk_cache_lookups_total",
    bad_metric="chunk_cache_misses_total",
    description="at least 50% of restore chunk lookups hit the node cache",
)

DEFAULT_SLOS = (COLD_START_P99, RESTORE_SUCCESS, CHUNK_CACHE_HIT_RATE)


def evaluate_slos(registry: MetricsRegistry,
                  slos: Optional[List[SLO]] = None) -> List[SLOStatus]:
    """Evaluate SLOs (default: the stack's contract) against a registry."""
    out = []
    for slo in (slos if slos is not None else list(DEFAULT_SLOS)):
        out.append(SLOStatus(
            slo=slo,
            bad_fraction=slo.bad_fraction(registry),
            burn_rate=slo.burn_rate(registry),
        ))
    return out
