"""``python -m repro.obs.cli`` — inspect recorded telemetry offline.

Default output is a per-span-name stage table (count, total, mean,
p50/p95, max — exact percentiles, the trace has every sample);
``--tree`` prints the nested spans of one trace instead. Four
subcommands audit other recorded artifacts:

    python -m repro.obs.cli trace.jsonl
    python -m repro.obs.cli trace.jsonl --tree --trace t-0001
    python -m repro.obs.cli alerts metrics.jsonl     # SLO burn rates
    python -m repro.obs.cli profile profile.json     # phase breakdown
    python -m repro.obs.cli postmortem bundles/      # incident bundles
    python -m repro.obs.cli fleet fleet.json         # X12 fleet report

``alerts`` reconstructs a metrics registry from a JSONL dump and
evaluates the stack's SLO contract against it — exit 1 when any SLO
is breached, so recorded runs can gate in CI. ``profile`` re-renders
the critical-path table and folded stacks from a ``prebake-bench
profile --profile-out`` dump.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Dict, List, Optional

from repro.obs.export import SpanRecord, read_trace_jsonl
from repro.obs.log import get_logger

log = get_logger("obs.cli")


def _percentile(sorted_values: List[float], q: float) -> float:
    """Exact inclusive percentile over a sorted sample."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    fraction = position - lower
    return sorted_values[lower] * (1 - fraction) + sorted_values[upper] * fraction


def format_table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def summarize(records: List[SpanRecord]) -> str:
    """Group finished spans by name into a stage table."""
    by_name: Dict[str, List[float]] = {}
    errors: Dict[str, int] = {}
    for record in records:
        duration = record.get("duration_ms")
        if duration is None:
            continue
        by_name.setdefault(str(record["name"]), []).append(float(duration))
        if record.get("status") == "error":
            errors[str(record["name"])] = errors.get(str(record["name"]), 0) + 1
    rows = []
    order = sorted(by_name, key=lambda n: -sum(by_name[n]))
    for name in order:
        values = sorted(by_name[name])
        total = sum(values)
        rows.append([
            name,
            str(len(values)),
            f"{total:.2f}",
            f"{total / len(values):.2f}",
            f"{_percentile(values, 0.5):.2f}",
            f"{_percentile(values, 0.95):.2f}",
            f"{values[-1]:.2f}",
            str(errors.get(name, 0)),
        ])
    return format_table(
        ["span", "count", "total(ms)", "mean(ms)", "p50(ms)", "p95(ms)",
         "max(ms)", "errors"],
        rows,
    )


def render_tree(records: List[SpanRecord], trace_id: Optional[str] = None) -> str:
    """Indented span tree of one trace (the first, unless selected)."""
    if not records:
        return "(empty trace)"
    if trace_id is None:
        trace_id = str(records[0].get("trace"))
    spans = [r for r in records if r.get("trace") == trace_id]
    if not spans:
        raise SystemExit(f"no spans for trace {trace_id!r}")
    children: Dict[Optional[int], List[SpanRecord]] = {}
    for record in spans:
        children.setdefault(record.get("parent"), []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: (r.get("start_ms", 0.0), r.get("span", 0)))
    lines = [f"trace {trace_id}"]

    def walk(parent: Optional[int], depth: int) -> None:
        for record in children.get(parent, []):
            duration = record.get("duration_ms")
            stamp = "  (open)" if duration is None else f"  {duration:.2f}ms"
            status = "" if record.get("status", "ok") == "ok" else " [error]"
            attrs = record.get("attrs") or {}
            blob = ""
            if attrs:
                blob = "  " + " ".join(
                    f"{k}={v}" for k, v in sorted(attrs.items())
                )
            lines.append("  " * (depth + 1) + f"{record['name']}{stamp}"
                         f"{status}{blob}")
            walk(record.get("span"), depth + 1)

    walk(None, 0)
    return "\n".join(lines)


def alerts_main(argv: List[str]) -> int:
    """Evaluate the SLO contract against a recorded metrics dump."""
    from repro.obs.export import registry_from_jsonl
    from repro.obs.slo import evaluate_slos

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.cli alerts",
        description="Evaluate SLO burn rates over a metrics JSONL dump.",
    )
    parser.add_argument("metrics_file", help="metrics JSONL file (- for stdin)")
    args = parser.parse_args(argv)
    try:
        if args.metrics_file == "-":
            registry = registry_from_jsonl(sys.stdin.read())
        else:
            registry = registry_from_jsonl(pathlib.Path(args.metrics_file))
    except (OSError, ValueError) as exc:
        log.error("metrics.unreadable", file=args.metrics_file,
                  reason=str(exc))
        return 2
    rows = []
    breached = False
    for status in evaluate_slos(registry):
        if status.bad_fraction is None:
            verdict, bad, burn = "no data", "-", "-"
        else:
            verdict = "BREACH" if status.breached else "ok"
            breached = breached or status.breached
            bad = f"{status.bad_fraction:.4f}"
            burn = f"{status.burn_rate:.2f}"
        rows.append([status.slo.name, f"{status.slo.objective:.2%}",
                     bad, burn, verdict])
    print(format_table(
        ["slo", "objective", "bad fraction", "burn rate", "status"], rows))
    return 1 if breached else 0


def postmortem_main(argv: List[str]) -> int:
    """Render sealed postmortem bundles (one file or a directory)."""
    from repro.obs.postmortem import PostmortemBundle, load_bundles

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.cli postmortem",
        description="Render postmortem bundles sealed by the incident "
                    "pipeline.",
    )
    parser.add_argument("path", help="bundle JSON file, or a directory of "
                                     "postmortem-*.json bundles")
    parser.add_argument("--flight-tail", type=int, default=20,
                        help="flight-tape events to show per bundle")
    parser.add_argument("--replay", action="store_true",
                        help="print only each bundle's replay recipe as "
                             "JSON lines")
    args = parser.parse_args(argv)
    target = pathlib.Path(args.path)
    try:
        if target.is_dir():
            bundles = load_bundles(target)
            if not bundles:
                log.warning("postmortem.empty", directory=str(target))
                return 1
        else:
            bundles = [PostmortemBundle.load(target)]
    except (OSError, ValueError, KeyError) as exc:
        log.error("postmortem.unreadable", path=args.path, reason=str(exc))
        return 2
    if args.replay:
        import json
        for bundle in bundles:
            print(json.dumps(bundle.replay, sort_keys=True))
        return 0
    for index, bundle in enumerate(bundles):
        if index:
            print()
        print(bundle.render(flight_tail=args.flight_tail))
    return 0


def profile_main(argv: List[str]) -> int:
    """Re-render a phase-profile dump (critical path + folded stacks)."""
    from repro.bench.profile import load_profile_json, result_from_dict

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.cli profile",
        description="Render a phase-profile JSON dump.",
    )
    parser.add_argument("profile_file", help="profile JSON (- for stdin)")
    parser.add_argument("--flame", action="store_true",
                        help="print only the folded flamegraph stacks")
    args = parser.parse_args(argv)
    try:
        if args.profile_file == "-":
            import json
            result = result_from_dict(json.loads(sys.stdin.read()))
        else:
            result = load_profile_json(args.profile_file)
    except (OSError, ValueError, KeyError) as exc:
        log.error("profile.unreadable", file=args.profile_file,
                  reason=str(exc))
        return 2
    if args.flame:
        print("\n".join(result.folded()))
    else:
        print(result.render())
    return 0


def fleet_main(argv: List[str]) -> int:
    """Re-render a fleet-study artifact (X12 report + blame tables)."""
    from repro.bench.fleet_study import render_fleet_report

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.cli fleet",
        description="Render a fleet-study JSON artifact recorded by "
                    "`prebake-bench fleet-study --fleet-out`.",
    )
    parser.add_argument("fleet_file", help="fleet artifact JSON (- for stdin)")
    parser.add_argument("--flame", action="store_true",
                        help="print only the folded attribution stacks")
    parser.add_argument("--assert-stitched", action="store_true",
                        help="exit 1 unless the exemplar trace stitches "
                             "spans across >= 2 node identities")
    args = parser.parse_args(argv)
    import json
    try:
        if args.fleet_file == "-":
            artifact = json.loads(sys.stdin.read())
        else:
            artifact = json.loads(
                pathlib.Path(args.fleet_file).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        log.error("fleet.unreadable", file=args.fleet_file, reason=str(exc))
        return 2
    try:
        if args.flame:
            lines: List[str] = []
            for rep in artifact.get("repetitions", []):
                lines.extend(rep.get("folded", []))
            print("\n".join(lines))
        else:
            print(render_fleet_report(artifact))
    except (KeyError, TypeError, ValueError) as exc:
        log.error("fleet.malformed", file=args.fleet_file, reason=str(exc))
        return 2
    if args.assert_stitched:
        from repro.bench.fleet_study import stitched_trace_nodes
        nodes = stitched_trace_nodes(artifact.get("exemplar_spans", []))
        if len(nodes) < 2:
            log.error("fleet.not_stitched", nodes=sorted(nodes))
            return 1
        log.info("fleet.stitched", nodes=sorted(nodes))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.cli",
        description="Summarize a JSONL trace produced by the bench harness.",
    )
    parser.add_argument("trace_file", help="JSONL trace file (- for stdin)")
    parser.add_argument("--tree", action="store_true",
                        help="print the span tree of one trace")
    parser.add_argument("--trace", default=None,
                        help="trace id to print with --tree (default: first)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Subcommand dispatch; the bare form stays the trace summarizer so
    # existing `python -m repro.obs.cli trace.jsonl` invocations hold.
    if argv and argv[0] == "alerts":
        return alerts_main(argv[1:])
    if argv and argv[0] == "profile":
        return profile_main(argv[1:])
    if argv and argv[0] == "postmortem":
        return postmortem_main(argv[1:])
    if argv and argv[0] == "fleet":
        return fleet_main(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        if args.trace_file == "-":
            records = read_trace_jsonl(sys.stdin.read())
        else:
            records = read_trace_jsonl(pathlib.Path(args.trace_file))
    except (OSError, ValueError) as exc:
        log.error("trace.unreadable", file=args.trace_file, reason=str(exc))
        return 1
    if not records:
        log.warning("trace.empty", file=args.trace_file)
        return 0
    if args.tree:
        print(render_tree(records, args.trace))
    else:
        print(summarize(records))
    log.info("trace.summarized", file=args.trace_file, spans=len(records))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
