"""Shared metrics registry: counters, gauges, log-linear histograms.

One registry per simulated world (installed next to the span tracer by
:func:`repro.obs.install`). The OpenFaaS ``PrometheusLite`` is an
alert-rule layer over this registry, so platform code and experiment
harnesses read the same series.

Histograms use log-linear bucketing (HDR-histogram style): each
power-of-two range is split into :data:`SUBBUCKETS` linear buckets,
bounding the relative quantile error by ``1/SUBBUCKETS`` regardless of
magnitude — the right trade for latencies spanning 0.01ms page faults
to multi-second JVM boots.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

LabelSet = Tuple[Tuple[str, str], ...]

_EMPTY_LABELS: LabelSet = ()


class MetricsError(Exception):
    """Registry misuse (type mismatch, negative counter increment)."""


def label_set(labels: Optional[Dict[str, str]]) -> LabelSet:
    """Canonical, hashable form of a label dict.

    The no-labels case (the overwhelming majority of hot-path writes)
    short-circuits to a shared empty tuple without building a dict.
    """
    if not labels:
        return _EMPTY_LABELS
    return tuple(sorted(labels.items()))


def labels_match(series: LabelSet, want: Dict[str, str]) -> bool:
    """True when ``series`` carries every label in ``want``."""
    have = dict(series)
    return all(have.get(key) == value for key, value in want.items())


# ---------------------------------------------------------------------------
# Histogram bucketing
# ---------------------------------------------------------------------------

SUBBUCKETS = 32  # linear buckets per power of two (~3% relative error)

# frexp exponents for float range go down to about -1074 (subnormals);
# shifting keeps bucket indices positive.
_EXP_SHIFT = 1080


def bucket_index(value: float) -> int:
    """Log-linear bucket index; 0 collects zero and negative values."""
    if value <= 0.0:
        return 0
    mantissa, exponent = math.frexp(value)  # value = mantissa * 2**exponent
    sub = int((mantissa - 0.5) * 2.0 * SUBBUCKETS)  # 0 .. SUBBUCKETS-1
    if sub == SUBBUCKETS:  # mantissa == 1.0 cannot happen, but guard rounding
        sub -= 1
    return (exponent + _EXP_SHIFT) * SUBBUCKETS + sub + 1


def bucket_midpoint(index: int) -> float:
    """Representative value for a bucket (geometric centre of its range)."""
    if index <= 0:
        return 0.0
    index -= 1
    exponent = index // SUBBUCKETS - _EXP_SHIFT
    sub = index % SUBBUCKETS
    low = math.ldexp(0.5 + sub / (2.0 * SUBBUCKETS), exponent)
    high = math.ldexp(0.5 + (sub + 1) / (2.0 * SUBBUCKETS), exponent)
    return (low + high) / 2.0


class Histogram:
    """Log-linear histogram for one label set.

    Each bucket may carry one *exemplar* — the trace id (and exact
    value) of the most recent observation that landed in it — linking
    a latency bucket back to a causal span tree for drill-down.
    """

    __slots__ = ("buckets", "count", "total", "min_value", "max_value",
                 "exemplars")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf
        self.exemplars: Dict[int, Tuple[str, float]] = {}

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        self.min_value = min(self.min_value, value)
        self.max_value = max(self.max_value, value)
        if exemplar is not None:
            self.exemplars[index] = (exemplar, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (exact min/max at the extremes)."""
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.min_value
        if q == 1.0:
            return self.max_value
        rank = q * self.count
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                # Clamp the bucket representative into the observed range
                # so approximation error never escapes [min, max].
                mid = bucket_midpoint(index)
                return min(max(mid, self.min_value), self.max_value)
        return self.max_value  # pragma: no cover - rank <= count always hits

    def percentiles(self, points: Iterable[float] = (0.5, 0.95, 0.99)) -> Dict[float, float]:
        return {p: self.quantile(p) for p in points}

    def fraction_above(self, threshold: float) -> float:
        """Fraction of observations strictly above ``threshold``.

        Bucket-granular (a bucket counts as "above" when its midpoint
        exceeds the threshold), which is the resolution SLO burn-rate
        evaluation needs — the same ~1/SUBBUCKETS relative error as
        quantiles.
        """
        if self.count == 0:
            return 0.0
        above = sum(
            n for index, n in self.buckets.items()
            if bucket_midpoint(index) > threshold
        )
        return above / self.count

    def observe_many(self, values: Sequence[float]) -> None:
        """Batched :meth:`observe` (no exemplars).

        Bucket indices compute in one vectorized ``frexp`` pass;
        ``count``/``min``/``max`` update exactly as repeated single
        observations would, and ``total`` accumulates in the same
        left-to-right order so the float result is bit-identical to
        the sequential path.
        """
        vals = np.asarray(values, dtype=np.float64)
        if vals.size == 0:
            return
        mantissa, exponent = np.frexp(vals)
        sub = ((mantissa - 0.5) * (2.0 * SUBBUCKETS)).astype(np.int64)
        np.clip(sub, 0, SUBBUCKETS - 1, out=sub)
        indices = (exponent.astype(np.int64) + _EXP_SHIFT) * SUBBUCKETS + sub + 1
        indices[vals <= 0.0] = 0
        unique, counts = np.unique(indices, return_counts=True)
        buckets = self.buckets
        for index, n in zip(unique.tolist(), counts.tolist()):
            buckets[index] = buckets.get(index, 0) + n
        self.count += int(vals.size)
        total = self.total
        for value in vals.tolist():
            total += value
        self.total = total
        self.min_value = min(self.min_value, float(vals.min()))
        self.max_value = max(self.max_value, float(vals.max()))

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (exact for bucket data)."""
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.count += other.count
        self.total += other.total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)
        self.exemplars.update(other.exemplars)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


class Metric:
    """One named metric family: a kind plus its per-labelset series."""

    __slots__ = ("name", "kind", "series")

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind
        self.series: Dict[LabelSet, object] = {}


class CounterHandle:
    """Pre-resolved write path for one counter series.

    Obtained from :meth:`MetricsRegistry.counter`; the family lookup,
    kind check and label-set canonicalization happen once at resolve
    time, so each :meth:`inc` is a dict update on the bound series.
    """

    __slots__ = ("series", "key")

    def __init__(self, series: Dict[LabelSet, object], key: LabelSet) -> None:
        self.series = series
        self.key = key

    def inc(self, value: float = 1.0) -> None:
        if value < 0:
            raise MetricsError("counters only go up")
        series = self.series
        series[self.key] = series.get(self.key, 0.0) + value  # type: ignore[operator]

    @property
    def value(self) -> float:
        return self.series.get(self.key, 0.0)  # type: ignore[return-value]


class GaugeHandle:
    """Pre-resolved write path for one gauge series."""

    __slots__ = ("series", "key")

    def __init__(self, series: Dict[LabelSet, object], key: LabelSet) -> None:
        self.series = series
        self.key = key

    def set(self, value: float) -> None:
        self.series[self.key] = float(value)

    @property
    def value(self) -> float:
        return self.series.get(self.key, 0.0)  # type: ignore[return-value]


class MetricsRegistry:
    """Counters, gauges, and histograms addressed by (name, labels)."""

    DEFAULT_QUANTILES = (0.5, 0.95, 0.99)

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # -- family management --------------------------------------------------------

    def _family(self, name: str, kind: str) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Metric(name, kind)
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise MetricsError(
                f"metric {name!r} is a {metric.kind}, not a {kind}"
            )
        return metric

    def families(self) -> List[Metric]:
        return list(self._metrics.values())

    def kind_of(self, name: str) -> Optional[str]:
        metric = self._metrics.get(name)
        return metric.kind if metric else None

    # -- write paths ----------------------------------------------------------------

    def inc(self, name: str, value: float = 1.0,
            labels: Optional[Dict[str, str]] = None) -> None:
        if value < 0:
            raise MetricsError("counters only go up")
        family = self._family(name, COUNTER)
        key = label_set(labels)
        family.series[key] = family.series.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float,
                  labels: Optional[Dict[str, str]] = None) -> None:
        family = self._family(name, GAUGE)
        family.series[label_set(labels)] = float(value)

    def observe(self, name: str, value: float,
                labels: Optional[Dict[str, str]] = None,
                exemplar: Optional[str] = None) -> None:
        family = self._family(name, HISTOGRAM)
        key = label_set(labels)
        histogram = family.series.get(key)
        if histogram is None:
            histogram = Histogram()
            family.series[key] = histogram
        histogram.observe(value, exemplar=exemplar)

    # -- pre-resolved handles ---------------------------------------------------------

    def counter(self, name: str,
                labels: Optional[Dict[str, str]] = None) -> CounterHandle:
        """Bind a counter series once; the handle's ``inc`` skips the
        per-write family lookup and label canonicalization."""
        family = self._family(name, COUNTER)
        return CounterHandle(family.series, label_set(labels))

    def gauge(self, name: str,
              labels: Optional[Dict[str, str]] = None) -> GaugeHandle:
        """Bind a gauge series once (see :meth:`counter`)."""
        family = self._family(name, GAUGE)
        return GaugeHandle(family.series, label_set(labels))

    def histogram_series(self, name: str,
                         labels: Optional[Dict[str, str]] = None) -> Histogram:
        """The histogram for one label set, created if missing.

        The returned :class:`Histogram` *is* the fast-path handle —
        ``observe``/``observe_many`` on it write straight into the
        bucket dict with no registry indirection.
        """
        family = self._family(name, HISTOGRAM)
        key = label_set(labels)
        histogram = family.series.get(key)
        if histogram is None:
            histogram = Histogram()
            family.series[key] = histogram
        return histogram  # type: ignore[return-value]

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (counters add, gauges
        take the other's value, histograms merge bucket-wise)."""
        for family in other.families():
            mine = self._family(family.name, family.kind)
            for key, series in family.series.items():
                if family.kind == COUNTER:
                    mine.series[key] = mine.series.get(key, 0.0) + series  # type: ignore[operator]
                elif family.kind == GAUGE:
                    mine.series[key] = series
                else:
                    histogram = mine.series.get(key)
                    if histogram is None:
                        histogram = Histogram()
                        mine.series[key] = histogram
                    histogram.merge(series)  # type: ignore[arg-type]

    # -- read paths -----------------------------------------------------------------

    def value(self, name: str, labels: Optional[Dict[str, str]] = None) -> float:
        """Sum of a counter/gauge across series matching the label subset.

        (Histograms are excluded: alert rules compare scalar series.)
        """
        metric = self._metrics.get(name)
        if metric is None or metric.kind == HISTOGRAM:
            return 0.0
        want = dict(labels or {})
        return sum(
            v for series, v in metric.series.items()
            if labels_match(series, want)
        )

    def histogram(self, name: str,
                  labels: Optional[Dict[str, str]] = None) -> Optional[Histogram]:
        """The histogram for one exact label set, or None."""
        metric = self._metrics.get(name)
        if metric is None or metric.kind != HISTOGRAM:
            return None
        return metric.series.get(label_set(labels))

    def quantile(self, name: str, q: float,
                 labels: Optional[Dict[str, str]] = None) -> float:
        histogram = self.histogram(name, labels)
        return histogram.quantile(q) if histogram else 0.0
