"""Deterministic postmortem bundles.

When an incident is declared — an online detector flags an anomaly, or
a request dies with an unrecovered ``PlatformError`` — the
:class:`PostmortemCollector` seals everything an investigation needs
into one JSON bundle:

* the tail of the flight tape (what the platform was doing just before);
* the offending request's span tree (finished and still-open spans of
  the incident trace);
* windowed metric rollups around the incident (the curves, not just
  end-of-run scalars);
* SLO burn at seal time;
* the fault schedule digest, fired counts, and schedule tail;
* every anomaly flagged so far; and
* a **replay recipe** — the seed plus the experiment parameters that
  produced the run. Because the whole stack is deterministic, feeding
  the recipe back (``repro.bench.incident.replay_recipe``) reproduces
  the identical incident: same schedule digest, same flagged windows.

Bundles are sealed from *live* state (reading the tracer, registry,
flight ring and injector mutates nothing and advances no clock), so
collection never perturbs the run it is documenting. Rendering lives
here too (:meth:`PostmortemBundle.render`) and is exposed as
``repro.obs.cli postmortem``.
"""

from __future__ import annotations

import json
import pathlib
import re
from typing import Dict, List, Optional, Union

from repro.obs import slo as slo_mod
from repro.obs.anomaly import AnomalyEvent
from repro.obs.log import get_logger

BUNDLE_SCHEMA = 1

# Incident kinds.
ANOMALY = "anomaly"
ERROR = "error"
MANUAL = "manual"

_log = get_logger("postmortem")


def _slug(text: str) -> str:
    cleaned = re.sub(r"[^A-Za-z0-9._-]+", "-", text).strip("-")
    return cleaned or "incident"


def _slo_status_dict(status: "slo_mod.SLOStatus") -> Dict[str, object]:
    return {
        "slo": status.slo.name,
        "objective": status.slo.objective,
        "bad_fraction": status.bad_fraction,
        "burn_rate": status.burn_rate,
        "breached": status.breached,
    }


class PostmortemBundle:
    """One sealed incident capsule (a JSON document with accessors)."""

    def __init__(self, payload: Dict[str, object]) -> None:
        if payload.get("schema") != BUNDLE_SCHEMA:
            raise ValueError(
                f"unsupported postmortem schema: {payload.get('schema')!r}")
        self.payload = payload

    # -- convenience accessors ---------------------------------------------------

    @property
    def reason(self) -> Dict[str, object]:
        return self.payload["reason"]  # type: ignore[return-value]

    @property
    def kind(self) -> str:
        return str(self.reason.get("kind", ""))

    @property
    def sealed_at_ms(self) -> float:
        return float(self.payload["sealed_at_ms"])  # type: ignore[arg-type]

    @property
    def trace_id(self) -> Optional[str]:
        value = self.payload.get("trace", {}).get("trace")  # type: ignore[union-attr]
        return None if value is None else str(value)

    @property
    def replay(self) -> Dict[str, object]:
        return dict(self.payload.get("replay") or {})  # type: ignore[arg-type]

    @property
    def fault_digest(self) -> Optional[str]:
        faults = self.payload.get("faults") or {}
        digest = faults.get("schedule_digest")  # type: ignore[union-attr]
        return None if digest is None else str(digest)

    @property
    def anomalies(self) -> List[AnomalyEvent]:
        records = self.payload.get("anomalies") or []
        return [AnomalyEvent.from_dict(r) for r in records]  # type: ignore[union-attr]

    # -- (de)serialization -------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(self.payload, sort_keys=True, indent=2)

    def write(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        path = pathlib.Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, source: Union[str, pathlib.Path]) -> "PostmortemBundle":
        """Load a bundle from a JSON file path or raw JSON text."""
        if isinstance(source, pathlib.Path):
            text = source.read_text(encoding="utf-8")
        else:
            text = str(source)
            if not text.lstrip().startswith("{"):
                text = pathlib.Path(text).read_text(encoding="utf-8")
        return cls(json.loads(text))

    # -- rendering ---------------------------------------------------------------

    def render(self, flight_tail: int = 20) -> str:
        """Human-oriented incident report (``repro.obs.cli postmortem``)."""
        p = self.payload
        reason = self.reason
        lines: List[str] = []
        lines.append(f"POSTMORTEM  {p.get('label', '')}  "
                     f"sealed at {self.sealed_at_ms:.3f} ms sim")
        lines.append(f"  reason: {reason.get('kind')}"
                     + (f" — {reason.get('detail')}" if reason.get("detail") else ""))
        if self.trace_id:
            lines.append(f"  trace:  {self.trace_id}")
        replay = self.replay
        if replay:
            lines.append("")
            lines.append("REPLAY RECIPE")
            for key in sorted(replay):
                lines.append(f"  {key} = {replay[key]}")
        anomalies = p.get("anomalies") or []
        if anomalies:
            lines.append("")
            lines.append(f"ANOMALIES ({len(anomalies)})")
            for record in anomalies:
                lines.append("  " + AnomalyEvent.from_dict(record).line())
        statuses = p.get("slo") or []
        if statuses:
            lines.append("")
            lines.append("SLO BURN AT SEAL")
            for s in statuses:
                burn = s.get("burn_rate")
                burn_text = "no data" if burn is None else f"burn={burn:.2f}"
                flag = "BREACHED" if s.get("breached") else "ok"
                lines.append(f"  {s['slo']:<24} {burn_text:<14} {flag}")
        faults = p.get("faults") or {}
        if faults:
            lines.append("")
            lines.append("FAULTS")
            lines.append(f"  schedule digest: {faults.get('schedule_digest')}")
            fired = faults.get("fired") or {}
            for site in sorted(fired):
                lines.append(f"  fired {site}: {fired[site]}")
        flight = p.get("flight") or {}
        events = flight.get("events") or []
        if events:
            lines.append("")
            shown = events[-flight_tail:]
            lines.append(f"FLIGHT TAPE (last {len(shown)} of "
                         f"{flight.get('total', len(events))} events, "
                         f"{flight.get('dropped', 0)} dropped)")
            from repro.obs.flight import FlightEvent
            for record in shown:
                lines.append("  " + FlightEvent.from_dict(record).line())
        spans = (p.get("trace") or {}).get("spans") or []
        if spans:
            lines.append("")
            lines.append(f"INCIDENT SPAN TREE ({len(spans)} spans)")
            lines.extend("  " + line for line in _render_span_tree(spans))
        return "\n".join(lines) + "\n"


def _render_span_tree(spans: List[Dict[str, object]]) -> List[str]:
    by_parent: Dict[Optional[int], List[Dict[str, object]]] = {}
    ids = {s.get("span") for s in spans}
    for s in spans:
        parent = s.get("parent")
        key = parent if parent in ids else None
        by_parent.setdefault(key, []).append(s)  # type: ignore[arg-type]

    lines: List[str] = []

    def walk(parent: Optional[int], depth: int) -> None:
        for s in sorted(by_parent.get(parent, []),
                        key=lambda s: (s.get("start_ms", 0.0), s.get("span", 0))):
            duration = s.get("duration_ms")
            time_text = ("open" if duration is None
                         else f"{float(duration):9.3f} ms")  # type: ignore[arg-type]
            status = s.get("status", "ok")
            mark = "" if status == "ok" else f"  [{status}]"
            lines.append(f"{'  ' * depth}{s.get('name')}  {time_text}{mark}")
            walk(s.get("span"), depth + 1)  # type: ignore[arg-type]

    walk(None, 0)
    return lines


class PostmortemCollector:
    """Seals bundles from live world state on anomaly or error.

    One collector per world. Subscribe :meth:`on_anomaly` to the
    anomaly monitor and call :meth:`on_error` from the request loop's
    ``PlatformError`` handler; both funnel into :meth:`seal`.

    ``recipe`` is the experiment's replay recipe (seed + parameters);
    the collector stamps the live fault-schedule digest into it at seal
    time so the bundle is self-reproducing. ``max_bundles`` caps how
    many incidents one run may seal (a 100%-fault-rate run would
    otherwise bundle every request); further incidents are counted in
    ``suppressed`` but not sealed.
    """

    def __init__(self, kernel, seed: Optional[int] = None,
                 label: str = "incident",
                 recipe: Optional[Dict[str, object]] = None,
                 out_dir: Optional[Union[str, pathlib.Path]] = None,
                 flight_tail: int = 256,
                 max_bundles: int = 8) -> None:
        if max_bundles < 1:
            raise ValueError(f"max_bundles must be >= 1, got {max_bundles}")
        self.kernel = kernel
        self.seed = seed
        self.label = _slug(label)
        self.recipe = dict(recipe or {})
        self.out_dir = None if out_dir is None else pathlib.Path(out_dir)
        self.flight_tail = flight_tail
        self.max_bundles = max_bundles
        self.bundles: List[PostmortemBundle] = []
        self.paths: List[pathlib.Path] = []
        self.suppressed = 0

    # -- incident hooks ----------------------------------------------------------

    def on_anomaly(self, event: AnomalyEvent) -> Optional[PostmortemBundle]:
        """Anomaly-monitor subscriber: seal on the first flag(s)."""
        return self.seal(
            ANOMALY,
            detail=(f"{event.detector}: value={event.value:.3f} "
                    f"z={event.score:.1f}"),
            trace_id=event.trace_id,
        )

    def on_error(self, error: BaseException,
                 trace_id: Optional[str] = None) -> Optional[PostmortemBundle]:
        """Request-loop hook for an unrecovered platform error."""
        return self.seal(
            ERROR,
            detail=f"{type(error).__name__}: {error}",
            error_type=type(error).__name__,
            trace_id=trace_id,
        )

    # -- sealing -----------------------------------------------------------------

    def seal(self, kind: str, detail: str = "",
             error_type: Optional[str] = None,
             trace_id: Optional[str] = None) -> Optional[PostmortemBundle]:
        """Capture live state into a bundle (None once over the cap)."""
        if len(self.bundles) >= self.max_bundles:
            self.suppressed += 1
            return None
        kernel = self.kernel
        hub = kernel.obs
        reason: Dict[str, object] = {"kind": kind}
        if detail:
            reason["detail"] = detail
        if error_type:
            reason["error_type"] = error_type

        payload: Dict[str, object] = {
            "schema": BUNDLE_SCHEMA,
            "label": self.label,
            "bundle_seq": len(self.bundles) + 1,
            "sealed_at_ms": kernel.clock.now,
            "reason": reason,
        }
        if self.seed is not None:
            payload["seed"] = self.seed

        # Flight tape tail.
        flight = kernel.flight
        if flight is not None:
            tail = flight.last(self.flight_tail)
            payload["flight"] = {
                "total": flight.total,
                "dropped": flight.dropped,
                "events": [e.as_dict() for e in tail],
            }

        # Incident span tree: finished + still-open spans of the trace.
        if hub is not None:
            tracer = hub.tracer
            if trace_id is None:
                trace_id = tracer.current_trace_id()
            if trace_id is not None:
                spans = [s.as_dict() for s in tracer.by_trace(trace_id)]
                spans += [s.as_dict() for s in tracer.open_spans()
                          if s.trace_id == trace_id]
                payload["trace"] = {"trace": trace_id, "spans": spans}

            if hub.timeseries is not None:
                payload["metrics_windows"] = {
                    "window_ms": hub.timeseries.window_ms,
                    "series": hub.timeseries.rollup(),
                }
            payload["slo"] = [
                _slo_status_dict(s)
                for s in slo_mod.evaluate_slos(hub.metrics)
            ]
            if hub.anomaly is not None:
                payload["anomalies"] = [
                    e.as_dict() for e in hub.anomaly.events]

        # Fault schedule provenance + replay recipe.
        recipe = dict(self.recipe)
        if self.seed is not None:
            recipe.setdefault("seed", self.seed)
        injector = kernel.faults
        if injector is not None:
            digest = injector.schedule_digest()
            payload["faults"] = {
                "schedule_digest": digest,
                "decisions": len(injector.records),
                "fired": dict(injector.fired),
                "plan": injector.plan.describe(),
                "schedule_tail": injector.schedule_lines()[-32:],
            }
            recipe["fault_schedule_digest"] = digest
        if recipe:
            payload["replay"] = recipe

        bundle = PostmortemBundle(payload)
        self.bundles.append(bundle)
        if self.out_dir is not None:
            self.out_dir.mkdir(parents=True, exist_ok=True)
            name = f"postmortem-{self.label}-{len(self.bundles):03d}.json"
            self.paths.append(bundle.write(self.out_dir / name))
        _log.info("postmortem.sealed", kind=kind,
                  bundle_seq=len(self.bundles),
                  sealed_at_ms=round(kernel.clock.now, 3),
                  detail=detail or None)
        return bundle

    def write_all(self, out_dir: Union[str, pathlib.Path]) -> List[pathlib.Path]:
        """Write every sealed bundle into ``out_dir`` (late binding for
        collectors constructed without one)."""
        out = pathlib.Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        paths = []
        for index, bundle in enumerate(self.bundles, start=1):
            name = f"postmortem-{self.label}-{index:03d}.json"
            paths.append(bundle.write(out / name))
        return paths


def load_bundles(directory: Union[str, pathlib.Path]) -> List[PostmortemBundle]:
    """Load every ``postmortem-*.json`` in a directory, name order."""
    out = []
    for path in sorted(pathlib.Path(directory).glob("postmortem-*.json")):
        out.append(PostmortemBundle.load(path))
    return out
