"""Windowed time-series rollups over the metrics stream.

The :class:`~repro.obs.metrics.MetricsRegistry` answers *end-of-run*
questions (final counts, whole-run quantiles). Incidents need *curves*:
what was the cold-start p99 in the 500 ms before the alert, how did the
chunk-cache hit rate move across the fault window. This module keeps a
bounded ring of ``(sim_time, value)`` samples per metric and rolls them
into fixed-width windows with count/mean/min/max/p50/p99 (numpy-exact
percentiles over the window's samples — windows are small, so exact
beats bucketed).

Enabled by installing a :class:`TimeseriesTable` on the telemetry hub
(``obs.enable_timeseries``); the :func:`repro.obs.observe` /
``count`` / ``gauge`` helpers then feed it automatically. A world
without one pays a single attribute check per metric write.

Everything is deterministic: samples are keyed on simulated time, no
wall clocks, no randomness — two runs with the same seed produce the
same rollups, which is what lets a postmortem bundle's windows be
reproduced from a replay.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

import numpy as np

# Counter samples carry the *increment*; rollups sum them per window.
COUNTER_SAMPLE = "counter"
# Value samples (histogram observations, gauges) carry the observation.
VALUE_SAMPLE = "value"

DEFAULT_CAPACITY = 8192


class WindowStat:
    """One window's rollup of a series."""

    __slots__ = ("start_ms", "end_ms", "count", "total", "mean",
                 "min_value", "max_value", "p50", "p99")

    def __init__(self, start_ms: float, end_ms: float,
                 values: "np.ndarray") -> None:
        self.start_ms = start_ms
        self.end_ms = end_ms
        self.count = int(values.size)
        self.total = float(values.sum()) if values.size else 0.0
        self.mean = float(values.mean()) if values.size else 0.0
        self.min_value = float(values.min()) if values.size else 0.0
        self.max_value = float(values.max()) if values.size else 0.0
        self.p50 = float(np.percentile(values, 50)) if values.size else 0.0
        self.p99 = float(np.percentile(values, 99)) if values.size else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min_value,
            "max": self.max_value,
            "p50": self.p50,
            "p99": self.p99,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WindowStat([{self.start_ms}, {self.end_ms}) "
                f"n={self.count} p50={self.p50:.3f} p99={self.p99:.3f})")


class WindowedSeries:
    """Bounded ring of ``(sim_time, value)`` samples for one metric."""

    __slots__ = ("name", "kind", "capacity", "_samples", "total_samples")

    def __init__(self, name: str, kind: str = VALUE_SAMPLE,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.kind = kind
        self.capacity = capacity
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=capacity)
        self.total_samples = 0

    def record(self, at_ms: float, value: float) -> None:
        self._samples.append((at_ms, float(value)))
        self.total_samples += 1

    def __len__(self) -> int:
        return len(self._samples)

    def samples(self) -> List[Tuple[float, float]]:
        return list(self._samples)

    def values_between(self, start_ms: float, end_ms: float) -> List[float]:
        """Sample values with ``start_ms <= t < end_ms`` (time order)."""
        return [v for t, v in self._samples if start_ms <= t < end_ms]

    def windows(self, window_ms: float, t0: float = 0.0,
                t_end: Optional[float] = None) -> List[WindowStat]:
        """Roll the buffered samples into fixed windows of ``window_ms``.

        Windows are aligned to ``t0`` (``[t0 + k*w, t0 + (k+1)*w)``).
        Empty leading/trailing windows are skipped; empty windows
        *between* populated ones are kept, so gaps stay visible as
        zero-count entries in the curve.
        """
        if window_ms <= 0:
            raise ValueError(f"window_ms must be positive, got {window_ms}")
        if not self._samples:
            return []
        times = np.array([t for t, _ in self._samples])
        values = np.array([v for _, v in self._samples])
        first = int(np.floor((times.min() - t0) / window_ms))
        last_t = times.max() if t_end is None else max(times.max(), t_end)
        last = int(np.floor((last_t - t0) / window_ms))
        out: List[WindowStat] = []
        for k in range(first, last + 1):
            lo = t0 + k * window_ms
            hi = lo + window_ms
            mask = (times >= lo) & (times < hi)
            out.append(WindowStat(lo, hi, values[mask]))
        return out


class TimeseriesTable:
    """Per-metric :class:`WindowedSeries`, fed by the obs helpers.

    ``window_ms`` is the table's default rollup width (postmortems and
    anomaly watches share it so their windows line up). Series are
    keyed by metric name only — rollups are platform-level curves, and
    label fan-out belongs to the registry.
    """

    def __init__(self, window_ms: float = 1_000.0,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        if window_ms <= 0:
            raise ValueError(f"window_ms must be positive, got {window_ms}")
        self.window_ms = window_ms
        self.capacity = capacity
        self._series: Dict[str, WindowedSeries] = {}

    # -- write path ------------------------------------------------------------

    def record(self, name: str, at_ms: float, value: float,
               kind: str = VALUE_SAMPLE) -> None:
        series = self._series.get(name)
        if series is None:
            series = WindowedSeries(name, kind=kind, capacity=self.capacity)
            self._series[name] = series
        series.record(at_ms, value)

    # -- read paths ------------------------------------------------------------

    def series(self, name: str) -> Optional[WindowedSeries]:
        return self._series.get(name)

    def names(self) -> List[str]:
        return sorted(self._series)

    def windows(self, name: str,
                window_ms: Optional[float] = None) -> List[WindowStat]:
        series = self._series.get(name)
        if series is None:
            return []
        return series.windows(window_ms or self.window_ms)

    def rollup(self, names: Optional[Iterable[str]] = None,
               window_ms: Optional[float] = None
               ) -> Dict[str, List[Dict[str, object]]]:
        """JSON-ready per-metric window rollups (postmortem payload)."""
        picked = sorted(names) if names is not None else self.names()
        out: Dict[str, List[Dict[str, object]]] = {}
        for name in picked:
            stats = self.windows(name, window_ms)
            if stats:
                out[name] = [s.as_dict() for s in stats]
        return out

    def windowed_rate(self, bad: str, total: str, start_ms: float,
                      end_ms: float) -> Optional[float]:
        """``sum(bad) / sum(total)`` over one window, or None when the
        window saw no ``total`` increments."""
        total_series = self._series.get(total)
        if total_series is None:
            return None
        denominator = sum(total_series.values_between(start_ms, end_ms))
        if denominator <= 0:
            return None
        bad_series = self._series.get(bad)
        numerator = (sum(bad_series.values_between(start_ms, end_ms))
                     if bad_series is not None else 0.0)
        return min(1.0, numerator / denominator)


def replay_events(events, window_ms: float = 1_000.0,
                  capacity: int = DEFAULT_CAPACITY) -> TimeseriesTable:
    """Rebuild a :class:`TimeseriesTable` from recorded flight events.

    Consumes :data:`repro.obs.flight.METRIC_SAMPLE` events (attrs:
    ``metric``, ``value``, optional ``sample_kind``) in tape order.
    Because both the live table and the tape are driven by the same
    deterministic sample stream, replaying a tape reconstructs window
    rollups identical to the live run's — the property the flight
    tests pin down.
    """
    from repro.obs.flight import METRIC_SAMPLE

    table = TimeseriesTable(window_ms=window_ms, capacity=capacity)
    for event in events:
        if event.kind != METRIC_SAMPLE:
            continue
        table.record(
            str(event.attrs["metric"]),
            event.at_ms,
            float(event.attrs["value"]),  # type: ignore[arg-type]
            kind=str(event.attrs.get("sample_kind", VALUE_SAMPLE)),
        )
    return table
