"""Online anomaly detection over the telemetry stream.

Detectors are **online** (one pass, bounded state), **deterministic**
(no wall clocks, no randomness — a seeded rerun flags the identical
windows) and **robust**: the baseline is an EWMA of accepted samples
and the dispersion estimate is a MAD (median absolute deviation) over
a bounded history, so a latency spike cannot drag its own detection
threshold up the way a mean/stddev z-score would.

A sample ``x`` is anomalous when its robust z-score

    z = (x - ewma) / (1.4826 * MAD)

crosses the detector's threshold in the watched direction. Anomalous
samples are *not* folded back into the baseline, so an incident never
becomes the new normal.

The :class:`AnomalyMonitor` wires three watches over the platform's
health signals (the issue's contract):

* **cold-start latency** — per-sample over
  ``router_cold_start_wait_ms`` observations;
* **restore-failure rate** — per-window rate of
  ``criu_restore_failures_total`` over ``criu_restore_total``;
* **chunk-cache miss rate** — per-window rate of
  ``chunk_cache_misses_total`` over ``chunk_cache_lookups_total`` (the
  complement of the SLO's hit rate; a collapsing cache spikes it).

The monitor is fed by the :func:`repro.obs.observe`/``count`` helpers
when enabled on the hub; each :class:`AnomalyEvent` is appended to the
monitor, recorded on the flight tape, counted in the registry
(``anomaly_events_total``) and delivered to subscribers — the alert
path (``PrometheusLite.attach_anomaly_monitor``) and the postmortem
collector both subscribe.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

from repro.obs import flight as flight_mod

# Consistency constant: MAD of a normal distribution * 1.4826 == sigma.
MAD_SIGMA = 1.4826

ABOVE = "above"
BELOW = "below"
BOTH = "both"

# Canonical watch names (postmortems and tests refer to these).
COLD_START_LATENCY = "cold-start-latency"
RESTORE_FAILURE_RATE = "restore-failure-rate"
CHUNK_CACHE_MISS_RATE = "chunk-cache-miss-rate"
DEGRADED_RESTORE_RATE = "degraded-restore-rate"
LOCALITY_MISS_RATE = "locality-miss-rate"


class AnomalyEvent:
    """One flagged observation (typed, serializable)."""

    __slots__ = ("at_ms", "detector", "metric", "value", "baseline",
                 "score", "threshold", "direction", "window_start_ms",
                 "window_end_ms", "trace_id")

    def __init__(self, at_ms: float, detector: str, metric: str,
                 value: float, baseline: float, score: float,
                 threshold: float, direction: str,
                 window_start_ms: float, window_end_ms: float,
                 trace_id: Optional[str] = None) -> None:
        self.at_ms = at_ms
        self.detector = detector
        self.metric = metric
        self.value = value
        self.baseline = baseline
        self.score = score
        self.threshold = threshold
        self.direction = direction
        self.window_start_ms = window_start_ms
        self.window_end_ms = window_end_ms
        self.trace_id = trace_id

    def as_dict(self) -> Dict[str, object]:
        return {
            "at_ms": self.at_ms,
            "detector": self.detector,
            "metric": self.metric,
            "value": self.value,
            "baseline": self.baseline,
            "score": self.score,
            "threshold": self.threshold,
            "direction": self.direction,
            "window_start_ms": self.window_start_ms,
            "window_end_ms": self.window_end_ms,
            "trace": self.trace_id,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "AnomalyEvent":
        return cls(
            at_ms=float(record["at_ms"]),            # type: ignore[arg-type]
            detector=str(record["detector"]),
            metric=str(record["metric"]),
            value=float(record["value"]),            # type: ignore[arg-type]
            baseline=float(record["baseline"]),      # type: ignore[arg-type]
            score=float(record["score"]),            # type: ignore[arg-type]
            threshold=float(record["threshold"]),    # type: ignore[arg-type]
            direction=str(record["direction"]),
            window_start_ms=float(record["window_start_ms"]),  # type: ignore[arg-type]
            window_end_ms=float(record["window_end_ms"]),      # type: ignore[arg-type]
            trace_id=(None if record.get("trace") is None
                      else str(record["trace"])),
        )

    def line(self) -> str:
        return (f"{self.at_ms:12.3f}ms {self.detector:<22} "
                f"value={self.value:.3f} baseline={self.baseline:.3f} "
                f"z={self.score:.1f} (>{self.threshold:g} {self.direction}) "
                f"window=[{self.window_start_ms:.0f}, "
                f"{self.window_end_ms:.0f})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AnomalyEvent({self.detector!r} z={self.score:.1f})"


class EwmaMadDetector:
    """EWMA baseline + MAD dispersion robust z-score, one value stream.

    ``warmup`` accepted samples must be seen before anything can flag;
    ``rel_floor`` and ``min_delta`` bound the denominator and the raw
    deviation so float dust (or an all-identical baseline, MAD = 0)
    cannot manufacture infinite scores out of negligible deltas.
    """

    def __init__(self, name: str, alpha: float = 0.25,
                 z_threshold: float = 6.0, warmup: int = 8,
                 history: int = 64, direction: str = ABOVE,
                 rel_floor: float = 0.02, min_delta: float = 0.0,
                 min_sigma: float = 1e-9) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if z_threshold <= 0:
            raise ValueError(f"z_threshold must be positive, got {z_threshold}")
        if warmup < 1:
            raise ValueError(f"warmup must be >= 1, got {warmup}")
        if direction not in (ABOVE, BELOW, BOTH):
            raise ValueError(f"unknown direction {direction!r}")
        self.name = name
        self.alpha = alpha
        self.z_threshold = z_threshold
        self.warmup = warmup
        self.direction = direction
        self.rel_floor = rel_floor
        self.min_delta = min_delta
        self.min_sigma = min_sigma
        self.ewma: Optional[float] = None
        self.accepted = 0
        self._history: Deque[float] = deque(maxlen=history)

    def _sigma(self) -> float:
        values = np.array(self._history)
        mad = float(np.median(np.abs(values - np.median(values))))
        sigma = MAD_SIGMA * mad
        baseline = abs(self.ewma) if self.ewma is not None else 0.0
        return max(sigma, self.rel_floor * baseline, self.min_sigma)

    def update(self, value: float) -> Optional[Dict[str, float]]:
        """Feed one sample; a dict of scores when it is anomalous.

        Anomalous samples do not update the baseline.
        """
        if self.ewma is not None and self.accepted >= self.warmup:
            delta = value - self.ewma
            z = delta / self._sigma()
            flagged = (
                (self.direction == ABOVE and z > self.z_threshold)
                or (self.direction == BELOW and z < -self.z_threshold)
                or (self.direction == BOTH and abs(z) > self.z_threshold)
            ) and abs(delta) >= self.min_delta
            if flagged:
                return {"score": z, "baseline": self.ewma,
                        "threshold": self.z_threshold}
        if self.ewma is None:
            self.ewma = float(value)
        else:
            self.ewma += self.alpha * (value - self.ewma)
        self.accepted += 1
        self._history.append(float(value))
        return None


class RateWatch:
    """A per-window counter ratio fed into a detector.

    ``additive_total`` handles counter pairs where the bad events are
    *not* included in the total (``criu_restore_total`` counts only
    successes): the denominator becomes ``bad + total`` so an
    all-failures window still has traffic to rate against.
    """

    __slots__ = ("name", "bad_metric", "total_metric", "detector",
                 "additive_total")

    def __init__(self, name: str, bad_metric: str, total_metric: str,
                 detector: EwmaMadDetector,
                 additive_total: bool = False) -> None:
        self.name = name
        self.bad_metric = bad_metric
        self.total_metric = total_metric
        self.detector = detector
        self.additive_total = additive_total


class AnomalyMonitor:
    """Feeds watched metrics into detectors; emits typed events.

    Installed on the telemetry hub (``obs.enable_anomaly``); the
    metric helpers call :meth:`offer` / :meth:`offer_count` on every
    write. Counter increments accumulate per ``window_ms`` window on
    simulated time; when a write lands past the current window the
    closed window's rates are evaluated. :meth:`flush` closes the
    final partial window at end of run.
    """

    def __init__(self, kernel=None, window_ms: float = 500.0) -> None:
        if window_ms <= 0:
            raise ValueError(f"window_ms must be positive, got {window_ms}")
        self.kernel = kernel
        self.window_ms = window_ms
        self.events: List[AnomalyEvent] = []
        self._subscribers: List[Callable[[AnomalyEvent], None]] = []
        self._sample_watches: Dict[str, EwmaMadDetector] = {}
        self._rate_watches: List[RateWatch] = []
        self._counter_names: Dict[str, float] = {}  # name -> window sum
        self._window_index: Optional[int] = None

    # -- configuration -----------------------------------------------------------

    def watch_samples(self, metric: str, detector: EwmaMadDetector) -> None:
        """Flag individual observations of ``metric``."""
        self._sample_watches[metric] = detector

    def watch_rate(self, name: str, bad_metric: str, total_metric: str,
                   detector: EwmaMadDetector,
                   additive_total: bool = False) -> None:
        """Flag the per-window ``bad/total`` ratio."""
        self._rate_watches.append(
            RateWatch(name, bad_metric, total_metric, detector,
                      additive_total=additive_total))
        self._counter_names.setdefault(bad_metric, 0.0)
        self._counter_names.setdefault(total_metric, 0.0)

    def subscribe(self, callback: Callable[[AnomalyEvent], None]) -> None:
        self._subscribers.append(callback)

    # -- feed --------------------------------------------------------------------

    def offer(self, metric: str, at_ms: float, value: float,
              trace_id: Optional[str] = None) -> None:
        """One histogram/gauge observation from the metric helpers."""
        self._advance_to(at_ms)
        detector = self._sample_watches.get(metric)
        if detector is None:
            return
        hit = detector.update(value)
        if hit is not None:
            start = (at_ms // self.window_ms) * self.window_ms
            self._emit(AnomalyEvent(
                at_ms=at_ms, detector=detector.name, metric=metric,
                value=value, baseline=hit["baseline"], score=hit["score"],
                threshold=hit["threshold"], direction=detector.direction,
                window_start_ms=start, window_end_ms=start + self.window_ms,
                trace_id=trace_id,
            ))

    def offer_count(self, metric: str, at_ms: float, value: float) -> None:
        """One counter increment from the metric helpers."""
        self._advance_to(at_ms)
        if metric in self._counter_names:
            self._counter_names[metric] += value

    def flush(self, at_ms: Optional[float] = None) -> None:
        """Close the current (partial) window — call at end of run."""
        if at_ms is not None:
            self._advance_to(at_ms)
        if self._window_index is not None:
            self._close_window(self._window_index)
            self._window_index += 1

    # -- internals ---------------------------------------------------------------

    def _advance_to(self, at_ms: float) -> None:
        index = int(at_ms // self.window_ms)
        if self._window_index is None:
            self._window_index = index
            return
        while self._window_index < index:
            self._close_window(self._window_index)
            self._window_index += 1

    def _close_window(self, index: int) -> None:
        start = index * self.window_ms
        end = start + self.window_ms
        sums, self._counter_names = (
            self._counter_names,
            {name: 0.0 for name in self._counter_names},
        )
        for watch in self._rate_watches:
            total = sums.get(watch.total_metric, 0.0)
            if watch.additive_total:
                total += sums.get(watch.bad_metric, 0.0)
            if total <= 0:
                continue  # no traffic: the window says nothing
            rate = min(1.0, sums.get(watch.bad_metric, 0.0) / total)
            hit = watch.detector.update(rate)
            if hit is not None:
                self._emit(AnomalyEvent(
                    at_ms=end, detector=watch.name,
                    metric=watch.bad_metric, value=rate,
                    baseline=hit["baseline"], score=hit["score"],
                    threshold=hit["threshold"],
                    direction=watch.detector.direction,
                    window_start_ms=start, window_end_ms=end,
                ))

    def _emit(self, event: AnomalyEvent) -> None:
        self.events.append(event)
        kernel = self.kernel
        if kernel is not None:
            # Straight to the recorder/registry (not via the obs
            # helpers) so emitting can never re-enter this monitor.
            if kernel.flight is not None:
                kernel.flight.record(
                    flight_mod.ANOMALY, detector=event.detector,
                    metric=event.metric, value=round(event.value, 6),
                    score=round(event.score, 3),
                    window_start_ms=event.window_start_ms,
                )
            if kernel.obs is not None:
                kernel.obs.metrics.inc("anomaly_events_total",
                                       labels={"detector": event.detector})
        for subscriber in self._subscribers:
            subscriber(event)


def default_monitor(kernel=None, window_ms: float = 500.0,
                    z_threshold: float = 6.0,
                    latency_warmup: int = 8,
                    rate_warmup: int = 3) -> AnomalyMonitor:
    """The stack's standard watch set (the SLO contract, as detectors).

    * cold-start latency spikes (per cold start);
    * restore-failure-rate spikes (per window; a healthy world's rate
      is 0, so ``min_delta`` is what separates real failure bursts
      from float dust);
    * chunk-cache miss-rate spikes (per window; the complement of the
      hit-rate SLO, with the same baseline-0 robustness);
    * locality miss-rate spikes (per window; the deployer placed a
      cold start on a node whose chunk cache held a minority of the
      image's working set — the placement hint stopped paying off).
    """
    monitor = AnomalyMonitor(kernel=kernel, window_ms=window_ms)
    monitor.watch_samples(
        "router_cold_start_wait_ms",
        EwmaMadDetector(COLD_START_LATENCY, z_threshold=z_threshold,
                        warmup=latency_warmup, direction=ABOVE),
    )
    monitor.watch_rate(
        RESTORE_FAILURE_RATE,
        bad_metric="criu_restore_failures_total",
        total_metric="criu_restore_total",
        detector=EwmaMadDetector(RESTORE_FAILURE_RATE,
                                 z_threshold=z_threshold,
                                 warmup=rate_warmup, direction=ABOVE,
                                 min_delta=0.05),
        additive_total=True,
    )
    monitor.watch_rate(
        CHUNK_CACHE_MISS_RATE,
        bad_metric="chunk_cache_misses_total",
        total_metric="chunk_cache_lookups_total",
        detector=EwmaMadDetector(CHUNK_CACHE_MISS_RATE,
                                 z_threshold=z_threshold,
                                 warmup=rate_warmup, direction=ABOVE,
                                 min_delta=0.10),
    )
    monitor.watch_rate(
        DEGRADED_RESTORE_RATE,
        bad_metric="restore_degraded_total",
        total_metric="criu_restore_total",
        detector=EwmaMadDetector(DEGRADED_RESTORE_RATE,
                                 z_threshold=z_threshold,
                                 warmup=rate_warmup, direction=ABOVE,
                                 min_delta=0.05),
    )
    monitor.watch_rate(
        LOCALITY_MISS_RATE,
        bad_metric="deployer_locality_miss_total",
        total_metric="deployer_cold_placement_total",
        detector=EwmaMadDetector(LOCALITY_MISS_RATE,
                                 z_threshold=z_threshold,
                                 warmup=rate_warmup, direction=ABOVE,
                                 min_delta=0.10),
    )
    return monitor
