"""Causal trace context: the propagation handle of the span layer.

A :class:`TraceContext` is the minimal tuple needed to attach work done
in one component to the request that caused it: the trace id plus the
span id of the causal parent. It is minted wherever a request enters
the system (the gateway or the router), stamped onto the
:class:`~repro.runtime.base.Request`, and carried along the
``router → pool → deployer → starters → replica → runtime`` path, so a
span opened far from the call stack that minted the trace still lands
in the same causal tree.

Within one synchronous call chain the tracer's span stack already
supplies parenting; the explicit context matters at the seams — a
replica serving a request that was routed earlier, a pool handing out
a pre-started instance, exemplars linking a histogram bucket back to
the trace that produced the observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class TraceContext:
    """Immutable (trace id, parent span id) propagation handle."""

    trace_id: str
    span_id: Optional[int] = None

    def child_of(self, span_id: int) -> "TraceContext":
        """The context a span hands to work it causes."""
        return TraceContext(trace_id=self.trace_id, span_id=span_id)
