"""Fleet observability plane: node-labeled metric federation.

A single :class:`~repro.obs.metrics.MetricsRegistry` describes one
world (or one node). A fleet — deployer nodes plus storage nodes — is
a *set* of registries, and the questions worth asking of it are
cross-node: what is the fleet cold-start p99, which node is burning
it, which functions and chunks are hot everywhere. This module keeps
those answers memory-bounded at millions-of-requests scale:

* :class:`FleetRegistry` — per-node registries merged on demand under
  a ``node=`` label (counters add, histograms merge bucket-wise via
  :meth:`Histogram.merge`), so fleet p50/p99 always come from merged
  histograms, never from materialized sample lists. Re-attaching a
  node replaces its contribution, making federation idempotent.
* :class:`SpaceSavingSketch` — the Metwally/Agrawal/El Abbadi
  Space-Saving heavy-hitters sketch: top-k hot functions / hot chunks
  in O(capacity) memory with a per-key overestimation bound.
* :class:`FleetWindowSeries` — streaming per-window rollups: one
  bounded histogram per (window, node), merged at window close into
  fleet-level p50/p99 points; a bounded deque of closed windows.
* :class:`ColdStartAttribution` — the exact critical-path
  decomposition of PR4's :class:`~repro.obs.profile.PhaseProfiler`
  (phase sums equal ready-spawned time to float round-off, enforced
  on every record) bucketed by (function, node, cache outcome),
  renderable as a fleet blame table and folded flamegraph stacks.

Federation is strictly opt-in: nothing here is touched by world-local
instrumentation, so serial single-node runs stay byte-identical to
the committed baselines.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import (
    SUBBUCKETS,
    Histogram,
    MetricsRegistry,
    label_set,
)

NODE_LABEL = "node"

# Canonical cache outcomes for cold-start attribution buckets.
OUTCOME_LOCAL_HIT = "local-hit"        # majority of image bytes from the node cache
OUTCOME_REMOTE_FETCH = "remote-fetch"  # majority pulled from storage nodes, clean quorum
OUTCOME_DEGRADED = "degraded"          # quorum needed retry hops / lost replicas

OUTCOMES = (OUTCOME_LOCAL_HIT, OUTCOME_REMOTE_FETCH, OUTCOME_DEGRADED)


class FleetError(Exception):
    """Fleet federation misuse (conflicting node labels, bad phases)."""


def bucket_width(value: float) -> float:
    """Width of the log-linear bucket holding ``value``.

    The quantile error bound of one merged-histogram read: a fleet
    p99 from merged buckets sits within one bucket width of the p99
    over the concatenated samples.
    """
    if value <= 0.0:
        return 0.0
    _mantissa, exponent = math.frexp(value)
    return math.ldexp(1.0, exponent - 1) / SUBBUCKETS


# ---------------------------------------------------------------------------
# Space-Saving top-k sketch
# ---------------------------------------------------------------------------


class SpaceSavingSketch:
    """Memory-bounded heavy hitters (Space-Saving, SIGMOD'05 variant).

    Holds at most ``capacity`` keys. A new key arriving at a full
    sketch evicts the current minimum-count key and inherits its count
    as overestimation ``error`` — so ``count - error`` is a guaranteed
    lower bound on the key's true weight, and any key whose true
    weight exceeds ``total / capacity`` is guaranteed present.
    Deterministic: eviction ties break on the lexicographically
    smallest key.
    """

    __slots__ = ("capacity", "total", "_counts", "_errors")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise FleetError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.total = 0.0
        self._counts: Dict[str, float] = {}
        self._errors: Dict[str, float] = {}

    def offer(self, key: str, weight: float = 1.0) -> None:
        if weight < 0:
            raise FleetError("sketch weights only go up")
        self.total += weight
        counts = self._counts
        if key in counts:
            counts[key] += weight
            return
        if len(counts) < self.capacity:
            counts[key] = weight
            self._errors[key] = 0.0
            return
        victim = min(counts, key=lambda k: (counts[k], k))
        floor = counts.pop(victim)
        self._errors.pop(victim)
        counts[key] = floor + weight
        self._errors[key] = floor

    def __len__(self) -> int:
        return len(self._counts)

    def top(self, k: int) -> List[Tuple[str, float, float]]:
        """The ``k`` heaviest tracked keys as ``(key, count, error)``,
        heaviest first (ties on key for deterministic output)."""
        ranked = sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return [(key, count, self._errors[key])
                for key, count in ranked[:max(0, k)]]

    def as_dict(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "total": self.total,
            "entries": [
                {"key": key, "count": count, "error": error}
                for key, count, error in self.top(self.capacity)
            ],
        }


# ---------------------------------------------------------------------------
# Node-labeled federation
# ---------------------------------------------------------------------------


class FleetRegistry:
    """Per-node :class:`MetricsRegistry` instances federated on read.

    Writes stay node-local (each node's hot path owns its registry,
    no cross-node synchronization); fleet reads merge the node
    registries under ``node=<id>`` labels through the exact
    counter/histogram merge from PR4. :meth:`attach` *replaces* a
    node's registry, so federating the same node twice is idempotent
    — the fleet never double-counts a re-announced node.
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, MetricsRegistry] = {}

    # -- membership ----------------------------------------------------------

    def node(self, node_id: str) -> MetricsRegistry:
        """The node's registry, created empty on first use."""
        registry = self._nodes.get(node_id)
        if registry is None:
            registry = MetricsRegistry()
            self._nodes[node_id] = registry
        return registry

    def attach(self, node_id: str, registry: MetricsRegistry) -> None:
        """Federate (or re-federate) one node's registry.

        A series inside ``registry`` already labeled with a *different*
        node id is a conflicting label set — two nodes' series would
        collapse into one under the fleet label — and raises
        :class:`FleetError` instead of silently merging.
        """
        if not node_id:
            raise FleetError("node_id must be non-empty")
        for family in registry.families():
            for key in family.series:
                have = dict(key)
                claimed = have.get(NODE_LABEL)
                if claimed is not None and claimed != node_id:
                    raise FleetError(
                        f"registry for node {node_id!r} carries series "
                        f"{family.name!r} labeled node={claimed!r}"
                    )
        self._nodes[node_id] = registry

    def node_ids(self) -> List[str]:
        return sorted(self._nodes)

    # -- fleet reads ---------------------------------------------------------

    def merged(self) -> MetricsRegistry:
        """One registry with every node's series under ``node=`` labels.

        Rebuilt from the attached node registries on every call —
        which is what makes federation idempotent: the merge input is
        always the current per-node truth, never a running total.
        """
        fleet = MetricsRegistry()
        for node_id in self.node_ids():
            fleet.merge(_relabeled(self._nodes[node_id], node_id))
        return fleet

    def fleet_histogram(self, name: str,
                        labels: Optional[Dict[str, str]] = None
                        ) -> Optional[Histogram]:
        """The node histograms for one label set merged into one.

        This is the only sanctioned path to a fleet quantile: bucket
        counts merge exactly, so the answer matches a single giant
        histogram over all observations — with no per-request samples
        retained anywhere.
        """
        merged: Optional[Histogram] = None
        for node_id in self.node_ids():
            histogram = self._nodes[node_id].histogram(name, labels)
            if histogram is None:
                continue
            if merged is None:
                merged = Histogram()
            merged.merge(histogram)
        return merged

    def fleet_quantile(self, name: str, q: float,
                       labels: Optional[Dict[str, str]] = None) -> float:
        histogram = self.fleet_histogram(name, labels)
        return histogram.quantile(q) if histogram else 0.0

    def fleet_value(self, name: str,
                    labels: Optional[Dict[str, str]] = None) -> float:
        """Counter/gauge sum across every node."""
        return sum(registry.value(name, labels)
                   for registry in self._nodes.values())

    def per_node_value(self, name: str,
                       labels: Optional[Dict[str, str]] = None
                       ) -> Dict[str, float]:
        return {node_id: self._nodes[node_id].value(name, labels)
                for node_id in self.node_ids()}


def _relabeled(registry: MetricsRegistry, node_id: str) -> MetricsRegistry:
    """A copy of ``registry`` with ``node=node_id`` on every series.

    Histograms are copied via a merge into a fresh histogram, so the
    fleet view never aliases (or mutates) node-local state; exemplars
    ride along — a fleet p99 bucket still names the trace that
    produced it.
    """
    out = MetricsRegistry()
    for family in registry.families():
        for key, series in family.series.items():
            labels = dict(key)
            labels[NODE_LABEL] = node_id
            if family.kind == "counter":
                out.inc(family.name, float(series), labels)  # type: ignore[arg-type]
            elif family.kind == "gauge":
                out.set_gauge(family.name, float(series), labels)  # type: ignore[arg-type]
            else:
                target = out.histogram_series(family.name, labels)
                target.merge(series)  # type: ignore[arg-type]
    return out


# ---------------------------------------------------------------------------
# Streaming per-window rollups
# ---------------------------------------------------------------------------

DEFAULT_WINDOW_MS = 60_000.0
DEFAULT_WINDOW_CAPACITY = 512


class WindowPoint:
    """One closed window's fleet rollup (merged across nodes)."""

    __slots__ = ("start_ms", "count", "p50", "p99", "max_value")

    def __init__(self, start_ms: float, count: int, p50: float, p99: float,
                 max_value: float) -> None:
        self.start_ms = start_ms
        self.count = count
        self.p50 = p50
        self.p99 = p99
        self.max_value = max_value

    def as_dict(self) -> Dict[str, float]:
        return {"start_ms": self.start_ms, "count": self.count,
                "p50": self.p50, "p99": self.p99, "max": self.max_value}


class FleetWindowSeries:
    """Per-window fleet quantiles, streamed and bounded.

    Observations land in one histogram per (current window, node);
    when simulated time crosses a window boundary the node histograms
    merge into a fleet histogram whose p50/p99 become one
    :class:`WindowPoint`. State is bounded by (nodes in the current
    window) + ``capacity`` closed points — per-request samples are
    never retained.
    """

    def __init__(self, window_ms: float = DEFAULT_WINDOW_MS,
                 capacity: int = DEFAULT_WINDOW_CAPACITY) -> None:
        if window_ms <= 0:
            raise FleetError(f"window_ms must be positive, got {window_ms}")
        if capacity < 1:
            raise FleetError(f"capacity must be >= 1, got {capacity}")
        self.window_ms = window_ms
        self.capacity = capacity
        self.points: List[WindowPoint] = []
        self.evicted = 0
        self._window_index: Optional[int] = None
        self._current: Dict[str, Histogram] = {}

    def observe(self, node_id: str, at_ms: float, value: float) -> None:
        index = int(at_ms // self.window_ms)
        if self._window_index is None:
            self._window_index = index
        while self._window_index < index:
            self._close()
            self._window_index += 1
        histogram = self._current.get(node_id)
        if histogram is None:
            histogram = Histogram()
            self._current[node_id] = histogram
        histogram.observe(value)

    def flush(self) -> None:
        """Close the final partial window — call at end of run."""
        if self._window_index is not None and self._current:
            self._close()
            self._window_index += 1

    def _close(self) -> None:
        if not self._current:
            return
        merged = Histogram()
        for node_id in sorted(self._current):
            merged.merge(self._current[node_id])
        self._current = {}
        assert self._window_index is not None
        self.points.append(WindowPoint(
            start_ms=self._window_index * self.window_ms,
            count=merged.count,
            p50=merged.quantile(0.5),
            p99=merged.quantile(0.99),
            max_value=merged.max_value,
        ))
        overflow = len(self.points) - self.capacity
        if overflow > 0:
            del self.points[:overflow]
            self.evicted += overflow


# ---------------------------------------------------------------------------
# Cold-start attribution
# ---------------------------------------------------------------------------

# Phase sums must equal the request's ready-spawned time to float
# round-off (the PhaseProfiler invariant, PR4). One part in 1e9 of the
# total covers any associativity dust without hiding a real leak.
PHASE_SUM_REL_TOLERANCE = 1e-9


class AttributionCell:
    """Accumulated decomposition of one (function, node, outcome)."""

    __slots__ = ("function", "node", "outcome", "count", "total_ms",
                 "phase_ms")

    def __init__(self, function: str, node: str, outcome: str) -> None:
        self.function = function
        self.node = node
        self.outcome = outcome
        self.count = 0
        self.total_ms = 0.0
        self.phase_ms: Dict[str, float] = {}

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0

    def dominant_phase(self) -> str:
        if not self.phase_ms:
            return "-"
        return max(self.phase_ms.items(), key=lambda kv: (kv[1], kv[0]))[0]

    def as_dict(self) -> Dict[str, object]:
        return {
            "function": self.function, "node": self.node,
            "outcome": self.outcome, "count": self.count,
            "total_ms": self.total_ms,
            "phases": dict(sorted(self.phase_ms.items())),
        }


class ColdStartAttribution:
    """Exact critical-path decomposition, bucketed and bounded.

    State is one cell per (function, node, cache outcome) — bounded
    by the key space, never by request count. Every :meth:`record`
    enforces the accounting invariant before accumulating: the phase
    sums must reproduce the request's ready-spawned total to float
    round-off, so the blame table can never silently leak time.
    """

    def __init__(self) -> None:
        self._cells: Dict[Tuple[str, str, str], AttributionCell] = {}

    def record(self, function: str, node: str, outcome: str,
               phases: Dict[str, float], total_ms: float) -> None:
        if outcome not in OUTCOMES:
            raise FleetError(f"unknown cache outcome {outcome!r}; "
                             f"expected one of {OUTCOMES}")
        phase_sum = 0.0
        for value in phases.values():
            phase_sum += value
        tolerance = PHASE_SUM_REL_TOLERANCE * max(1.0, abs(total_ms))
        if abs(phase_sum - total_ms) > tolerance:
            raise FleetError(
                f"phase sums must equal ready-spawned time: "
                f"{phase_sum!r} != {total_ms!r} for {function}/{node}"
            )
        key = (function, node, outcome)
        cell = self._cells.get(key)
        if cell is None:
            cell = AttributionCell(function, node, outcome)
            self._cells[key] = cell
        cell.count += 1
        cell.total_ms += total_ms
        for phase, value in phases.items():
            cell.phase_ms[phase] = cell.phase_ms.get(phase, 0.0) + value

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def total_ms(self) -> float:
        return sum(cell.total_ms for cell in self._cells.values())

    def cells(self) -> List[AttributionCell]:
        """All cells, heaviest total first (deterministic tie order)."""
        return sorted(self._cells.values(),
                      key=lambda c: (-c.total_ms, c.function, c.node,
                                     c.outcome))

    def blame_table(self, top: int = 12) -> str:
        """The fleet blame table: who is burning the cold-start time."""
        fleet_total = self.total_ms or 1.0
        rows = []
        for cell in self.cells()[:max(0, top)]:
            rows.append([
                cell.function, cell.node, cell.outcome, str(cell.count),
                f"{cell.total_ms:.1f}", f"{cell.mean_ms:.2f}",
                f"{100.0 * cell.total_ms / fleet_total:.1f}%",
                cell.dominant_phase(),
            ])
        return _format_table(
            ["function", "node", "outcome", "count", "total(ms)",
             "mean(ms)", "share", "dominant phase"],
            rows,
        )

    def folded_lines(self, prefix: str = "fleet") -> List[str]:
        """Folded flamegraph stacks (``frame;frame <integer µs>``).

        Stack order node → function → outcome → phase, so a fleet
        flamegraph drills from *where* through *what* to *why*.
        """
        lines = []
        for cell in self.cells():
            base = f"{prefix};{cell.node};{cell.function};{cell.outcome}"
            for phase in sorted(cell.phase_ms):
                micros = int(round(cell.phase_ms[phase] * 1000.0))
                if micros > 0:
                    lines.append(f"{base};{phase} {micros}")
        return lines

    def as_dict(self) -> List[Dict[str, object]]:
        return [cell.as_dict() for cell in self.cells()]

    @classmethod
    def from_dict(cls, records: Iterable[Dict[str, object]]
                  ) -> "ColdStartAttribution":
        out = cls()
        for record in records:
            cell = AttributionCell(str(record["function"]),
                                   str(record["node"]),
                                   str(record["outcome"]))
            cell.count = int(record["count"])          # type: ignore[arg-type]
            cell.total_ms = float(record["total_ms"])  # type: ignore[arg-type]
            cell.phase_ms = {str(k): float(v)
                             for k, v in dict(record["phases"]).items()}  # type: ignore[arg-type]
            out._cells[(cell.function, cell.node, cell.outcome)] = cell
        return out


def _format_table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(row: List[str]) -> str:
        return "  ".join(cell.ljust(widths[i])
                         for i, cell in enumerate(row)).rstrip()

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


__all__ = [
    "NODE_LABEL",
    "OUTCOME_LOCAL_HIT",
    "OUTCOME_REMOTE_FETCH",
    "OUTCOME_DEGRADED",
    "OUTCOMES",
    "FleetError",
    "bucket_width",
    "SpaceSavingSketch",
    "FleetRegistry",
    "FleetWindowSeries",
    "WindowPoint",
    "ColdStartAttribution",
    "AttributionCell",
    "label_set",
]
