"""Structured diagnostic logging (stderr), keeping stdout for results.

The bench CLIs print rendered tables/reports to stdout so pipelines
can capture them; everything *about* the run (timings, file writes,
errors) goes through here as ``key=value`` lines on stderr:

    level=info component=bench event=experiment.done name=fig4 wall_s=2.1

Log lines can be correlated with the active trace: a bench CLI binds
the world tracer via :func:`set_trace_provider` (or the scoped
:func:`bound_trace_provider`), and every line emitted while a span is
open then carries ``trace_id=…`` — the same id the span tree, flight
tape, and postmortem bundle use for that request.
"""

from __future__ import annotations

import contextlib
import sys
from typing import Callable, Dict, Iterator, Optional, TextIO

LEVELS = ("debug", "info", "warning", "error")

# Process-wide hook returning the active trace id (or None when no
# span is open). One world runs at a time per thread in the bench
# CLIs, so a single slot is enough; parallel harness workers each run
# in their own process.
_trace_provider: Optional[Callable[[], Optional[str]]] = None


def set_trace_provider(
        provider: Optional[Callable[[], Optional[str]]]) -> None:
    """Install (or clear, with None) the active-trace-id hook.

    Typically ``tracer.current_trace_id`` of the world under test.
    """
    global _trace_provider
    _trace_provider = provider


def active_trace_id() -> Optional[str]:
    """The trace id log lines would be stamped with right now."""
    if _trace_provider is None:
        return None
    return _trace_provider()


@contextlib.contextmanager
def bound_trace_provider(
        provider: Optional[Callable[[], Optional[str]]]) -> Iterator[None]:
    """Scoped :func:`set_trace_provider` (restores the previous hook)."""
    global _trace_provider
    previous = _trace_provider
    _trace_provider = provider
    try:
        yield
    finally:
        _trace_provider = previous


def _format_field(value: object) -> str:
    if isinstance(value, float):
        text = f"{value:.6g}"
    else:
        text = str(value)
    if any(ch.isspace() for ch in text) or text == "":
        escaped = text.replace('"', '\\"')
        return f'"{escaped}"'
    return text


class StructuredLogger:
    """Key=value line logger bound to one component name.

    ``stream`` defaults to *current* ``sys.stderr`` at emit time so
    pytest's capture fixtures (and shell redirections) see the lines.
    """

    def __init__(self, component: str, stream: Optional[TextIO] = None) -> None:
        self.component = component
        self._stream = stream

    def log(self, level: str, event: str, **fields: object) -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown log level {level!r}")
        stream = self._stream if self._stream is not None else sys.stderr
        parts = [f"level={level}", f"component={self.component}",
                 f"event={event}"]
        if "trace_id" not in fields and _trace_provider is not None:
            trace_id = _trace_provider()
            if trace_id is not None:
                parts.append(f"trace_id={_format_field(trace_id)}")
        parts.extend(f"{key}={_format_field(value)}"
                     for key, value in fields.items())
        print(" ".join(parts), file=stream)

    def debug(self, event: str, **fields: object) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: object) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: object) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: object) -> None:
        self.log("error", event, **fields)


_loggers: Dict[str, StructuredLogger] = {}


def get_logger(component: str) -> StructuredLogger:
    """Shared logger per component name (stderr-bound)."""
    logger = _loggers.get(component)
    if logger is None:
        logger = StructuredLogger(component)
        _loggers[component] = logger
    return logger
