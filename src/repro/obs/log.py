"""Structured diagnostic logging (stderr), keeping stdout for results.

The bench CLIs print rendered tables/reports to stdout so pipelines
can capture them; everything *about* the run (timings, file writes,
errors) goes through here as ``key=value`` lines on stderr:

    level=info component=bench event=experiment.done name=fig4 wall_s=2.1
"""

from __future__ import annotations

import sys
from typing import Dict, Optional, TextIO

LEVELS = ("debug", "info", "warning", "error")


def _format_field(value: object) -> str:
    if isinstance(value, float):
        text = f"{value:.6g}"
    else:
        text = str(value)
    if any(ch.isspace() for ch in text) or text == "":
        escaped = text.replace('"', '\\"')
        return f'"{escaped}"'
    return text


class StructuredLogger:
    """Key=value line logger bound to one component name.

    ``stream`` defaults to *current* ``sys.stderr`` at emit time so
    pytest's capture fixtures (and shell redirections) see the lines.
    """

    def __init__(self, component: str, stream: Optional[TextIO] = None) -> None:
        self.component = component
        self._stream = stream

    def log(self, level: str, event: str, **fields: object) -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown log level {level!r}")
        stream = self._stream if self._stream is not None else sys.stderr
        parts = [f"level={level}", f"component={self.component}",
                 f"event={event}"]
        parts.extend(f"{key}={_format_field(value)}"
                     for key, value in fields.items())
        print(" ".join(parts), file=stream)

    def debug(self, event: str, **fields: object) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: object) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: object) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: object) -> None:
        self.log("error", event, **fields)


_loggers: Dict[str, StructuredLogger] = {}


def get_logger(component: str) -> StructuredLogger:
    """Shared logger per component name (stderr-bound)."""
    logger = _loggers.get(component)
    if logger is None:
        logger = StructuredLogger(component)
        _loggers[component] = logger
    return logger
