"""Span-based lifecycle tracing for the prebake stack.

One :class:`Tracer` per simulated world. Spans nest (a per-tracer
stack supplies parenting), carry free-form attributes, and are stamped
exclusively with *simulated* time read from the world clock — a trace
therefore reproduces bit-for-bit under a fixed seed.

The instrumented hot paths never talk to a tracer directly; they go
through :func:`repro.obs.span`, which returns the shared
:data:`NULL_SPAN` when no collector is installed on the kernel, so an
un-observed world pays one attribute load per instrumentation point.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.obs.context import TraceContext


class SpanError(Exception):
    """Span lifecycle violation (double finish, out-of-order exit)."""


class Span:
    """One timed operation in a trace.

    Usable as a context manager: entering is a no-op (the tracer
    already started it), exiting finishes it — with ``status="error"``
    and an ``error`` attribute if an exception is unwinding.
    """

    __slots__ = ("tracer", "trace_id", "span_id", "parent_id", "name",
                 "start_ms", "end_ms", "status", "attributes")

    def __init__(self, tracer: "Tracer", trace_id: str, span_id: int,
                 parent_id: Optional[int], name: str, start_ms: float,
                 attributes: Dict[str, object]) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_ms = start_ms
        self.end_ms: Optional[float] = None
        self.status = "ok"
        self.attributes = attributes

    # -- recording --------------------------------------------------------------

    def set(self, **attributes: object) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attributes.update(attributes)
        return self

    @property
    def finished(self) -> bool:
        return self.end_ms is not None

    @property
    def duration_ms(self) -> float:
        if self.end_ms is None:
            raise SpanError(f"span {self.name!r} has not finished")
        return self.end_ms - self.start_ms

    @property
    def context(self) -> TraceContext:
        """The propagation handle work caused by this span should carry."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.status = "error"
            # Record the exception type as its own tag so traces from
            # fault-injected runs are filterable by failure class
            # (e.g. error_type=RestoreFailed) without string parsing.
            self.attributes.setdefault("error_type", exc_type.__name__)
            self.attributes.setdefault("error", f"{exc_type.__name__}: {exc}")
        self.tracer.finish(self)
        return False

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable form (one JSONL trace line)."""
        return {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "duration_ms": None if self.end_ms is None else self.duration_ms,
            "status": self.status,
            "attrs": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r} id={self.span_id} "
                f"parent={self.parent_id} status={self.status})")


class NullSpan:
    """Zero-cost stand-in when no collector is installed."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes: object) -> "NullSpan":
        return self

    @property
    def finished(self) -> bool:
        return True

    @property
    def context(self) -> None:
        return None


NULL_SPAN = NullSpan()


class Tracer:
    """Per-world span collector.

    ``clock`` is anything with a ``now`` property in simulated
    milliseconds (normally the world's :class:`~repro.sim.clock.SimClock`).
    Every root span opens a fresh trace id; children inherit the trace
    of the span below them on the stack.
    """

    def __init__(self, clock) -> None:
        self.clock = clock
        self.spans: List[Span] = []       # finished spans, completion order
        self._stack: List[Span] = []
        self._next_span_id = 1
        self._next_trace_id = 1

    # -- span lifecycle -----------------------------------------------------------

    def span(self, name: str, context: Optional[TraceContext] = None,
             **attributes: object) -> Span:
        """Open a span (nested under the innermost active span).

        ``context`` adopts an explicit :class:`TraceContext` when the
        span stack cannot supply the causal parent — e.g. a replica
        serving a request whose trace was minted at the router. The
        stack wins whenever it is non-empty (lexical nesting is always
        the tighter causal link); a context-adopted span joins the
        carried trace instead of opening a fresh one.
        """
        parent = self._stack[-1] if self._stack else None
        if parent is None:
            if context is not None:
                trace_id = context.trace_id
                parent_id = context.span_id
            else:
                trace_id = f"t-{self._next_trace_id:04d}"
                self._next_trace_id += 1
                parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(
            tracer=self,
            trace_id=trace_id,
            span_id=self._next_span_id,
            parent_id=parent_id,
            name=name,
            start_ms=self.clock.now,
            attributes=dict(attributes),
        )
        self._next_span_id += 1
        self._stack.append(span)
        return span

    def finish(self, span: Span) -> None:
        """Close ``span``; it must be the innermost active span."""
        if span.finished:
            raise SpanError(f"span {span.name!r} finished twice")
        if not self._stack or self._stack[-1] is not span:
            raise SpanError(
                f"span {span.name!r} finished out of order; active: "
                + ", ".join(s.name for s in self._stack)
            )
        self._stack.pop()
        span.end_ms = self.clock.now
        self.spans.append(span)

    # -- inspection ----------------------------------------------------------------

    @property
    def active_depth(self) -> int:
        return len(self._stack)

    def open_spans(self) -> List[Span]:
        """Active (unfinished) spans, outermost first.

        A clean run leaves this empty; the bench harness asserts so
        after every episode, which catches spans leaked on error paths.
        """
        return list(self._stack)

    def current_context(self) -> Optional[TraceContext]:
        """Propagation handle of the innermost active span, if any."""
        if not self._stack:
            return None
        return self._stack[-1].context

    def current_trace_id(self) -> Optional[str]:
        """Trace id of the innermost active span (exemplar source)."""
        if not self._stack:
            return None
        return self._stack[-1].trace_id

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def children(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def find(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def by_trace(self, trace_id: str) -> List[Span]:
        return [s for s in self.spans if s.trace_id == trace_id]

    def drain(self) -> List[Span]:
        """Return all finished spans and clear the buffer (active spans
        survive — the trace continues into the next drain window)."""
        drained, self.spans = self.spans, []
        return drained

    def iter_dicts(self) -> Iterator[Dict[str, object]]:
        for span in self.spans:
            yield span.as_dict()
