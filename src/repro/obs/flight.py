"""Flight recorder: an always-on bounded ring of lifecycle events.

The black box of the platform. Instrumented layers append structured
:class:`FlightEvent` records — request admitted/routed, restore phase
transitions, fault injections, retries, cache traffic, autoscaler
decisions — into a bounded ring buffer on the kernel
(``kernel.flight``). When an incident is declared the *last N* events
are exactly the window a postmortem needs: what the platform was doing
right before things went wrong.

Design constraints, in order:

* **Near-zero cost when disabled.** Instrumentation goes through
  :func:`repro.obs.record`, which is one attribute load when
  ``kernel.flight is None`` (the default) — the same discipline as the
  tracer and the fault injector.
* **No interference with the simulation.** Recording reads the clock
  and never advances it, and draws no randomness, so a recorded world
  replays bit-identically to an unrecorded one under the same seed.
* **Bounded.** The ring holds ``capacity`` events; older events are
  evicted oldest-first and only counted (``dropped``), never resized.

Events carry the active trace/span ids when a tracer has a span open,
so a flight tape can be joined against the span tree of the same run.
"""

from __future__ import annotations

import json
import pathlib
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Union

FLIGHT_SCHEMA = 1

# Default ring capacity: enough to cover the tail of a burst (a cold
# start emits ~a dozen events) without holding a whole run.
DEFAULT_CAPACITY = 2048

# -- canonical event kinds ----------------------------------------------------
#
# Kinds are plain strings (new instrumentation points need no central
# change), but the set the platform emits is listed here so tooling and
# tests have one vocabulary.

REQUEST_ADMITTED = "request.admitted"        # router accepted a request
REQUEST_ROUTED = "request.routed"            # request dispatched + served
REQUEST_REQUEUED = "request.requeued"        # capacity exhausted, backoff
REQUEST_TIMEOUT = "request.timeout"          # dispatch deadline blown
REQUEST_CRASH_RETRY = "request.crash-retry"  # replica died mid-request
REPLICA_PROVISIONED = "replica.provisioned"  # deployer brought one up
REPLICA_REAPED = "replica.reaped"            # health check reaped a corpse
RESTORE_STARTED = "restore.started"          # criu restore began
RESTORE_FINISHED = "restore.finished"        # process resumed
RESTORE_FAILED = "restore.failed"            # restore died / hung
RESTORE_RETRY = "restore.retry"              # starter backing off to retry
RESTORE_FALLBACK = "restore.fallback"        # starter gave up, went vanilla
SNAPSHOT_QUARANTINED = "snapshot.quarantined"
SNAPSHOT_REPAIRED = "snapshot.repaired"
CACHE_LOOKUP = "cache.lookup"                # chunk-cache pass summary
FAULT_INJECTED = "fault.injected"            # injector fired a site
AUTOSCALER_ACTION = "autoscaler.action"      # scale-up / gc / reap / heal
DEPLOY = "deploy"                            # function (re)deployed/baked
ANOMALY = "anomaly.detected"                 # online detector flagged
METRIC_SAMPLE = "metric.sample"              # optional raw metric sample
RESTORE_DEGRADED = "restore.degraded"        # quorum lost; survivors served
SHARD_NODE_DOWN = "shard.node-down"          # a storage node crashed
SHARD_NODE_UP = "shard.node-up"              # a storage node recovered
SHARD_HANDOFF = "shard.handoff"              # hinted handoff (write or delivery)
SHARD_READ_REPAIR = "shard.read-repair"      # under-replicated window re-replicated
SHARD_BREAKER = "shard.breaker"              # circuit breaker state change
SHARD_ANTI_ENTROPY = "shard.anti-entropy"    # Merkle-driven repair pass summary
PREWARM_PREFETCH = "prewarm.prefetch"        # predictive chunk prefetch summary

EVENT_KINDS = (
    REQUEST_ADMITTED, REQUEST_ROUTED, REQUEST_REQUEUED, REQUEST_TIMEOUT,
    REQUEST_CRASH_RETRY, REPLICA_PROVISIONED, REPLICA_REAPED,
    RESTORE_STARTED, RESTORE_FINISHED, RESTORE_FAILED, RESTORE_RETRY,
    RESTORE_FALLBACK, SNAPSHOT_QUARANTINED, SNAPSHOT_REPAIRED,
    CACHE_LOOKUP, FAULT_INJECTED, AUTOSCALER_ACTION, DEPLOY, ANOMALY,
    METRIC_SAMPLE, RESTORE_DEGRADED, SHARD_NODE_DOWN, SHARD_NODE_UP,
    SHARD_HANDOFF, SHARD_READ_REPAIR, SHARD_BREAKER, SHARD_ANTI_ENTROPY,
    PREWARM_PREFETCH,
)


class FlightError(Exception):
    """Malformed flight event during decode."""


class FlightEvent:
    """One structured lifecycle event on the flight tape.

    ``node`` is the first-class node identity of the emitter (a
    compute ``node-*`` or storage ``store-*`` id) so fleet tooling can
    slice a tape by node without digging through free-form attrs; a
    ``node=`` keyword passed to :meth:`FlightRecorder.record` is
    hoisted into it.
    """

    __slots__ = ("seq", "at_ms", "kind", "trace_id", "span_id", "node",
                 "attrs")

    def __init__(self, seq: int, at_ms: float, kind: str,
                 trace_id: Optional[str] = None,
                 span_id: Optional[int] = None,
                 attrs: Optional[Dict[str, object]] = None,
                 node: Optional[str] = None) -> None:
        self.seq = seq
        self.at_ms = at_ms
        self.kind = kind
        self.trace_id = trace_id
        self.span_id = span_id
        self.attrs = attrs or {}
        if node is None and "node" in self.attrs:
            node = str(self.attrs["node"])
        self.node = node

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable form (one JSONL tape line)."""
        record: Dict[str, object] = {
            "seq": self.seq,
            "at_ms": self.at_ms,
            "kind": self.kind,
            "attrs": dict(self.attrs),
        }
        if self.trace_id is not None:
            record["trace"] = self.trace_id
        if self.span_id is not None:
            record["span"] = self.span_id
        if self.node is not None:
            record["node"] = self.node
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "FlightEvent":
        """Inverse of :meth:`as_dict`; raises :class:`FlightError` on
        anything that is not a flight event record."""
        if not isinstance(record, dict) or "kind" not in record:
            raise FlightError(f"not a flight event record: {record!r}")
        try:
            return cls(
                seq=int(record["seq"]),
                at_ms=float(record["at_ms"]),
                kind=str(record["kind"]),
                trace_id=(None if record.get("trace") is None
                          else str(record["trace"])),
                span_id=(None if record.get("span") is None
                         else int(record["span"])),  # type: ignore[arg-type]
                attrs=dict(record.get("attrs") or {}),  # type: ignore[arg-type]
                node=(None if record.get("node") is None
                      else str(record["node"])),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FlightError(f"malformed flight event: {exc}") from None

    def line(self) -> str:
        """Human-oriented one-line rendering (postmortem tail)."""
        blob = " ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
        trace = f" trace={self.trace_id}" if self.trace_id else ""
        return (f"{self.seq:06d} {self.at_ms:12.3f}ms "
                f"{self.kind:<20}{trace} {blob}".rstrip())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlightEvent({self.kind!r} seq={self.seq} at={self.at_ms})"


class FlightRecorder:
    """Bounded per-world event ring.

    ``clock`` is anything with a ``now`` property on simulated
    milliseconds; ``tracer`` (optional) supplies trace/span correlation
    for events recorded while a span is open. ``sample_metrics`` opts
    the tape into raw :data:`METRIC_SAMPLE` events from the metrics
    helpers — off by default so lifecycle events are not evicted by
    high-rate samples.
    """

    def __init__(self, clock, tracer=None,
                 capacity: int = DEFAULT_CAPACITY,
                 sample_metrics: bool = False,
                 metrics=None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.clock = clock
        self.tracer = tracer
        self.capacity = capacity
        self.sample_metrics = sample_metrics
        # Optional MetricsRegistry: evictions increment
        # flight_dropped_total there, so truncated evidence is visible
        # in scrapes and fleet reports, not only on the ring object.
        self.metrics = metrics
        self._ring: Deque[FlightEvent] = deque(maxlen=capacity)
        self.total = 0          # events ever recorded
        self._next_seq = 1

    # -- recording -------------------------------------------------------------

    def record(self, kind: str, **attrs: object) -> FlightEvent:
        """Append one event (evicting the oldest when full).

        Reads the clock, never advances it; draws no randomness.
        """
        trace_id: Optional[str] = None
        span_id: Optional[int] = None
        tracer = self.tracer
        if tracer is not None:
            context = tracer.current_context()
            if context is not None:
                trace_id = context.trace_id
                span_id = context.span_id
        event = FlightEvent(
            seq=self._next_seq,
            at_ms=self.clock.now,
            kind=kind,
            trace_id=trace_id,
            span_id=span_id,
            attrs=attrs,
        )
        self._next_seq += 1
        self.total += 1
        evicting = len(self._ring) == self.capacity
        self._ring.append(event)
        if evicting and self.metrics is not None:
            self.metrics.inc("flight_dropped_total")
        return event

    # -- inspection ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def dropped(self) -> int:
        """Events evicted from the ring so far."""
        return self.total - len(self._ring)

    def events(self, kind: Optional[str] = None) -> List[FlightEvent]:
        """Buffered events oldest-first (optionally one kind)."""
        if kind is None:
            return list(self._ring)
        return [e for e in self._ring if e.kind == kind]

    def last(self, n: int) -> List[FlightEvent]:
        """The newest ``n`` events, oldest-first."""
        if n <= 0:
            return []
        return list(self._ring)[-n:]

    def clear(self) -> None:
        self._ring.clear()

    # -- (de)serialization -----------------------------------------------------

    def to_jsonl(self) -> str:
        return events_to_jsonl(self._ring)


# -- tape (de)serialization ---------------------------------------------------


def events_to_jsonl(events: Iterable[Union[FlightEvent, Dict[str, object]]]
                    ) -> str:
    """One JSON object per line, oldest-first.

    Accepts :class:`FlightEvent` objects or their ``as_dict`` records —
    harness sinks accumulate the latter (stamped with ``rep`` and
    ``technique``), live recorders hold the former.
    """
    lines = [
        json.dumps(e if isinstance(e, dict) else e.as_dict(), sort_keys=True)
        for e in events
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_flight_jsonl(path: Union[str, pathlib.Path],
                       events: Iterable[Union[FlightEvent, Dict[str, object]]]
                       ) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(events_to_jsonl(events), encoding="utf-8")
    return path


def read_flight_jsonl(source: Union[str, pathlib.Path]) -> List[FlightEvent]:
    """Load flight events from a JSONL file path or raw JSONL text."""
    if isinstance(source, pathlib.Path):
        text = source.read_text(encoding="utf-8")
    else:
        text = str(source)
        if "\n" not in text and not text.lstrip().startswith("{"):
            text = pathlib.Path(text).read_text(encoding="utf-8")
    events = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise FlightError(f"bad flight line {lineno}: {exc}") from None
        events.append(FlightEvent.from_dict(record))
    return events
