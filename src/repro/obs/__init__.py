"""repro.obs — unified telemetry for the prebake stack.

Three pieces, one hub per simulated world:

* :mod:`repro.obs.spans` — nested lifecycle spans on simulated time
  (``deploy → bake → checkpoint → store → restore → replica.serve``);
* :mod:`repro.obs.metrics` — counters, gauges, log-linear histograms
  (the registry ``PrometheusLite`` alert rules evaluate against);
* :mod:`repro.obs.export` — Prometheus text format and JSONL dumps,
  summarized by ``python -m repro.obs.cli``.

Instrumentation calls the module-level helpers below with the kernel
in hand; when no :class:`Observability` hub is installed on the kernel
they cost a single attribute load and do nothing, so un-observed
worlds (the default) stay exactly as fast as before.

    from repro import make_world, obs

    world = make_world(seed=42)
    hub = obs.install(world.kernel)
    ...  # run a scenario
    print(obs.export.render_prometheus(hub.metrics))
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.obs import export  # re-exported for `obs.export.*` call sites
from repro.obs.context import TraceContext
from repro.obs.log import StructuredLogger, get_logger
from repro.obs.metrics import Histogram, MetricsError, MetricsRegistry
from repro.obs.spans import NULL_SPAN, NullSpan, Span, SpanError, Tracer


class Observability:
    """Per-world telemetry hub: one tracer plus one metrics registry."""

    def __init__(self, clock) -> None:
        self.tracer = Tracer(clock)
        self.metrics = MetricsRegistry()


def install(kernel) -> Observability:
    """Install (or fetch) the telemetry hub on ``kernel``."""
    if kernel.obs is None:
        kernel.obs = Observability(kernel.clock)
    return kernel.obs


def uninstall(kernel) -> None:
    """Detach the hub; instrumentation reverts to zero-cost no-ops."""
    kernel.obs = None


# -- zero-cost instrumentation helpers ---------------------------------------
#
# Hot paths call these with their kernel; a world without an installed
# hub takes the early-out branch.

def span(kernel, name: str, context: Optional[TraceContext] = None,
         **attributes: object) -> Union[Span, NullSpan]:
    """Open a span on the world's tracer (no-op span when unobserved).

    ``context`` joins an existing trace when the span stack cannot
    supply the causal parent (see :meth:`Tracer.span`).
    """
    hub = kernel.obs
    if hub is None:
        return NULL_SPAN
    return hub.tracer.span(name, context=context, **attributes)


def current_context(kernel) -> Optional[TraceContext]:
    """Propagation handle of the innermost active span, if observed."""
    hub = kernel.obs
    if hub is None:
        return None
    return hub.tracer.current_context()


def count(kernel, name: str, value: float = 1.0,
          labels: Optional[Dict[str, str]] = None) -> None:
    hub = kernel.obs
    if hub is not None:
        hub.metrics.inc(name, value, labels)


def gauge(kernel, name: str, value: float,
          labels: Optional[Dict[str, str]] = None) -> None:
    hub = kernel.obs
    if hub is not None:
        hub.metrics.set_gauge(name, value, labels)


def observe(kernel, name: str, value: float,
            labels: Optional[Dict[str, str]] = None,
            exemplar: Optional[str] = None) -> None:
    """Record a histogram observation; the exemplar defaults to the
    trace id of the innermost active span, linking the latency bucket
    back to the causal span tree."""
    hub = kernel.obs
    if hub is not None:
        if exemplar is None:
            exemplar = hub.tracer.current_trace_id()
        hub.metrics.observe(name, value, labels, exemplar=exemplar)


__all__ = [
    "Observability",
    "install",
    "uninstall",
    "span",
    "count",
    "gauge",
    "observe",
    "current_context",
    "TraceContext",
    "Span",
    "SpanError",
    "NullSpan",
    "NULL_SPAN",
    "Tracer",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "StructuredLogger",
    "get_logger",
    "export",
]
