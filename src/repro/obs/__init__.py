"""repro.obs — unified telemetry for the prebake stack.

One hub per simulated world, plus the incident-capture layer:

* :mod:`repro.obs.spans` — nested lifecycle spans on simulated time
  (``deploy → bake → checkpoint → store → restore → replica.serve``);
* :mod:`repro.obs.metrics` — counters, gauges, log-linear histograms
  (the registry ``PrometheusLite`` alert rules evaluate against);
* :mod:`repro.obs.export` — Prometheus text format and JSONL dumps,
  summarized by ``python -m repro.obs.cli``;
* :mod:`repro.obs.flight` — bounded ring-buffer flight recorder on
  ``kernel.flight`` (:func:`install_flight`), fed via :func:`record`;
* :mod:`repro.obs.timeseries` — windowed ``(sim_time, value)`` rollups
  on the hub (:func:`enable_timeseries`), fed by the metric helpers;
* :mod:`repro.obs.anomaly` — online EWMA+MAD detectors on the hub
  (:func:`enable_anomaly`), also fed by the metric helpers;
* :mod:`repro.obs.postmortem` — seals flight tail + span tree + metric
  windows + SLO burn + replay recipe into incident bundles.

Instrumentation calls the module-level helpers below with the kernel
in hand; when no :class:`Observability` hub is installed on the kernel
they cost a single attribute load and do nothing, so un-observed
worlds (the default) stay exactly as fast as before.

    from repro import make_world, obs

    world = make_world(seed=42)
    hub = obs.install(world.kernel)
    ...  # run a scenario
    print(obs.export.render_prometheus(hub.metrics))
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.obs import export  # re-exported for `obs.export.*` call sites
from repro.obs import fleet   # re-exported for `obs.fleet.*` call sites
from repro.obs import flight  # re-exported for `obs.flight.*` call sites
from repro.obs import timeseries as _timeseries
from repro.obs.context import TraceContext
from repro.obs.log import StructuredLogger, get_logger
from repro.obs.metrics import (
    CounterHandle,
    GaugeHandle,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from repro.obs.spans import NULL_SPAN, NullSpan, Span, SpanError, Tracer


class Observability:
    """Per-world telemetry hub: tracer + metrics, with optional
    windowed time-series and anomaly layers (None until enabled)."""

    def __init__(self, clock) -> None:
        self.tracer = Tracer(clock)
        self.metrics = MetricsRegistry()
        self.timeseries = None   # TimeseriesTable via enable_timeseries
        self.anomaly = None      # AnomalyMonitor via enable_anomaly


def install(kernel) -> Observability:
    """Install (or fetch) the telemetry hub on ``kernel``."""
    if kernel.obs is None:
        kernel.obs = Observability(kernel.clock)
    return kernel.obs


def uninstall(kernel) -> None:
    """Detach the hub; instrumentation reverts to zero-cost no-ops."""
    kernel.obs = None


def install_flight(kernel, capacity: int = flight.DEFAULT_CAPACITY,
                   sample_metrics: bool = False) -> "flight.FlightRecorder":
    """Install (or fetch) the flight recorder on ``kernel.flight``.

    Trace/span correlation engages automatically when the telemetry
    hub is installed too (install the hub first to correlate), and so
    does drop accounting: with a hub present, ring evictions increment
    ``flight_dropped_total`` in the hub registry.
    """
    if kernel.flight is None:
        hub = kernel.obs
        tracer = hub.tracer if hub is not None else None
        metrics = hub.metrics if hub is not None else None
        kernel.flight = flight.FlightRecorder(
            kernel.clock, tracer=tracer, capacity=capacity,
            sample_metrics=sample_metrics, metrics=metrics)
    return kernel.flight


def uninstall_flight(kernel) -> None:
    """Detach the flight recorder; :func:`record` reverts to a no-op."""
    kernel.flight = None


def enable_timeseries(kernel, window_ms: float = 1_000.0,
                      capacity: int = _timeseries.DEFAULT_CAPACITY
                      ) -> "_timeseries.TimeseriesTable":
    """Enable windowed rollups on the hub (installing the hub if needed).

    Every subsequent :func:`count`/:func:`gauge`/:func:`observe` also
    lands a ``(sim_time, value)`` sample in the table.
    """
    hub = install(kernel)
    if hub.timeseries is None:
        hub.timeseries = _timeseries.TimeseriesTable(
            window_ms=window_ms, capacity=capacity)
    return hub.timeseries


def enable_anomaly(kernel, monitor=None, **monitor_kwargs):
    """Enable online anomaly detection on the hub.

    ``monitor`` installs a pre-configured
    :class:`~repro.obs.anomaly.AnomalyMonitor`; otherwise
    :func:`~repro.obs.anomaly.default_monitor` is built with
    ``monitor_kwargs`` (window_ms, z_threshold, …).
    """
    from repro.obs import anomaly as _anomaly

    hub = install(kernel)
    if hub.anomaly is None:
        if monitor is None:
            monitor = _anomaly.default_monitor(kernel, **monitor_kwargs)
        hub.anomaly = monitor
    return hub.anomaly


# -- zero-cost instrumentation helpers ---------------------------------------
#
# Hot paths call these with their kernel; a world without an installed
# hub takes the early-out branch.

def span(kernel, name: str, context: Optional[TraceContext] = None,
         **attributes: object) -> Union[Span, NullSpan]:
    """Open a span on the world's tracer (no-op span when unobserved).

    ``context`` joins an existing trace when the span stack cannot
    supply the causal parent (see :meth:`Tracer.span`).
    """
    hub = kernel.obs
    if hub is None:
        return NULL_SPAN
    return hub.tracer.span(name, context=context, **attributes)


def current_context(kernel) -> Optional[TraceContext]:
    """Propagation handle of the innermost active span, if observed."""
    hub = kernel.obs
    if hub is None:
        return None
    return hub.tracer.current_context()


def record(kernel, kind: str, **attrs: object) -> None:
    """Append a lifecycle event to the flight tape (no-op when no
    recorder is installed — one attribute load, like the tracer)."""
    recorder = kernel.flight
    if recorder is not None:
        recorder.record(kind, **attrs)


def _feed_sample(kernel, hub, name: str, value: float, kind: str) -> None:
    """Fan a metric write out to the optional incident layers."""
    if hub.timeseries is not None:
        hub.timeseries.record(name, kernel.clock.now, value, kind=kind)
    recorder = kernel.flight
    if recorder is not None and recorder.sample_metrics:
        recorder.record(flight.METRIC_SAMPLE, metric=name,
                        value=value, sample_kind=kind)


def count(kernel, name: str, value: float = 1.0,
          labels: Optional[Dict[str, str]] = None) -> None:
    hub = kernel.obs
    if hub is not None:
        hub.metrics.inc(name, value, labels)
        _feed_sample(kernel, hub, name, value, _timeseries.COUNTER_SAMPLE)
        if hub.anomaly is not None:
            hub.anomaly.offer_count(name, kernel.clock.now, value)


def gauge(kernel, name: str, value: float,
          labels: Optional[Dict[str, str]] = None) -> None:
    hub = kernel.obs
    if hub is not None:
        hub.metrics.set_gauge(name, value, labels)
        _feed_sample(kernel, hub, name, value, _timeseries.VALUE_SAMPLE)
        if hub.anomaly is not None:
            hub.anomaly.offer(name, kernel.clock.now, value)


def observe(kernel, name: str, value: float,
            labels: Optional[Dict[str, str]] = None,
            exemplar: Optional[str] = None) -> None:
    """Record a histogram observation; the exemplar defaults to the
    trace id of the innermost active span, linking the latency bucket
    back to the causal span tree. The exemplar also rides into the
    anomaly monitor, so a flagged observation can name its request."""
    hub = kernel.obs
    if hub is not None:
        if exemplar is None:
            exemplar = hub.tracer.current_trace_id()
        hub.metrics.observe(name, value, labels, exemplar=exemplar)
        _feed_sample(kernel, hub, name, value, _timeseries.VALUE_SAMPLE)
        if hub.anomaly is not None:
            hub.anomaly.offer(name, kernel.clock.now, value,
                              trace_id=exemplar)


def observe_many(kernel, name: str, values,
                 labels: Optional[Dict[str, str]] = None) -> None:
    """Batched :func:`observe`: one histogram write for many values.

    The histogram lands the batch through its vectorized
    ``observe_many`` (no exemplars); the optional time-series and
    anomaly layers still see every sample individually, so rollups and
    detectors behave exactly as with repeated single observations.
    """
    hub = kernel.obs
    if hub is None or len(values) == 0:
        return
    hub.metrics.histogram_series(name, labels).observe_many(values)
    feed_timeseries = hub.timeseries is not None
    recorder = kernel.flight
    feed_flight = recorder is not None and recorder.sample_metrics
    feed_anomaly = hub.anomaly is not None
    if feed_timeseries or feed_flight or feed_anomaly:
        now = kernel.clock.now
        for value in values:
            if feed_timeseries:
                hub.timeseries.record(name, now, value,
                                      kind=_timeseries.VALUE_SAMPLE)
            if feed_flight:
                recorder.record(flight.METRIC_SAMPLE, metric=name,
                                value=value, sample_kind=_timeseries.VALUE_SAMPLE)
            if feed_anomaly:
                hub.anomaly.offer(name, now, value)


__all__ = [
    "Observability",
    "install",
    "uninstall",
    "install_flight",
    "uninstall_flight",
    "enable_timeseries",
    "enable_anomaly",
    "span",
    "count",
    "gauge",
    "observe",
    "observe_many",
    "CounterHandle",
    "GaugeHandle",
    "record",
    "current_context",
    "fleet",
    "flight",
    "TraceContext",
    "Span",
    "SpanError",
    "NullSpan",
    "NULL_SPAN",
    "Tracer",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "StructuredLogger",
    "get_logger",
    "export",
]
