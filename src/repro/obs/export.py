"""Exporters: Prometheus text format and JSONL trace/metric dumps.

The Prometheus renderer emits the v0.0.4 text exposition format —
counters, then gauges, then histograms (as summaries with
``quantile`` labels plus ``_count``/``_sum`` series) — and
:func:`parse_prometheus` round-trips exactly what it emits, so tests
and scrape-style tooling can verify registries symbolically.

Traces export one JSON object per line (JSONL): stream-appendable,
greppable, and cheap to merge across repetitions.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.metrics import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    Histogram,
    LabelSet,
    MetricsRegistry,
)
from repro.obs.spans import Span

# ---------------------------------------------------------------------------
# Prometheus text format
# ---------------------------------------------------------------------------


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in labels
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def _scalar_lines(name: str, series: Dict[LabelSet, object]) -> List[str]:
    return sorted(
        f"{name}{_format_labels(labels)} {_format_value(value)}"
        for labels, value in series.items()
    )


def _summary_lines(name: str, series: Dict[LabelSet, object],
                   quantiles: Iterable[float]) -> List[str]:
    lines: List[str] = []
    for labels, histogram in series.items():
        assert isinstance(histogram, Histogram)
        for q in quantiles:
            quantile_labels = labels + (("quantile", _format_value(q)),)
            lines.append(
                f"{name}{_format_labels(tuple(sorted(quantile_labels)))} "
                f"{_format_value(histogram.quantile(q))}"
            )
        lines.append(f"{name}_count{_format_labels(labels)} "
                     f"{_format_value(histogram.count)}")
        lines.append(f"{name}_sum{_format_labels(labels)} "
                     f"{_format_value(histogram.total)}")
    return sorted(lines)


def _exemplar_lines(name: str, series: Dict[LabelSet, object]) -> List[str]:
    # Exemplars ride as comment lines so parse_prometheus (which skips
    # "#") round-trips untouched; real Prometheus uses OpenMetrics "#"
    # machinery for the same reason.
    lines: List[str] = []
    for labels, histogram in series.items():
        assert isinstance(histogram, Histogram)
        for index in sorted(histogram.exemplars):
            trace_id, value = histogram.exemplars[index]
            lines.append(
                f"# EXEMPLAR {name}{_format_labels(labels)} "
                f"bucket={index} value={_format_value(value)} "
                f"trace_id={trace_id}"
            )
    return sorted(lines)


def render_prometheus(
    registry: MetricsRegistry,
    quantiles: Iterable[float] = MetricsRegistry.DEFAULT_QUANTILES,
) -> str:
    """Render every series: counters, gauges, then histogram summaries.

    Deterministic: metric families sort by name within each kind group,
    series sort within each family.
    """
    sections: List[str] = []
    families = registry.families()
    for kind, type_name in ((COUNTER, "counter"), (GAUGE, "gauge")):
        for family in sorted((f for f in families if f.kind == kind),
                             key=lambda f: f.name):
            sections.append(f"# TYPE {family.name} {type_name}")
            sections.extend(_scalar_lines(family.name, family.series))
    for family in sorted((f for f in families if f.kind == HISTOGRAM),
                         key=lambda f: f.name):
        sections.append(f"# TYPE {family.name} summary")
        sections.extend(_summary_lines(family.name, family.series, quantiles))
        sections.extend(_exemplar_lines(family.name, family.series))
    return "\n".join(sections) + ("\n" if sections else "")


ParsedSeries = Dict[str, Dict[LabelSet, float]]


def parse_prometheus(text: str) -> ParsedSeries:
    """Parse exposition text back into ``{metric: {labelset: value}}``.

    Supports the subset :func:`render_prometheus` emits (no escapes in
    label names, one series per line).
    """
    out: ParsedSeries = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        series, _, value_text = line.rpartition(" ")
        if not series:
            raise ValueError(f"malformed exposition line {raw!r}")
        if "{" in series:
            name, _, label_blob = series.partition("{")
            if not label_blob.endswith("}"):
                raise ValueError(f"malformed label set in {raw!r}")
            labels = []
            blob = label_blob[:-1]
            if blob:
                for pair in blob.split(","):
                    key, _, quoted = pair.partition("=")
                    if not (quoted.startswith('"') and quoted.endswith('"')):
                        raise ValueError(f"malformed label value in {raw!r}")
                    labels.append((key, quoted[1:-1]
                                   .replace('\\"', '"')
                                   .replace("\\n", "\n")
                                   .replace("\\\\", "\\")))
            labelset = tuple(sorted(labels))
        else:
            name, labelset = series, ()
        try:
            value = float(value_text)
        except ValueError:
            raise ValueError(f"bad sample value in {raw!r}") from None
        out.setdefault(name, {})[labelset] = value
    return out


# ---------------------------------------------------------------------------
# JSONL traces
# ---------------------------------------------------------------------------

SpanRecord = Dict[str, object]


def spans_to_jsonl(spans: Iterable[Union[Span, SpanRecord]]) -> str:
    """One JSON object per line; accepts Span objects or span dicts."""
    lines = []
    for span in spans:
        record = span.as_dict() if isinstance(span, Span) else span
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def write_trace_jsonl(path: Union[str, pathlib.Path],
                      spans: Iterable[Union[Span, SpanRecord]]) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(spans_to_jsonl(spans), encoding="utf-8")
    return path


def read_trace_jsonl(source: Union[str, pathlib.Path]) -> List[SpanRecord]:
    """Load span records from a JSONL file path or raw JSONL text."""
    if isinstance(source, pathlib.Path):
        text = source.read_text(encoding="utf-8")
    else:
        text = str(source)
        if "\n" not in text and not text.lstrip().startswith("{"):
            text = pathlib.Path(text).read_text(encoding="utf-8")
    records = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"bad trace line {lineno}: {exc}") from None
        if not isinstance(record, dict) or "name" not in record:
            raise ValueError(f"trace line {lineno} is not a span record")
        records.append(record)
    return records


def metrics_to_jsonl(registry: MetricsRegistry) -> str:
    """Dump every series as JSONL (histograms with their quantiles)."""
    lines: List[str] = []
    for family in sorted(registry.families(), key=lambda f: f.name):
        for labels in sorted(family.series):
            record: Dict[str, object] = {
                "metric": family.name,
                "kind": family.kind,
                "labels": dict(labels),
            }
            if family.kind == HISTOGRAM:
                histogram = family.series[labels]
                record.update(
                    count=histogram.count,
                    sum=histogram.total,
                    min=histogram.min_value,
                    max=histogram.max_value,
                    quantiles={
                        _format_value(q): histogram.quantile(q)
                        for q in MetricsRegistry.DEFAULT_QUANTILES
                    },
                    # Bucket counts make the dump reconstructable
                    # (registry_from_jsonl) for offline SLO evaluation.
                    buckets={str(i): histogram.buckets[i]
                             for i in sorted(histogram.buckets)},
                    exemplars={str(i): list(histogram.exemplars[i])
                               for i in sorted(histogram.exemplars)},
                )
            else:
                record["value"] = family.series[labels]
            lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def registry_from_jsonl(source: Union[str, pathlib.Path]) -> MetricsRegistry:
    """Rebuild a :class:`MetricsRegistry` from a metrics JSONL dump.

    The inverse of :func:`metrics_to_jsonl` for everything bucketed:
    counters and gauges restore exactly, histograms restore their
    buckets/count/sum/min/max/exemplars (quantiles recompute from the
    buckets). This is what lets ``repro.obs.cli alerts`` evaluate SLOs
    against a recorded run without a live world.
    """
    if isinstance(source, pathlib.Path):
        text = source.read_text(encoding="utf-8")
    else:
        text = str(source)
        if "\n" not in text and not text.lstrip().startswith("{"):
            text = pathlib.Path(text).read_text(encoding="utf-8")
    registry = MetricsRegistry()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"bad metrics line {lineno}: {exc}") from None
        if not isinstance(record, dict) or "metric" not in record:
            raise ValueError(f"metrics line {lineno} is not a series record")
        name = record["metric"]
        kind = record.get("kind")
        labels = record.get("labels") or {}
        if kind == COUNTER:
            registry.inc(name, float(record["value"]), labels)
        elif kind == GAUGE:
            registry.set_gauge(name, float(record["value"]), labels)
        elif kind == HISTOGRAM:
            histogram = registry.histogram_series(name, labels)
            histogram.buckets = {int(i): int(n)
                                 for i, n in record.get("buckets", {}).items()}
            histogram.count = int(record["count"])
            histogram.total = float(record["sum"])
            histogram.min_value = float(record["min"])
            histogram.max_value = float(record["max"])
            histogram.exemplars = {
                int(i): (str(trace_id), float(value))
                for i, (trace_id, value) in record.get("exemplars", {}).items()
            }
        else:
            raise ValueError(
                f"metrics line {lineno}: unknown kind {kind!r}")
    return registry
