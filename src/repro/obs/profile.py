"""Phase-level profiling of the start-up critical path.

The paper's Figure 4 splits replica start-up into four phases measured
with bpftrace — CLONE, EXEC, RTS (runtime bootstrap) and APPINIT — and
shows prebaking collapses the cost into the restore window. This
module attributes *simulated* time to exactly that taxonomy, plus the
restore sub-phases the snapshot machinery introduced (digest-verify,
chunk-fetch, working-set-prefetch, lazy page-fault, repair, retry
backoff), so a profile answers the same question the paper's Figure 4
does: where does the cold start spend its time?

Like the telemetry hub (:mod:`repro.obs`), the profiler is a per-world
object on ``kernel.profile`` that defaults to ``None``; instrumented
sites early-out on the attribute load, consume no randomness and
charge no simulated time when it is uninstalled — figure outputs stay
byte-identical whether or not a profile is being collected.

Attribution convention (matches DESIGN.md §7's accounting): a restored
replica pays no RTS and its whole restore window counts as APPINIT, so
the ``restore.*`` sub-phases fold *under* APPINIT in flamegraph output
and the invariant

    CLONE + EXEC + RTS + APPINIT == ready - spawned

holds for both techniques (retries included; each failed attempt's
clone/exec/restore work lands in the same buckets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

# -- the phase taxonomy (paper §4.2.1 + restore sub-phases) -----------------

PHASE_CLONE = "CLONE"
PHASE_EXEC = "EXEC"
PHASE_RTS = "RTS"
PHASE_APPINIT = "APPINIT"

# Restore sub-phases: how the APPINIT-equivalent restore window splits.
RESTORE_DIGEST_VERIFY = "restore.digest-verify"      # manifest read + integrity
RESTORE_PIPELINE_RAMP = "restore.pipeline-ramp"      # fill of the fetch pipeline
RESTORE_CHUNK_FETCH = "restore.chunk-fetch"          # page data from the store
RESTORE_WS_PREFETCH = "restore.working-set-prefetch" # REAP recorded-set mapping
RESTORE_LAZY_FAULT = "restore.lazy-page-fault"       # post-resume demand faults
RESTORE_SUBTREE_VERIFY = "restore.subtree-verify"    # Merkle re-verify of repairs
RESTORE_REPAIR = "restore.repair"                    # chunk-level image repair
RESTORE_BACKOFF = "restore.retry-backoff"            # wait between attempts
RESTORE_SHARD_FETCH = "restore.shard-fetch"          # quorum hops to storage nodes

STARTUP_PHASES = (PHASE_CLONE, PHASE_EXEC, PHASE_RTS, PHASE_APPINIT)
RESTORE_PHASES = (RESTORE_DIGEST_VERIFY, RESTORE_PIPELINE_RAMP,
                  RESTORE_CHUNK_FETCH, RESTORE_WS_PREFETCH,
                  RESTORE_LAZY_FAULT, RESTORE_SUBTREE_VERIFY,
                  RESTORE_REPAIR, RESTORE_BACKOFF, RESTORE_SHARD_FETCH)
ALL_PHASES = STARTUP_PHASES + RESTORE_PHASES


def phase_stack(phase: str) -> Tuple[str, ...]:
    """Folded-stack frames for a phase (restore.* nests under APPINIT)."""
    if phase.startswith("restore."):
        return (PHASE_APPINIT, phase)
    return (phase,)


@dataclass
class PhaseSample:
    """One attribution of simulated time to a phase."""

    phase: str
    duration_ms: float
    at_ms: float                    # simulated clock when recorded
    pid: Optional[int] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "phase": self.phase,
            "duration_ms": self.duration_ms,
            "at_ms": self.at_ms,
            "pid": self.pid,
            "attrs": dict(self.attrs),
        }


class PhaseProfiler:
    """Per-world phase-time collector (install on ``kernel.profile``)."""

    def __init__(self, clock) -> None:
        self.clock = clock
        self.samples: List[PhaseSample] = []

    def record(self, phase: str, duration_ms: float,
               pid: Optional[int] = None, **attrs: object) -> PhaseSample:
        sample = PhaseSample(
            phase=phase,
            duration_ms=duration_ms,
            at_ms=self.clock.now,
            pid=pid,
            attrs=dict(attrs),
        )
        self.samples.append(sample)
        return sample

    def totals(self) -> Dict[str, float]:
        """Per-phase time, insertion-independent canonical order.

        Raw per-sample-phase sums: ``restore.*`` keys appear beside the
        top-level phases and are *not* folded into APPINIT here — use
        :meth:`phase_totals` for the Figure-4 four-way accounting.
        """
        out: Dict[str, float] = {}
        for phase in ALL_PHASES:
            out[phase] = 0.0
        for sample in self.samples:
            out[sample.phase] = out.get(sample.phase, 0.0) + sample.duration_ms
        return {phase: ms for phase, ms in out.items()
                if ms or phase in STARTUP_PHASES}

    def phase_totals(self) -> Dict[str, float]:
        """Figure-4 accounting: restore sub-phases folded into APPINIT.

        ``sum(phase_totals().values()) == total_ms()`` and, over one
        clean start-up episode, equals ``ready - spawned``.
        """
        out = {phase: 0.0 for phase in STARTUP_PHASES}
        for sample in self.samples:
            top = phase_stack(sample.phase)[0]
            out[top] = out.get(top, 0.0) + sample.duration_ms
        return out

    def total_ms(self) -> float:
        return sum(s.duration_ms for s in self.samples)

    def reset(self) -> List[PhaseSample]:
        """Return all samples and clear the buffer (per-episode use)."""
        drained, self.samples = self.samples, []
        return drained


def install(kernel) -> PhaseProfiler:
    """Install (or fetch) a profiler on ``kernel``."""
    if kernel.profile is None:
        kernel.profile = PhaseProfiler(kernel.clock)
    return kernel.profile


def uninstall(kernel) -> None:
    """Detach the profiler; instrumentation reverts to zero-cost no-ops."""
    kernel.profile = None


def record(kernel, phase: str, duration_ms: float,
           pid: Optional[int] = None, **attrs: object) -> None:
    """Zero-cost attribution helper (no-op when no profiler installed)."""
    profiler = kernel.profile
    if profiler is not None:
        profiler.record(phase, duration_ms, pid=pid, **attrs)


# -- renderers ---------------------------------------------------------------


def folded_lines(samples: List[PhaseSample], prefix: str = "") -> List[str]:
    """Aggregate samples into folded-stack flamegraph lines.

    One line per distinct stack, ``frame;frame;... <integer µs>`` —
    the format ``flamegraph.pl`` and speedscope ingest directly.
    ``prefix`` usually carries ``technique;function``.
    """
    aggregated: Dict[str, float] = {}
    for sample in samples:
        frames = phase_stack(sample.phase)
        stack = ";".join((prefix,) + frames if prefix else frames)
        aggregated[stack] = aggregated.get(stack, 0.0) + sample.duration_ms
    return [f"{stack} {round(ms * 1000)}"
            for stack, ms in sorted(aggregated.items())]


def critical_path_rows(samples: List[PhaseSample]) -> List[Tuple[str, float, float]]:
    """(phase, ms, share-of-total) rows in canonical taxonomy order.

    Top-level rows use the Figure-4 accounting (restore sub-phases
    folded into APPINIT); the sub-phases follow indented under APPINIT
    as a decomposition of it, not additional time. The four top-level
    ``ms`` values therefore sum to the measured start-up time.
    """
    raw: Dict[str, float] = {}
    for sample in samples:
        raw[sample.phase] = raw.get(sample.phase, 0.0) + sample.duration_ms
    folded: Dict[str, float] = {}
    for phase, ms in raw.items():
        top = phase_stack(phase)[0]
        folded[top] = folded.get(top, 0.0) + ms
    total = sum(folded.values())
    rows: List[Tuple[str, float, float]] = []
    for phase in STARTUP_PHASES:
        ms = folded.get(phase, 0.0)
        rows.append((phase, ms, ms / total if total else 0.0))
        if phase == PHASE_APPINIT:
            for sub in RESTORE_PHASES:
                sub_ms = raw.get(sub, 0.0)
                if sub_ms:
                    rows.append((f"  {sub}", sub_ms,
                                 sub_ms / total if total else 0.0))
    return rows
