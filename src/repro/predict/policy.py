"""Prewarm policies and the platform-side prewarm controller.

A *policy* turns the observed arrival stream of one function into two
decisions, re-evaluated once per forecast window:

* ``keepalive_ms`` — how long an idle warm replica is worth keeping;
* ``target_warm`` — how many replicas to hold ready for the *next*
  window (0 for purely reactive policies).

The X13 study (:mod:`repro.bench.prewarm_study`) sweeps the policy
ladder — reactive, fixed keep-alive, histogram/EWMA, learned
(attention), oracle — over the same trace; the platform runs one
policy live through :class:`PrewarmController`, which feeds arrivals
into :class:`repro.obs.timeseries.WindowedSeries` rings and hands the
autoscaler budget-capped :class:`PrewarmAction` plans.

Policies are deterministic: per-key forecaster seeds derive from the
policy seed and the key via ``repro.sim.rng._derive_seed``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.timeseries import VALUE_SAMPLE, WindowedSeries
from repro.predict.forecast import (
    AttentionForecaster,
    EwmaForecaster,
    InterArrivalHistogram,
)
from repro.sim.rng import _derive_seed

DEFAULT_WINDOW_MS = 10_000.0
DEFAULT_KEEPALIVE_FLOOR_MS = 1_000.0
DEFAULT_KEEPALIVE_CAP_MS = 30_000.0


def _concurrency(forecast: float, window_ms: float, service_ms: float,
                 min_forecast: float, safety: float) -> int:
    """Warm replicas needed to absorb ``forecast`` arrivals next window.

    Square-root staffing: the mean busy count is Little's law
    (``forecast * service_ms / window_ms``), but arrivals clump, so the
    warm set must cover the *peak* instantaneous concurrency — for
    Poisson overlap that is mean + ``safety`` standard deviations
    (``sqrt(mean)``), the classic Erlang square-root safety margin. At
    least one replica is held whenever the forecast clears the
    ``min_forecast`` noise floor.
    """
    if forecast < min_forecast:
        return 0
    load = forecast * service_ms / window_ms
    need = load + safety * math.sqrt(load)
    return max(1, int(math.ceil(need)))


class PrewarmPolicy:
    """Interface shared by the study's policy ladder."""

    name = "base"

    #: Whether a singleton target (exactly one warm replica) is worth
    #: pre-placing. Forecast-driven policies say no — keeping one
    #: replica warm is the keep-alive's job, and a speculative
    #: singleton placed on every window the forecast clears the noise
    #: floor holds a standing replica through troughs the status quo
    #: scales out of. The clairvoyant oracle says yes: it only places
    #: for windows that really have arrivals.
    prewarm_singletons = False

    def note_gap(self, key: str, gap_ms: float) -> None:
        """Record one inter-arrival gap for ``key``."""

    def observe_window(self, key: str, count: float) -> None:
        """Fold in one completed window's arrival count for ``key``."""

    def keepalive_ms(self, key: str) -> float:
        return 0.0

    def target_warm(self, key: str) -> int:
        return 0

    def wants_prefetch(self, key: str) -> bool:
        return self.target_warm(key) > 0

    def prewarm_schedule(self, key: str) -> Optional[Tuple[float, float]]:
        """Timer-style prewarm schedule, or None.

        Returns ``(eta_ms, hold_ms)``: place one replica ``eta_ms``
        after the function's last arrival and hold it for ``hold_ms``.
        Only meaningful when the inter-arrival histogram shows long,
        *predictable* gaps (cron/timer triggers — the dominant class in
        production FaaS traces): the keep-alive path can't cover a
        3-minute period, but a replica pre-placed just before the
        predicted arrival turns every one of those cold starts warm
        for a few seconds of idle cost.
        """
        return None


class ReactivePolicy(PrewarmPolicy):
    """No keep-alive, no prewarm: every start after idle is cold."""

    name = "reactive"


class FixedKeepAlivePolicy(PrewarmPolicy):
    """The classic fixed idle timeout (the platform's status quo)."""

    name = "fixed"

    def __init__(self, keepalive_ms: float = 60_000.0) -> None:
        self._keepalive_ms = float(keepalive_ms)

    def keepalive_ms(self, key: str) -> float:
        return self._keepalive_ms


class HistogramEwmaPolicy(PrewarmPolicy):
    """Serverless-in-the-Wild-style hybrid: histogram keep-alive + EWMA
    pre-provisioning.

    The per-key inter-arrival histogram picks a keep-alive covering the
    ``hist_quantile`` fraction of observed gaps — but only when the gap
    distribution is *informative*. Two escape hatches keep the policy
    honest on the distributions a quantile can't serve:

    * gaps so long not even the cap covers a tenth of them (timer/cron
      periods) → scale to zero at the floor and rely on
      :meth:`prewarm_schedule`;
    * a broad ON/OFF mixture (burst gaps milliseconds, off gaps
      minutes) → no single affordable window is also covering, so fall
      back to ``default_keepalive_ms``, the platform's status quo.
    """

    name = "histogram"

    #: Gap-distribution spread (tail quantile / median, in log2-bucket
    #: edges) beyond which the histogram is treated as an ON/OFF
    #: mixture rather than one coverable distribution.
    BROAD_RATIO = 16.0

    #: Mean-gap ceiling for keep-alives *longer* than the default.
    #: Extending coverage from the default to the tail quantile costs
    #: roughly one mean gap of idle time per cold start it avoids, so
    #: the extension only pays on functions that arrive often enough.
    EXTEND_MEAN_GAP_MS = 20_000.0

    def __init__(self, window_ms: float = DEFAULT_WINDOW_MS,
                 service_ms: float = 150.0,
                 hist_quantile: float = 0.99,
                 keepalive_floor_ms: float = DEFAULT_KEEPALIVE_FLOOR_MS,
                 keepalive_cap_ms: float = DEFAULT_KEEPALIVE_CAP_MS,
                 default_keepalive_ms: float = 60_000.0,
                 ewma_alpha: float = 0.25,
                 min_forecast: float = 0.5,
                 safety: float = 2.5) -> None:
        self.window_ms = float(window_ms)
        self.service_ms = float(service_ms)
        self.hist_quantile = float(hist_quantile)
        self.keepalive_floor_ms = float(keepalive_floor_ms)
        self.keepalive_cap_ms = float(keepalive_cap_ms)
        self.default_keepalive_ms = float(default_keepalive_ms)
        self.ewma_alpha = float(ewma_alpha)
        self.min_forecast = float(min_forecast)
        self.safety = float(safety)
        self._hists: Dict[str, InterArrivalHistogram] = {}
        self._ewmas: Dict[str, EwmaForecaster] = {}

    def _hist(self, key: str) -> InterArrivalHistogram:
        hist = self._hists.get(key)
        if hist is None:
            hist = self._hists[key] = InterArrivalHistogram()
        return hist

    def _ewma(self, key: str) -> EwmaForecaster:
        ewma = self._ewmas.get(key)
        if ewma is None:
            ewma = self._ewmas[key] = EwmaForecaster(alpha=self.ewma_alpha)
        return ewma

    def note_gap(self, key: str, gap_ms: float) -> None:
        self._hist(key).note_gap(gap_ms)

    def observe_window(self, key: str, count: float) -> None:
        self._ewma(key).observe(count)

    def forecast(self, key: str) -> float:
        return self._ewma(key).forecast()

    def _clamp(self, value: float) -> float:
        return min(max(value, self.keepalive_floor_ms), self.keepalive_cap_ms)

    def keepalive_ms(self, key: str) -> float:
        hist = self._hist(key)
        if hist.total == 0:
            # No gap data yet: keep the status-quo timeout until the
            # histogram earns the right to shrink it.
            return self._clamp(self.default_keepalive_ms)
        # Scale-to-zero fast path: when even a tenth of the observed
        # gaps outlast the cap, no affordable keep-alive covers this
        # function (timer/cron-style long periods) — idling a replica
        # for the cap is pure waste, so drop to the floor and let
        # ``prewarm_schedule`` place a replica just in time instead.
        shortest = hist.quantile(0.1)
        if shortest is not None and shortest > self.keepalive_cap_ms:
            return self.keepalive_floor_ms
        # Uninformative-distribution fallback: a quantile of an ON/OFF
        # mixture picks the intra-burst spacing (milliseconds) and lets
        # surplus replicas die mid-burst, while the off gaps it would
        # need to cover sit octaves away. When the tail is BROAD_RATIO
        # beyond the median, no single histogram window is both
        # affordable and covering — use the platform's default timeout,
        # exactly like the fixed baseline, and let the EWMA target do
        # the predictive work.
        median = hist.quantile(0.5)
        tail = hist.quantile(self.hist_quantile)
        if median is not None and tail is not None \
                and tail > self.BROAD_RATIO * median:
            return self._clamp(self.default_keepalive_ms)
        value = hist.keepalive_ms(
            self.hist_quantile, self.keepalive_floor_ms,
            self.keepalive_cap_ms)
        if value > self.default_keepalive_ms:
            # Cost-aware extension: a keep-alive beyond the status quo
            # pays ~one mean gap of idle per avoided cold, so sparse
            # functions stay at the default instead of the tail edge.
            rate = hist.rate_per_ms()
            mean_gap = (1.0 / rate) if rate else None
            if mean_gap is None or mean_gap > self.EXTEND_MEAN_GAP_MS:
                return self._clamp(self.default_keepalive_ms)
        # Active-function floor: while the forecast holds a positive
        # warm target, surplus replicas above it are retained at least
        # as long as the status quo would retain them. A sub-default
        # keep-alive on a busy function saves milliseconds of idle but
        # churns the standing depth that arrival clumps reuse.
        if value < self.default_keepalive_ms and self.target_warm(key) > 0:
            return self._clamp(self.default_keepalive_ms)
        return value

    def target_warm(self, key: str) -> int:
        return _concurrency(self.forecast(key), self.window_ms,
                            self.service_ms, self.min_forecast, self.safety)

    # Schedule thresholds: enough gap samples to trust the histogram,
    # a spread test separating periodic triggers from Poisson-ish
    # arrivals, and an early-edge margin so the replica lands warm
    # before the bulk of the predicted gap distribution.
    SCHEDULE_MIN_SAMPLES = 6
    SCHEDULE_MAX_SPREAD = 4.0
    SCHEDULE_ETA_MARGIN = 0.9

    def prewarm_schedule(self, key: str) -> Optional[Tuple[float, float]]:
        hist = self._hist(key)
        if hist.total < self.SCHEDULE_MIN_SAMPLES:
            return None
        lo = hist.exact_quantile(0.05)
        hi = hist.exact_quantile(0.98)
        if lo is None or hi is None or lo <= 0:
            return None
        if hi > lo * self.SCHEDULE_MAX_SPREAD:
            return None                      # gaps not predictable
        if lo <= self.keepalive_ms(key):
            return None                      # keep-alive already covers
        eta = lo * self.SCHEDULE_ETA_MARGIN
        hold = hi * 1.1 - eta
        return eta, hold


class LearnedPolicy(HistogramEwmaPolicy):
    """Histogram keep-alive + attention-forecast pre-provisioning.

    Same shape as :class:`HistogramEwmaPolicy` but the next-window count
    comes from a per-key :class:`AttentionForecaster` (seeded from the
    policy seed and the key, so the study is reproducible function by
    function).
    """

    name = "learned"

    def __init__(self, window_ms: float = DEFAULT_WINDOW_MS,
                 service_ms: float = 150.0,
                 horizon: int = 64,
                 seed: int = 0,
                 **kwargs: float) -> None:
        super().__init__(window_ms=window_ms, service_ms=service_ms, **kwargs)
        self.horizon = int(horizon)
        self.seed = int(seed)
        self._models: Dict[str, AttentionForecaster] = {}

    def _model(self, key: str) -> AttentionForecaster:
        model = self._models.get(key)
        if model is None:
            model = self._models[key] = AttentionForecaster(
                horizon=self.horizon,
                seed=_derive_seed(self.seed, f"prewarm-{key}"))
        return model

    def observe_window(self, key: str, count: float) -> None:
        super().observe_window(key, count)
        self._model(key).observe(count)

    def forecast(self, key: str) -> float:
        return self._model(key).forecast()


class OraclePolicy(PrewarmPolicy):
    """Clairvoyant upper bound: reads next-window counts off the trace.

    Constructed with the per-key window-count vectors the study
    precomputes from the trace; ``observe_window`` only advances the
    per-key cursor. Keep-alive collapses to one window — the oracle
    never holds a replica it knows won't be used.
    """

    name = "oracle"
    prewarm_singletons = True

    def __init__(self, counts: Mapping[str, Sequence[float]],
                 window_ms: float = DEFAULT_WINDOW_MS,
                 service_ms: float = 150.0,
                 safety: float = 2.5) -> None:
        self.window_ms = float(window_ms)
        self.service_ms = float(service_ms)
        self.safety = float(safety)
        self._counts = {key: list(values) for key, values in counts.items()}
        self._cursor: Dict[str, int] = {}

    def observe_window(self, key: str, count: float) -> None:
        self._cursor[key] = self._cursor.get(key, -1) + 1

    def _next_count(self, key: str) -> float:
        counts = self._counts.get(key)
        if counts is None:
            return 0.0
        index = self._cursor.get(key, -1) + 1
        if index >= len(counts):
            return 0.0
        return float(counts[index])

    def keepalive_ms(self, key: str) -> float:
        return self.window_ms if self._next_count(key) > 0 else 0.0

    def target_warm(self, key: str) -> int:
        return _concurrency(self._next_count(key), self.window_ms,
                            self.service_ms, 0.5, self.safety)


# ---------------------------------------------------------------------------
# Platform-side controller
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PrewarmConfig:
    """Knobs for the live prewarm layer (off unless installed)."""

    policy: str = "learned"              # "histogram" | "learned"
    window_ms: float = DEFAULT_WINDOW_MS
    horizon: int = 64
    service_ms_hint: float = 100.0       # assumed busy time per request
    keepalive_floor_ms: float = DEFAULT_KEEPALIVE_FLOOR_MS
    keepalive_cap_ms: float = DEFAULT_KEEPALIVE_CAP_MS
    min_forecast: float = 0.5
    safety: float = 2.5
    max_prewarm_per_tick: int = 4        # replica budget per planning pass
    max_warm_per_function: int = 4
    burn_threshold: float = 1.0          # SLO burn rate that triggers boost
    burn_boost: float = 2.0              # target multiplier while burning
    prefetch: bool = True                # push hot chunks to node caches
    prefetch_budget_bytes: int = 128 * 1024 * 1024
    seed: int = 0

    def __post_init__(self) -> None:
        if self.policy not in ("histogram", "learned"):
            raise ValueError(f"unknown prewarm policy {self.policy!r}")
        if self.window_ms <= 0:
            raise ValueError("window_ms must be positive")
        if self.max_prewarm_per_tick < 1:
            raise ValueError("max_prewarm_per_tick must be >= 1")


@dataclass(frozen=True)
class PrewarmAction:
    """One function's plan for the next window."""

    function: str
    add_replicas: int       # replicas to pre-place now (may be 0)
    target_warm: int        # desired warm set the forecast asked for
    keepalive_ms: float     # policy-chosen idle timeout
    prefetch: bool          # push the function's hot chunks node-side
    forecast: float         # raw next-window arrival forecast


@dataclass
class PrewarmStats:
    """Controller counters, surfaced in X13 and the obs metrics."""

    plans: int = 0
    prewarm_replicas: int = 0
    prefetch_requests: int = 0
    burn_boosts: int = 0
    windows_fed: int = 0
    per_function_prewarms: Dict[str, int] = field(default_factory=dict)


class PrewarmController:
    """Feeds arrivals into per-function timeseries windows and plans.

    ``note_arrival`` is called from the router path (cheap: one ring
    append + one histogram bump); ``plan`` is called from the
    autoscaler tick and returns the budget-capped actions for this
    pass. The controller never touches the kernel RNG or clock, so
    installing it leaves un-prewarmed runs byte-identical.
    """

    def __init__(self, config: Optional[PrewarmConfig] = None) -> None:
        self.config = config or PrewarmConfig()
        cfg = self.config
        kwargs = dict(
            window_ms=cfg.window_ms,
            service_ms=cfg.service_ms_hint,
            keepalive_floor_ms=cfg.keepalive_floor_ms,
            keepalive_cap_ms=cfg.keepalive_cap_ms,
            min_forecast=cfg.min_forecast,
            safety=cfg.safety,
        )
        if cfg.policy == "learned":
            self.policy: HistogramEwmaPolicy = LearnedPolicy(
                horizon=cfg.horizon, seed=cfg.seed, **kwargs)
        else:
            self.policy = HistogramEwmaPolicy(**kwargs)
        self._series: Dict[str, WindowedSeries] = {}
        self._fed_until: Dict[str, float] = {}
        self._last_arrival: Dict[str, float] = {}
        self.stats = PrewarmStats()

    # -- arrival path --------------------------------------------------------

    def note_arrival(self, function: str, at_ms: float) -> None:
        series = self._series.get(function)
        if series is None:
            series = WindowedSeries(
                f"prewarm_arrivals:{function}", kind=VALUE_SAMPLE)
            self._series[function] = series
        series.record(at_ms, 1.0)
        last = self._last_arrival.get(function)
        if last is not None:
            self.policy.note_gap(function, at_ms - last)
        self._last_arrival[function] = at_ms

    # -- planning ------------------------------------------------------------

    def _feed_windows(self, function: str, now_ms: float) -> None:
        """Feed completed arrival windows to the policy (at most
        ``horizon`` trailing ones, so a long idle stretch costs O(horizon))."""
        series = self._series[function]
        cfg = self.config
        fed_until = self._fed_until.get(function, 0.0)
        stats = series.windows(cfg.window_ms, t_end=now_ms)
        completed = [s for s in stats
                     if s.end_ms <= now_ms and s.start_ms >= fed_until]
        if len(completed) > cfg.horizon:
            completed = completed[-cfg.horizon:]
        for stat in completed:
            self.policy.observe_window(function, float(stat.count))
            self._fed_until[function] = stat.end_ms
            self.stats.windows_fed += 1

    def keepalive_ms(self, function: str,
                     default_ms: float) -> float:
        """Policy keep-alive for the autoscaler's idle GC (falls back to
        the configured timeout until the histogram has data).

        While the forecast holds a positive warm target the keep-alive
        is floored at 1.5 forecast windows, so deliberately pre-placed
        replicas survive the GC pass between two plans instead of
        churning (prewarm → gc → prewarm)."""
        if function not in self._series:
            return default_ms
        value = self.policy.keepalive_ms(function)
        if value <= 0:
            return default_ms
        if self.policy.target_warm(function) > 0:
            value = max(value, 1.5 * self.config.window_ms)
        return value

    def plan(self, now_ms: float, current_warm: Mapping[str, int],
             burn_rate: Optional[float] = None) -> List[PrewarmAction]:
        """Plan this pass's prewarm actions.

        ``current_warm`` maps function -> live replica count; the plan
        only asks for the shortfall against the forecast target. The
        total replicas added per pass is capped by the config budget;
        when the cold-start SLO burn rate crosses the threshold the
        per-function targets are boosted so capacity lands *before*
        the budget burns out.
        """
        cfg = self.config
        self.stats.plans += 1
        boost = 1.0
        if burn_rate is not None and burn_rate > cfg.burn_threshold:
            boost = cfg.burn_boost
            self.stats.burn_boosts += 1
        budget = cfg.max_prewarm_per_tick
        actions: List[PrewarmAction] = []
        for function in sorted(self._series):
            self._feed_windows(function, now_ms)
            forecast = self.policy.forecast(function)
            target = self.policy.target_warm(function)
            if target > 0 and boost > 1.0:
                target = int(math.ceil(target * boost))
            target = min(target, cfg.max_warm_per_function)
            have = int(current_warm.get(function, 0))
            add = max(0, target - have)
            if add > budget:
                add = budget
            prefetch = cfg.prefetch and (target > 0 or add > 0)
            if add <= 0 and not prefetch:
                continue
            budget -= add
            if add > 0:
                self.stats.prewarm_replicas += add
                per_fn = self.stats.per_function_prewarms
                per_fn[function] = per_fn.get(function, 0) + add
            if prefetch:
                self.stats.prefetch_requests += 1
            actions.append(PrewarmAction(
                function=function,
                add_replicas=add,
                target_warm=target,
                keepalive_ms=self.keepalive_ms(
                    function, cfg.keepalive_cap_ms),
                prefetch=prefetch,
                forecast=forecast,
            ))
        return actions
