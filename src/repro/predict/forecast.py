"""Arrival forecasters: inter-arrival histogram, EWMA, attention model.

Three estimators at increasing sophistication, all deterministic:

* :class:`InterArrivalHistogram` — log2-bucketed gap histogram per
  function.  Its quantiles choose keep-alive windows the way the
  Serverless-in-the-Wild hybrid policy does: keep a replica warm for
  the gap length that covers the q-th fraction of observed gaps.
* :class:`EwmaForecaster` — exponentially weighted moving average of
  per-window arrival counts; the cheap rate estimate the histogram
  policy pre-provisions against.
* :class:`AttentionForecaster` — a small numpy-only attention/feature
  sequence model (transformer-inspired, per the PAPERS.md cold-start
  forecasting line of work).  Fixed seeded projections map a lag
  window of count features to keys/values, softmax attention pools
  them into a context vector, and an online normalized-LMS readout
  predicts the next window's arrival count.  No new dependencies, no
  wall-clock or unseeded randomness: for a fixed seed the model is
  bit-deterministic across runs.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, List, Optional

import numpy as np

from repro.sim.rng import _derive_seed

#: Number of log2 gap buckets: bucket i covers [2**i, 2**(i+1)) ms,
#: bucket 0 additionally absorbs sub-millisecond gaps.  2**48 ms is
#: ~9000 years — an open upper bound in practice.
_GAP_BUCKETS = 48


class InterArrivalHistogram:
    """Log2-bucketed histogram of per-function inter-arrival gaps.

    ``quantile(q)`` returns the upper edge of the first bucket whose
    cumulative count reaches ``q`` — a conservative keep-alive choice:
    at least a ``q`` fraction of observed gaps are covered by keeping
    a replica warm that long.  ``rate_per_ms`` is the exact inverse
    mean gap (sample totals are kept alongside the buckets), which
    converges to the true arrival rate on stationary streams.
    """

    __slots__ = ("_counts", "_total", "_gap_sum", "_recent")

    #: Exact-gap reservoir size: enough recent gaps for stable edge
    #: quantiles without unbounded growth.
    RECENT_GAPS = 64

    def __init__(self) -> None:
        self._counts = [0] * _GAP_BUCKETS
        self._total = 0
        self._gap_sum = 0.0
        self._recent: Deque[float] = deque(maxlen=self.RECENT_GAPS)

    @property
    def total(self) -> int:
        return self._total

    def note_gap(self, gap_ms: float) -> None:
        if gap_ms < 0.0 or not math.isfinite(gap_ms):
            return
        index = 0 if gap_ms < 1.0 else int(math.log2(gap_ms))
        index = min(index, _GAP_BUCKETS - 1)
        self._counts[index] += 1
        self._total += 1
        self._gap_sum += gap_ms
        self._recent.append(gap_ms)

    def quantile(self, q: float) -> Optional[float]:
        """Upper gap edge covering at least a ``q`` fraction of gaps."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self._total == 0:
            return None
        need = q * self._total
        seen = 0
        for index, count in enumerate(self._counts):
            seen += count
            if seen >= need:
                return float(2 ** (index + 1))
        return float(2 ** _GAP_BUCKETS)

    def exact_quantile(self, q: float) -> Optional[float]:
        """Quantile over the exact recent-gap reservoir.

        Log2 buckets are the right cost/precision trade for keep-alive
        (factor-2 resolution), but prewarm *scheduling* — placing a
        replica shortly before a timer-triggered function's next
        predicted arrival — needs real edges, so the last
        ``RECENT_GAPS`` gaps are kept exactly.
        """
        if not self._recent:
            return None
        return float(np.quantile(np.asarray(self._recent), q))

    def rate_per_ms(self) -> Optional[float]:
        """Exact sample arrival rate (gaps per ms of observed gap time)."""
        if self._total == 0 or self._gap_sum <= 0.0:
            return None
        return self._total / self._gap_sum

    def keepalive_ms(self, q: float, floor_ms: float, cap_ms: float) -> float:
        """Histogram-chosen keep-alive, clamped to [floor, cap]."""
        edge = self.quantile(q)
        if edge is None:
            return floor_ms
        return min(max(edge, floor_ms), cap_ms)


class EwmaForecaster:
    """EWMA of per-window arrival counts.

    ``observe(count)`` folds in one completed window; ``forecast()``
    predicts the next window's count.  On a stationary Poisson stream
    the estimate converges to the true per-window rate (steady-state
    standard error ``sqrt(alpha / (2 - alpha)) * sqrt(rate)``).
    """

    __slots__ = ("alpha", "_value", "_seen")

    def __init__(self, alpha: float = 0.25) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value = 0.0
        self._seen = 0

    @property
    def windows_seen(self) -> int:
        return self._seen

    def observe(self, count: float) -> None:
        if count < 0.0 or not math.isfinite(count):
            return
        if self._seen == 0:
            self._value = float(count)
        else:
            self._value += self.alpha * (float(count) - self._value)
        self._seen += 1

    def forecast(self) -> float:
        return self._value if self._seen else 0.0


class AttentionForecaster:
    """Numpy-only attention model predicting next-window arrival counts.

    Architecture (all float64, all seeded):

    * each of the last ``horizon`` windows becomes a feature vector
      ``[log1p(count), count/(1+ewma), sin(age), cos(age), 1]``;
    * fixed projections ``Wq/Wk/Wv`` (drawn once from a PCG64 stream
      derived from ``seed``) map features to a query (latest window),
      keys, and values;
    * scaled-dot softmax attention pools the values into a context
      vector;
    * the readout ``w . [context, log1p(last), ewma, 1]`` is trained
      online with normalized LMS against each realized count.

    The readout starts as the pure-EWMA predictor, so the model is
    never worse than EWMA before training kicks in and the attention
    terms only earn weight when they reduce error — e.g. by noticing
    burst onsets (last-window spike) or periodic structure that a
    single decayed average smears away.
    """

    __slots__ = ("horizon", "d_model", "lr", "_wq", "_wk", "_wv", "_w",
                 "_counts", "_ewma", "_last_phi", "_last_pred")

    _FEATURES = 5

    def __init__(self, horizon: int = 64, d_model: int = 16,
                 lr: float = 0.2, ewma_alpha: float = 0.25,
                 seed: int = 0) -> None:
        if horizon < 2:
            raise ValueError(f"horizon must be >= 2, got {horizon}")
        if d_model < 1:
            raise ValueError(f"d_model must be >= 1, got {d_model}")
        self.horizon = int(horizon)
        self.d_model = int(d_model)
        self.lr = float(lr)
        rng = np.random.Generator(np.random.PCG64(
            _derive_seed(seed, "attention-forecaster")))
        scale = 1.0 / math.sqrt(self._FEATURES)
        self._wq = rng.normal(0.0, scale, (self._FEATURES, d_model))
        self._wk = rng.normal(0.0, scale, (self._FEATURES, d_model))
        self._wv = rng.normal(0.0, scale, (self._FEATURES, d_model))
        # Readout over [context (d_model), log1p(last), ewma, 1]; start
        # as the EWMA predictor so the untrained model is sane.
        self._w = np.zeros(d_model + 3, dtype=np.float64)
        self._w[d_model + 1] = 1.0
        self._counts: Deque[float] = deque(maxlen=self.horizon)
        self._ewma = EwmaForecaster(alpha=ewma_alpha)
        self._last_phi: Optional[np.ndarray] = None
        self._last_pred = 0.0

    @property
    def windows_seen(self) -> int:
        return self._ewma.windows_seen

    def _features(self) -> np.ndarray:
        """Lag-window feature matrix, oldest first."""
        counts = np.asarray(self._counts, dtype=np.float64)
        n = counts.size
        ewma = self._ewma.forecast()
        ages = np.arange(n - 1, -1, -1, dtype=np.float64)  # 0 == latest
        angle = 2.0 * np.pi * ages / self.horizon
        feats = np.empty((n, self._FEATURES), dtype=np.float64)
        feats[:, 0] = np.log1p(counts)
        feats[:, 1] = counts / (1.0 + ewma)
        feats[:, 2] = np.sin(angle)
        feats[:, 3] = np.cos(angle)
        feats[:, 4] = 1.0
        return feats

    def observe(self, count: float) -> None:
        """Fold in one completed window and train on the last forecast."""
        if count < 0.0 or not math.isfinite(count):
            return
        count = float(count)
        if self._last_phi is not None:
            # Normalized LMS: step size is scale-free in ||phi||.
            error = count - self._last_pred
            phi = self._last_phi
            self._w += self.lr * error * phi / (1.0 + phi @ phi)
        self._counts.append(count)
        self._ewma.observe(count)
        self._last_phi = self._readout_features()
        self._last_pred = float(self._w @ self._last_phi)

    def _readout_features(self) -> np.ndarray:
        feats = self._features()
        query = feats[-1] @ self._wq
        keys = feats @ self._wk
        values = feats @ self._wv
        scores = keys @ query / math.sqrt(self.d_model)
        scores -= scores.max()
        weights = np.exp(scores)
        weights /= weights.sum()
        context = weights @ values
        last = self._counts[-1]
        return np.concatenate([
            context,
            [math.log1p(last), self._ewma.forecast(), 1.0],
        ])

    def forecast(self) -> float:
        """Predicted arrival count for the next window (clipped at 0)."""
        if not self._counts:
            return 0.0
        return max(0.0, self._last_pred)

    def state_digest(self) -> List[float]:
        """Readout weights as a plain list (for determinism tests)."""
        return [float(v) for v in self._w]
