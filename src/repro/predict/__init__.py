"""Predictive prewarming: per-function arrival forecasting.

The platform's autoscaler is reactive — demand-driven scale-up plus
idle-timeout GC — so every burst pays the cold-start tax before
capacity catches up.  This package adds the forecasting layer ROADMAP
item 2 calls for: per-function arrival forecasters fed from the
``repro.obs.timeseries`` windows (an inter-arrival histogram + EWMA
policy first, then a small numpy-only attention sequence model), and
the prewarm policies/controller that turn forecasts into budget-capped
``prewarm`` actions and hot-chunk prefetches.

Everything here is seeded and deterministic: the attention model's
projections are drawn once from a PCG64 stream derived from the policy
seed, and inference is pure float64 numpy — the same seed produces
bit-identical forecasts across runs.
"""

from repro.predict.forecast import (
    AttentionForecaster,
    EwmaForecaster,
    InterArrivalHistogram,
)
from repro.predict.policy import (
    FixedKeepAlivePolicy,
    HistogramEwmaPolicy,
    LearnedPolicy,
    OraclePolicy,
    PrewarmAction,
    PrewarmConfig,
    PrewarmController,
    ReactivePolicy,
)

__all__ = [
    "AttentionForecaster",
    "EwmaForecaster",
    "InterArrivalHistogram",
    "FixedKeepAlivePolicy",
    "HistogramEwmaPolicy",
    "LearnedPolicy",
    "OraclePolicy",
    "PrewarmAction",
    "PrewarmConfig",
    "PrewarmController",
    "ReactivePolicy",
]
