"""Real-process measurements on the host machine.

Two start techniques, mirroring the paper's comparison with what an
offline Python host can actually do:

* **vanilla** — fork-exec a fresh CPython interpreter that imports its
  function's dependencies before signalling readiness (the standard
  cold start);
* **zygote** — fork a ready-to-serve worker out of a long-lived,
  pre-imported "zygote" process: the closest real prebake analog
  available without a ``criu`` binary (restore-from-warm-state with no
  interpreter boot and no imports). When a real ``criu`` exists,
  :class:`repro.criu.cli.CriuCli` drives genuine dump/restore instead.
"""

from repro.realproc.child import FUNCTION_NAMES
from repro.realproc.runner import VanillaProcessRunner, RealStartupSample
from repro.realproc.zygote import ZygoteRunner
from repro.realproc.timing import compare_startup

__all__ = [
    "FUNCTION_NAMES",
    "VanillaProcessRunner",
    "RealStartupSample",
    "ZygoteRunner",
    "compare_startup",
]
