"""The function server that runs inside real worker processes.

Protocol (line-oriented, over stdin/stdout or a FIFO pair):

* on start, the worker performs its function's initialization (imports
  + APPINIT work), then writes ``READY <monotonic_ns>``;
* each subsequent input line is a request body; the worker replies
  ``OK <service_ns> <result_digest>`` (or ``ERR <message>``);
* ``QUIT`` shuts the worker down.

Run directly: ``python -m repro.realproc.child --function markdown``.
"""

from __future__ import annotations

import argparse
import hashlib
import sys
import time
from typing import Callable, IO, Tuple

FUNCTION_NAMES = ("noop", "markdown", "image-resizer")


def _build_noop() -> Callable[[str], str]:
    def handler(body: str) -> str:
        return "ok"
    return handler


def _build_markdown() -> Callable[[str], str]:
    # Import cost is part of APPINIT, exactly like the paper's function
    # loading its markdown library.
    from repro.functions.markdown import SAMPLE_DOCUMENT
    from repro.functions.markdown_engine import render_document

    def handler(body: str) -> str:
        return render_document(body or SAMPLE_DOCUMENT)
    return handler


def _build_image_resizer() -> Callable[[str], str]:
    # APPINIT: generate + hold the source image (paper: load a 1 MB,
    # 3440x1440 image). A reduced working size keeps per-request cost
    # sane for a pure-Python host while exercising the same code path.
    from repro.functions.imaging.generate import synthetic_photo
    from repro.functions.imaging.resize import scale_to_fraction

    source = synthetic_photo(688, 288)

    def handler(body: str) -> str:
        thumb = scale_to_fraction(source, 0.10)
        return f"{thumb.width}x{thumb.height}"
    return handler


BUILDERS = {
    "noop": _build_noop,
    "markdown": _build_markdown,
    "image-resizer": _build_image_resizer,
}


def build_handler(function: str) -> Callable[[str], str]:
    try:
        builder = BUILDERS[function]
    except KeyError:
        raise SystemExit(f"unknown function {function!r}; known: {sorted(BUILDERS)}")
    return builder()


def serve(function: str, infile: IO[str], outfile: IO[str]) -> int:
    """APPINIT + request loop (the worker main)."""
    handler = build_handler(function)
    return serve_with_handler(handler, infile, outfile)


def serve_with_handler(handler: Callable[[str], str],
                       infile: IO[str], outfile: IO[str]) -> int:
    """Request loop for an already-initialized handler (zygote workers
    start here — their APPINIT happened in the zygote, pre-fork)."""
    outfile.write(f"READY {time.monotonic_ns()}\n")
    outfile.flush()
    for line in infile:
        body = line.rstrip("\n")
        if body == "QUIT":
            break
        started = time.monotonic_ns()
        try:
            result = handler(body)
        except Exception as exc:  # report, don't die
            outfile.write(f"ERR {type(exc).__name__}\n")
            outfile.flush()
            continue
        elapsed = time.monotonic_ns() - started
        digest = hashlib.sha1(result.encode("utf-8", "replace")).hexdigest()[:12]
        outfile.write(f"OK {elapsed} {digest}\n")
        outfile.flush()
    return 0


def parse_ready_line(line: str) -> int:
    """Extract the monotonic timestamp from a READY line."""
    parts = line.split()
    if len(parts) != 2 or parts[0] != "READY":
        raise ValueError(f"malformed READY line: {line!r}")
    return int(parts[1])


def parse_ok_line(line: str) -> Tuple[int, str]:
    """Extract (service_ns, digest) from an OK line."""
    parts = line.split()
    if len(parts) != 3 or parts[0] != "OK":
        raise ValueError(f"malformed OK line: {line!r}")
    return int(parts[1]), parts[2]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="prebaking repro worker")
    parser.add_argument("--function", required=True, choices=sorted(BUILDERS))
    args = parser.parse_args(argv)
    return serve(args.function, sys.stdin, sys.stdout)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
