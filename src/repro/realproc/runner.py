"""Vanilla real-process starter: fork-exec a fresh interpreter."""

from __future__ import annotations

import subprocess
import sys
import time
from dataclasses import dataclass
from typing import List, Optional

from repro.realproc.child import parse_ok_line, parse_ready_line


class RealProcessError(RuntimeError):
    """Worker failed to start or respond."""


@dataclass
class RealStartupSample:
    """One measured real start-up."""

    technique: str
    function: str
    startup_ms: float
    first_service_ms: Optional[float] = None


class VanillaProcessRunner:
    """Measures fork-exec + interpreter boot + imports + APPINIT."""

    technique = "vanilla"

    def __init__(self, python: Optional[str] = None) -> None:
        self.python = python or sys.executable

    def start_once(self, function: str, invoke: bool = True,
                   timeout_s: float = 60.0) -> RealStartupSample:
        """Spawn a worker, wait for READY (and one response), kill it."""
        argv = [self.python, "-m", "repro.realproc.child", "--function", function]
        t0 = time.monotonic_ns()
        proc = subprocess.Popen(
            argv, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, text=True, bufsize=1,
        )
        try:
            ready_line = proc.stdout.readline()
            if not ready_line:
                raise RealProcessError(
                    f"worker for {function!r} exited before READY "
                    f"(rc={proc.poll()})"
                )
            parse_ready_line(ready_line)  # validates the protocol
            startup_ms = (time.monotonic_ns() - t0) / 1e6
            first_service_ms = None
            if invoke:
                proc.stdin.write("\n")
                proc.stdin.flush()
                reply = proc.stdout.readline()
                service_ns, _digest = parse_ok_line(reply)
                first_service_ms = service_ns / 1e6
            proc.stdin.write("QUIT\n")
            proc.stdin.flush()
            proc.wait(timeout=timeout_s)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        return RealStartupSample(
            technique=self.technique,
            function=function,
            startup_ms=startup_ms,
            first_service_ms=first_service_ms,
        )

    def measure(self, function: str, repetitions: int = 20,
                invoke: bool = True) -> List[RealStartupSample]:
        return [self.start_once(function, invoke=invoke)
                for _ in range(repetitions)]
