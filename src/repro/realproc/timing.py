"""Compare real start-up techniques on this host (benchmark A2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.bench.stats import bootstrap_median_ci, median
from repro.realproc.runner import VanillaProcessRunner
from repro.realproc.zygote import ZygoteRunner


@dataclass
class StartupComparison:
    """Median start-up per technique for one function (real host)."""

    function: str
    vanilla_ms: List[float]
    zygote_ms: List[float]

    @property
    def vanilla_median(self) -> float:
        return median(self.vanilla_ms)

    @property
    def zygote_median(self) -> float:
        return median(self.zygote_ms)

    @property
    def improvement_pct(self) -> float:
        return 100.0 * (1 - self.zygote_median / self.vanilla_median)

    @property
    def speedup_pct(self) -> float:
        """vanilla/zygote ratio, the paper's Figure 6 convention."""
        return 100.0 * self.vanilla_median / self.zygote_median

    def render(self) -> str:
        vci = bootstrap_median_ci(self.vanilla_ms)
        zci = bootstrap_median_ci(self.zygote_ms)
        return (
            f"{self.function}: vanilla {self.vanilla_median:.1f}ms "
            f"({vci.low:.1f};{vci.high:.1f})  zygote {self.zygote_median:.1f}ms "
            f"({zci.low:.1f};{zci.high:.1f})  improvement {self.improvement_pct:.0f}%"
        )


def compare_startup(function: str, repetitions: int = 15,
                    invoke: bool = True) -> StartupComparison:
    """Measure vanilla vs zygote start-up for ``function`` on this host."""
    vanilla_samples = VanillaProcessRunner().measure(
        function, repetitions=repetitions, invoke=invoke
    )
    with ZygoteRunner(function) as zygote:
        zygote_samples = zygote.measure(repetitions=repetitions, invoke=invoke)
    return StartupComparison(
        function=function,
        vanilla_ms=[s.startup_ms for s in vanilla_samples],
        zygote_ms=[s.startup_ms for s in zygote_samples],
    )
