"""Zygote fork-server: the real-machine prebake analog.

A long-lived "zygote" process boots the interpreter, imports the
function's dependencies and runs its APPINIT *once*; every replica is
then ``fork()``-ed out of that warm state and is ready immediately —
the same state-reuse idea as restoring a CRIU snapshot, realizable in
pure Python. (Android starts apps this way for the same reason.)

Benchmark side: :class:`ZygoteRunner` talks to the zygote over stdio
and to each forked worker over a per-spawn FIFO pair.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time
import uuid
from typing import List, Optional

from repro.realproc.child import parse_ok_line, parse_ready_line
from repro.realproc.runner import RealProcessError, RealStartupSample


def zygote_main(argv=None) -> int:
    """Entry point of the zygote master process."""
    import argparse

    from repro.realproc.child import build_handler, serve_with_handler

    parser = argparse.ArgumentParser(description="prebaking repro zygote")
    parser.add_argument("--function", required=True)
    args = parser.parse_args(argv)
    handler = build_handler(args.function)   # warm state lives here
    sys.stdout.write("ZREADY\n")
    sys.stdout.flush()
    for line in sys.stdin:
        parts = line.split()
        if not parts:
            continue
        if parts[0] == "QUIT":
            break
        if parts[0] == "SPAWN" and len(parts) == 3:
            in_fifo, out_fifo = parts[1], parts[2]
            pid = os.fork()
            if pid == 0:
                # Worker: serve over the FIFO pair, then exit hard
                # (never fall back into the zygote loop).
                status = 1
                try:
                    with open(out_fifo, "w") as out, open(in_fifo, "r") as inp:
                        status = serve_with_handler(handler, inp, out)
                finally:
                    os._exit(status)
            # Master: reap any finished workers without blocking.
            try:
                while os.waitpid(-1, os.WNOHANG) != (0, 0):
                    pass
            except ChildProcessError:
                pass
            sys.stdout.write(f"FORKED {pid}\n")
            sys.stdout.flush()
    return 0


class ZygoteRunner:
    """Measures fork-from-warm-zygote start-ups."""

    technique = "zygote"

    def __init__(self, function: str, python: Optional[str] = None,
                 timeout_s: float = 60.0) -> None:
        if not hasattr(os, "fork"):
            raise RealProcessError("zygote runner requires a POSIX host")
        self.function = function
        self.timeout_s = timeout_s
        self._tmpdir = tempfile.mkdtemp(prefix="repro-zygote-")
        self.proc = subprocess.Popen(
            [python or sys.executable, "-c",
             "from repro.realproc.zygote import zygote_main; "
             f"raise SystemExit(zygote_main(['--function', '{function}']))"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, text=True, bufsize=1,
        )
        banner = self.proc.stdout.readline()
        if banner.strip() != "ZREADY":
            raise RealProcessError(
                f"zygote for {function!r} failed to start: {banner!r}"
            )

    def start_once(self, invoke: bool = True) -> RealStartupSample:
        """Fork one worker, wait for READY (and one response)."""
        token = uuid.uuid4().hex[:10]
        in_fifo = os.path.join(self._tmpdir, f"in-{token}")
        out_fifo = os.path.join(self._tmpdir, f"out-{token}")
        os.mkfifo(in_fifo)
        os.mkfifo(out_fifo)
        try:
            t0 = time.monotonic_ns()
            self.proc.stdin.write(f"SPAWN {in_fifo} {out_fifo}\n")
            self.proc.stdin.flush()
            # Open order mirrors the worker: it opens out for write
            # first, we open out for read first.
            with open(out_fifo, "r") as out:
                with open(in_fifo, "w") as inp:
                    ready_line = out.readline()
                    if not ready_line:
                        raise RealProcessError("zygote worker died before READY")
                    parse_ready_line(ready_line)
                    startup_ms = (time.monotonic_ns() - t0) / 1e6
                    first_service_ms = None
                    if invoke:
                        inp.write("\n")
                        inp.flush()
                        service_ns, _digest = parse_ok_line(out.readline())
                        first_service_ms = service_ns / 1e6
                    inp.write("QUIT\n")
                    inp.flush()
        finally:
            for path in (in_fifo, out_fifo):
                try:
                    os.unlink(path)
                except OSError:
                    pass
        return RealStartupSample(
            technique=self.technique,
            function=self.function,
            startup_ms=startup_ms,
            first_service_ms=first_service_ms,
        )

    def measure(self, repetitions: int = 20, invoke: bool = True) -> List[RealStartupSample]:
        return [self.start_once(invoke=invoke) for _ in range(repetitions)]

    def close(self) -> None:
        if self.proc.poll() is None:
            try:
                self.proc.stdin.write("QUIT\n")
                self.proc.stdin.flush()
                self.proc.wait(timeout=5)
            except Exception:
                self.proc.kill()
                self.proc.wait()

    def __enter__(self) -> "ZygoteRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
