"""Managed runtime environments hosted inside simulated processes.

The paper's measurements are dominated by what happens *inside* the
runtime: the JVM's native bootstrap (RTS phase), application
initialization (APPINIT), and lazy class loading + JIT compilation on
the first request. :class:`~repro.runtime.jvm.JVMRuntime` models those
mechanisms; :mod:`repro.runtime.classes` generates the synthetic
class sets of §4.2.2; CPython/Node.js models cover the runtimes the
paper names as future work (§7).
"""

from repro.runtime.base import ManagedRuntime, Request, Response, RuntimeError_
from repro.runtime.classes import SyntheticClass, generate_classes
from repro.runtime.jvm import JVMConfig, JVMRuntime
from repro.runtime.python_rt import CPythonRuntime
from repro.runtime.nodejs import NodeJSRuntime

__all__ = [
    "ManagedRuntime",
    "Request",
    "Response",
    "RuntimeError_",
    "SyntheticClass",
    "generate_classes",
    "JVMConfig",
    "JVMRuntime",
    "CPythonRuntime",
    "NodeJSRuntime",
]

RUNTIME_KINDS = {
    "jvm": JVMRuntime,
    "python": CPythonRuntime,
    "nodejs": NodeJSRuntime,
}
