"""Synthetic class generation (paper §4.2.2).

The paper's sensitivity analysis uses "synthetically generated
functions, which vary in the code size": small = 374 classes / 2.8 MiB,
medium = 574 / 9.2 MiB, big = 1574 / 41 MiB. It notes that "the loaded
classes have different sizes, and that is the reason for the growth in
the number of classes does not match the size linearly" — so the
generator draws heterogeneous per-class sizes that sum exactly to the
requested total.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class SyntheticClass:
    """One generated class: a name and its classfile size."""

    name: str
    size_kib: float

    def __post_init__(self) -> None:
        if self.size_kib <= 0:
            raise ValueError(f"class size must be positive, got {self.size_kib}")


def generate_classes(count: int, total_kib: float, seed: int = 7) -> List[SyntheticClass]:
    """Generate ``count`` classes whose sizes sum to ``total_kib``.

    Sizes follow a log-normal draw re-normalized to the exact total, so
    the set is heterogeneous (as the paper describes) yet deterministic
    for a given seed and always sums to ``total_kib`` to within float
    rounding.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if total_kib <= 0:
        raise ValueError(f"total_kib must be positive, got {total_kib}")
    rng = random.Random(seed)
    raw = [rng.lognormvariate(0.0, 0.6) for _ in range(count)]
    scale = total_kib / sum(raw)
    return [
        SyntheticClass(name=f"com.synthetic.Class{i:05d}", size_kib=w * scale)
        for i, w in enumerate(raw)
    ]


def total_size_kib(classes: List[SyntheticClass]) -> float:
    """Sum of classfile sizes for a generated set."""
    return sum(c.size_kib for c in classes)
