"""JVM runtime model: native bootstrap, classloader, metaspace, JIT.

This is where the paper's central mechanism lives. A vanilla-started
JVM pays:

* ``RTS`` ≈ 70 ms of native bootstrap before ``main()`` (Figure 4);
* lazy class loading + JIT compilation on the first invocation, costing
  a per-class linking fee plus a per-byte parse/compile fee *and* a
  per-byte I/O fee for reading cold classfile pages.

A process restored from a snapshot skips RTS entirely, and — because
CRIU restores file-backed mappings, leaving the application jar's pages
warm in the page cache — pays no I/O fee when an unwarmed snapshot
lazily loads classes later. A *warmed* snapshot already contains the
loaded classes and JIT-compiled code, so it pays nothing at all. The
three techniques of Table 1 fall out of these mechanics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, TYPE_CHECKING

from repro.osproc.kernel import Kernel
from repro.osproc.memory import PAGE_SIZE, VMAKind
from repro.osproc.process import Process
from repro.runtime.base import ManagedRuntime, Request, RuntimeError_
from repro.runtime.classes import SyntheticClass

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.functions.base import FunctionApp


@dataclass(frozen=True)
class JVMConfig:
    """Static layout of a freshly booted JVM."""

    base_rss_mib: float = 13.0        # matches the paper's NOOP snapshot size
    text_mib: float = 4.0             # libjvm.so resident text
    heap_initial_mib: float = 6.0
    metaspace_initial_mib: float = 2.5
    code_cache_initial_mib: float = 0.5
    # JIT output per compiled class, folded into warm-snapshot growth.
    code_cache_per_class_kib: float = 0.0


@dataclass
class LoadedClass:
    """Classloader metadata for one loaded class."""

    cls: SyntheticClass
    compiled: bool = False


class ClassLoader:
    """Lazy application classloader with metaspace accounting."""

    def __init__(self, runtime: "JVMRuntime") -> None:
        self.runtime = runtime
        self.loaded: Dict[str, LoadedClass] = {}

    def load_all(self, classes: List[SyntheticClass], jar_path: str) -> float:
        """Load (and JIT) every not-yet-loaded class; return the cost in ms.

        The per-byte cost splits into a parse/compile component that is
        always paid and an I/O component scaled by how cold the jar's
        pages are — warm page cache (e.g. right after a CRIU restore of
        the jar mapping) skips it.
        """
        kernel = self.runtime.kernel
        costs = kernel.costs
        jar = kernel.fs.lookup(jar_path)
        warmth = kernel.page_cache.warmth(jar)
        parse_per_kib = costs.restored_load_per_kib_ms
        io_per_kib = max(0.0, costs.cold_load_per_kib_ms - parse_per_kib)
        total_ms = 0.0
        total_kib = 0.0
        for cls in classes:
            if cls.name in self.loaded:
                continue
            total_ms += costs.cold_load_per_class_ms
            total_ms += cls.size_kib * (parse_per_kib + io_per_kib * (1.0 - warmth))
            total_kib += cls.size_kib
            self.loaded[cls.name] = LoadedClass(cls=cls, compiled=True)
        if total_kib:
            # Reading the classfiles pulls the jar's pages into the cache
            # and the class metadata + JIT output into the metaspace.
            kernel.page_cache.warm(jar, fraction=1.0)
            self.runtime.grow_metaspace(total_kib / 1024.0)
        if total_ms:
            jittered = costs.jitter(
                total_ms, kernel.streams, "jvm.classload"
            )
            kernel.clock.advance(jittered)
            kernel.probes.syscall_enter(
                "runtime.classload", self.runtime.process.pid,
                kernel.clock.now, detail=f"{len(classes)} classes",
            )
            return jittered
        return 0.0

    @property
    def loaded_count(self) -> int:
        return len(self.loaded)

    def all_loaded(self, classes: List[SyntheticClass]) -> bool:
        return all(c.name in self.loaded for c in classes)


class JVMRuntime(ManagedRuntime):
    """The Oracle-1.8-style JVM the paper benchmarked."""

    kind = "jvm"

    def __init__(self, kernel: Kernel, process: Process,
                 config: JVMConfig = JVMConfig()) -> None:
        super().__init__(kernel, process)
        self.config = config
        self.rts_ms = kernel.costs.jvm_rts_ms
        self.classloader = ClassLoader(self)
        self._metaspace_vma = None
        self._heap_vma = None
        self.jar_path: str = ""

    # -- memory layout ----------------------------------------------------------

    def _map_base_memory(self) -> None:
        space = self.process.address_space
        fs = self.kernel.fs
        libjvm = fs.ensure("/opt/jvm/lib/libjvm.so", size=16 * 1024 * 1024)
        text = space.mmap(
            length=int(self.config.text_mib * 1024 * 1024),
            kind=VMAKind.CODE, prot="r-x",
            file_path=libjvm.path, label="libjvm-text",
        )
        text.touch_range(0, text.page_count, content_tag="libjvm")
        self._heap_vma = space.mmap(
            length=int(self.config.heap_initial_mib * 4 * 1024 * 1024),
            kind=VMAKind.ANON, label="java-heap",
        )
        self._heap_vma.touch_range(
            0, int(self.config.heap_initial_mib * 1024 * 1024) // PAGE_SIZE,
            content_tag="heap",
        )
        self._metaspace_vma = space.mmap(
            length=int(max(self.config.metaspace_initial_mib, 1) * 64 * 1024 * 1024),
            kind=VMAKind.METASPACE, label="metaspace",
        )
        self._metaspace_vma.touch_range(
            0, int(self.config.metaspace_initial_mib * 1024 * 1024) // PAGE_SIZE,
            content_tag="metaspace",
        )
        code_cache = space.mmap(
            length=int(8 * 1024 * 1024),
            kind=VMAKind.CODE, label="jit-code-cache",
        )
        code_cache.touch_range(
            0, int(self.config.code_cache_initial_mib * 1024 * 1024) // PAGE_SIZE,
            content_tag="jit",
        )

    def grow_heap(self, mib: float) -> None:
        """Fault in ``mib`` more MiB of heap pages."""
        if mib <= 0:
            return
        vma = self._heap_vma
        pages = int(round(mib * 1024 * 1024 / PAGE_SIZE))
        first_free = vma.resident_pages
        available = vma.page_count - first_free
        if pages > available:
            # Heap expansion past the reserved arena: map another segment.
            self.process.address_space.grow_anon(
                f"java-heap-ext-{len(self.process.address_space.vmas)}",
                (pages - available) * PAGE_SIZE / (1024 * 1024),
                content_tag="heap",
            )
            pages = available
        vma.touch_range(first_free, pages, content_tag="heap")

    def grow_metaspace(self, mib: float) -> None:
        """Fault in ``mib`` more MiB of class-metadata pages."""
        if mib <= 0:
            return
        vma = self._metaspace_vma
        pages = int(round(mib * 1024 * 1024 / PAGE_SIZE))
        first_free = vma.resident_pages
        pages = min(pages, vma.page_count - first_free)
        vma.touch_range(first_free, pages, content_tag="metaspace")

    def grow_rss_to(self, target_mib: float) -> None:
        """Grow the heap until total RSS reaches ``target_mib``."""
        delta = target_mib - self.process.rss_mib
        if delta > 0:
            self.grow_heap(delta)

    # -- application loading --------------------------------------------------------

    def _app_init(self, app: "FunctionApp") -> None:
        kernel = self.kernel
        profile = app.profile
        # Map the application jar; header pages become resident, the
        # rest are read lazily as classes load.
        self.jar_path = app.ensure_artifacts(kernel)
        jar = kernel.fs.lookup(self.jar_path)
        self.process.open_fd(jar, flags="r")
        jar_vma = self.process.address_space.mmap(
            length=max(PAGE_SIZE, -(-jar.size // PAGE_SIZE) * PAGE_SIZE),
            kind=VMAKind.FILE, prot="r--",
            file_path=jar.path, label="app-jar",
        )
        jar_vma.touch_range(0, min(2, jar_vma.page_count), content_tag="jar-header")
        # HTTP listening socket, as in the paper's function template.
        sock = kernel.fs.ensure(f"socket:[{self.process.pid}]", size=0)
        sock.is_socket = True
        self.process.open_fd(sock, flags="rw")
        # Application-specific initialization work (e.g. the Image
        # Resizer reading its 1 MiB source image).
        app.init(self)
        duration = kernel.costs.jitter(
            profile.appinit_vanilla_ms, kernel.streams, "jvm.appinit"
        )
        kernel.clock.advance(duration)
        # APPINIT leaves the process at its ready-state footprint.
        self.grow_rss_to(profile.snapshot_ready_mib)

    # -- request path ------------------------------------------------------------------

    def _before_request(self, request: Request) -> None:
        app = self.app
        if app is None:
            raise RuntimeError_("no application loaded")
        if app.classes and not self.classloader.all_loaded(app.classes):
            self.classloader.load_all(app.classes, self.jar_path)
        if self.requests_served == 0:
            # First invocation JIT-compiles the handler path; the code
            # lands in the code cache / heap, growing RSS to the warm
            # footprint the paper measured for its snapshots.
            self.grow_rss_to(app.profile.snapshot_warm_mib)

    # -- checkpoint state ----------------------------------------------------------------

    def _extra_state(self):
        return {
            "jar_path": self.jar_path,
            "loaded_class_names": sorted(self.classloader.loaded),
        }

    def _apply_extra_state(self, extra) -> None:
        self.jar_path = extra.get("jar_path", "")
        space = self.process.address_space
        self._heap_vma = space.find_by_label("java-heap")
        self._metaspace_vma = space.find_by_label("metaspace")
        loaded_names = set(extra.get("loaded_class_names", ()))
        if self.app is not None and loaded_names:
            for cls in self.app.classes:
                if cls.name in loaded_names:
                    self.classloader.loaded[cls.name] = LoadedClass(cls=cls, compiled=True)

    # -- introspection ------------------------------------------------------------------

    @property
    def loaded_classes(self) -> int:
        return self.classloader.loaded_count
