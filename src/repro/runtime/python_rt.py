"""CPython runtime model (paper §7 future work).

The paper only measures the JVM and names CPython as a runtime to
evaluate next. This model reuses the same mechanics with
interpreter-appropriate parameters: a much cheaper native bootstrap, a
module-import cost structure instead of classloading/JIT, and a smaller
base footprint. The constants are engineering estimates, *not* fits to
published numbers — they exist so the prebaking pipeline, benchmarks
and ablations can exercise a second runtime end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.osproc.kernel import Kernel
from repro.osproc.memory import PAGE_SIZE, VMAKind
from repro.osproc.process import Process
from repro.runtime.base import ManagedRuntime, Request, RuntimeError_

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.functions.base import FunctionApp


@dataclass(frozen=True)
class CPythonConfig:
    """Tunables for the CPython runtime model (projection constants)."""

    base_rss_mib: float = 7.0
    rts_ms: float = 22.0                  # interpreter boot to first bytecode
    import_per_module_ms: float = 0.35    # find + compile + exec a module
    import_per_kib_ms: float = 0.012      # source read/parse per KiB
    import_io_per_kib_ms: float = 0.004   # extra when source pages are cold


class CPythonRuntime(ManagedRuntime):
    """A CPython interpreter hosting a function behind an HTTP server."""

    kind = "python"

    def __init__(self, kernel: Kernel, process: Process,
                 config: CPythonConfig = CPythonConfig()) -> None:
        super().__init__(kernel, process)
        self.config = config
        self.rts_ms = config.rts_ms
        self.imported_modules = 0
        self.source_path = ""

    def _map_base_memory(self) -> None:
        space = self.process.address_space
        libpython = self.kernel.fs.ensure("/usr/lib/libpython3.so", size=6 * 1024 * 1024)
        text = space.mmap(length=3 * 1024 * 1024, kind=VMAKind.CODE, prot="r-x",
                          file_path=libpython.path, label="libpython-text")
        text.touch_range(0, text.page_count, content_tag="libpython")
        space.grow_anon("py-objects", self.config.base_rss_mib - 3.0,
                        content_tag="pyobjects")

    def _app_init(self, app: "FunctionApp") -> None:
        kernel = self.kernel
        self.source_path = app.ensure_artifacts(kernel)
        source = kernel.fs.lookup(self.source_path)
        self.process.open_fd(source, flags="r")
        sock = kernel.fs.ensure(f"socket:[{self.process.pid}]", size=0)
        sock.is_socket = True
        self.process.open_fd(sock, flags="rw")
        app.init(self)
        duration = kernel.costs.jitter(
            app.profile.appinit_vanilla_ms, kernel.streams, "python.appinit"
        )
        kernel.clock.advance(duration)
        self._grow_rss_to(app.profile.snapshot_ready_mib)

    def _grow_rss_to(self, target_mib: float) -> None:
        delta = target_mib - self.process.rss_mib
        if delta > 0:
            self.process.address_space.grow_anon(
                f"py-heap-{len(self.process.address_space.vmas)}", delta,
                content_tag="pyobjects",
            )

    def _before_request(self, request: Request) -> None:
        app = self.app
        if app is None:
            raise RuntimeError_("no application loaded")
        if app.classes and self.imported_modules < len(app.classes):
            source = self.kernel.fs.lookup(self.source_path)
            warmth = self.kernel.page_cache.warmth(source)
            cfg = self.config
            cost = 0.0
            for mod in app.classes[self.imported_modules:]:
                cost += cfg.import_per_module_ms
                cost += mod.size_kib * (
                    cfg.import_per_kib_ms + cfg.import_io_per_kib_ms * (1.0 - warmth)
                )
            self.kernel.clock.advance(
                self.kernel.costs.jitter(cost, self.kernel.streams, "python.import")
            )
            self.kernel.page_cache.warm(source, fraction=1.0)
            self.imported_modules = len(app.classes)
        if self.requests_served == 0:
            self._grow_rss_to(app.profile.snapshot_warm_mib)

    # -- checkpoint state ---------------------------------------------------------

    def _extra_state(self):
        return {"source_path": self.source_path,
                "imported_modules": self.imported_modules}

    def _apply_extra_state(self, extra) -> None:
        self.source_path = extra.get("source_path", "")
        self.imported_modules = extra.get("imported_modules", 0)
