"""Abstract managed runtime and the request/response protocol.

A runtime lives inside exactly one simulated process. Its lifecycle
matches the paper's start-up phase decomposition (§4.2.1):

* :meth:`boot` — the RTS phase (native runtime bootstrap, from the end
  of ``execve`` to the first line of ``main()``);
* :meth:`load_application` — the APPINIT phase (everything until the
  embedded HTTP server can take the first request);
* :meth:`handle` — per-request service, including the lazy class
  loading / JIT compilation a first invocation can trigger.

Lifecycle boundaries are published through the kernel probe registry so
benchmark tracers measure phase durations the way the paper did.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, TYPE_CHECKING

from repro.obs.context import TraceContext
from repro.obs.profile import (
    PHASE_APPINIT,
    PHASE_RTS,
    RESTORE_LAZY_FAULT,
)
from repro.osproc.kernel import Kernel
from repro.osproc.process import Process, ProcessState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.functions.base import FunctionApp


class RuntimeError_(Exception):
    """Runtime lifecycle violation (bad phase ordering, dead process)."""


_request_ids = itertools.count(1)


@dataclass
class Request:
    """An invocation arriving at a function replica."""

    body: Any = None
    path: str = "/"
    method: str = "POST"
    request_id: int = field(default_factory=lambda: next(_request_ids))
    arrival_ms: float = 0.0
    # Causal trace handle, stamped where the request enters the system
    # (gateway or router) and carried to every span it causes. None in
    # unobserved worlds and for requests injected below the router.
    trace: Optional[TraceContext] = None


@dataclass
class Response:
    """The replica's reply, stamped with virtual service timing."""

    status: int
    body: Any = None
    request_id: int = 0
    started_ms: float = 0.0
    finished_ms: float = 0.0

    @property
    def service_ms(self) -> float:
        return self.finished_ms - self.started_ms

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class ManagedRuntime:
    """Base class for all runtime models."""

    kind = "abstract"
    rts_ms = 0.0  # native bootstrap duration before main()

    def __init__(self, kernel: Kernel, process: Process) -> None:
        self.kernel = kernel
        self.process = process
        self.app: Optional["FunctionApp"] = None
        self.booted = False
        self.ready = False
        self.requests_served = 0
        process.payload["runtime"] = self

    # -- lifecycle ------------------------------------------------------------

    def _require_alive(self) -> None:
        if self.process.state is not ProcessState.RUNNING:
            raise RuntimeError_(
                f"pid {self.process.pid} is {self.process.state.value}, not running"
            )

    def boot(self) -> None:
        """Run the RTS phase (idempotence is an error: boot once)."""
        self._require_alive()
        if self.booted:
            raise RuntimeError_("runtime already booted")
        profiler = self.kernel.profile
        boot_start = self.kernel.clock.now if profiler is not None else 0.0
        duration = self.kernel.costs.jitter(
            self.rts_ms, self.kernel.streams, f"{self.kind}.rts"
        )
        self.kernel.clock.advance(duration)
        self._map_base_memory()
        if profiler is not None:
            # Clock delta, not the jitter draw: RTS is everything from
            # execve return to main() entry, however it was charged.
            profiler.record(PHASE_RTS, self.kernel.clock.now - boot_start,
                            pid=self.process.pid, runtime=self.kind)
        self.booted = True
        # The paper logged "before the runtime starts executing the
        # first line of code" — i.e. main() entry ends the RTS phase.
        self.kernel.probes.syscall_enter(
            "runtime.main", self.process.pid, self.kernel.clock.now, detail=self.kind
        )

    def load_application(self, app: "FunctionApp") -> None:
        """Run the APPINIT phase and mark the runtime ready."""
        self._require_alive()
        if not self.booted:
            raise RuntimeError_("boot() must run before load_application()")
        if self.ready:
            raise RuntimeError_("application already loaded")
        profiler = self.kernel.profile
        init_start = self.kernel.clock.now if profiler is not None else 0.0
        self.app = app
        self._app_init(app)
        if profiler is not None:
            profiler.record(PHASE_APPINIT, self.kernel.clock.now - init_start,
                            pid=self.process.pid, function=app.name)
        self.ready = True
        self.kernel.probes.syscall_enter(
            "runtime.ready", self.process.pid, self.kernel.clock.now, detail=app.name
        )

    def handle(self, request: Request) -> Response:
        """Serve one request, charging lazy-load + service costs."""
        self._require_alive()
        if not self.ready or self.app is None:
            raise RuntimeError_("runtime is not ready to serve requests")
        started = self.kernel.clock.now
        # A lazily-restored process faults its remaining pages in on
        # first touch; the deferred mapping cost lands on this request.
        debt = self.process.payload.pop("lazy_restore_debt_ms", 0.0)
        if debt:
            charged = self.kernel.costs.jitter(
                debt, self.kernel.streams, "criu.lazy-pages")
            self.kernel.clock.advance(charged)
            if self.kernel.profile is not None:
                self.kernel.profile.record(
                    RESTORE_LAZY_FAULT, charged, pid=self.process.pid,
                    source="lazy-debt")
        self._before_request(request)
        body, status = self.app.execute(self, request)
        duration = self.kernel.streams.lognormal_jitter(
            f"{self.kind}.service", self.app.profile.service_ms,
            self.app.profile.service_sigma,
        )
        self.kernel.clock.advance(duration)
        self.requests_served += 1
        if self.requests_served == 1:
            self.kernel.probes.syscall_enter(
                "runtime.first_response", self.process.pid, self.kernel.clock.now
            )
        if self.process.payload.pop("ws_capture_pending", None):
            # A working-set capture was armed on this restored replica
            # (see repro.criu.workingset); warm snapshots resume with
            # requests_served > 0, so this fires on the first
            # *post-restore* response rather than the first ever.
            self.kernel.probes.syscall_enter(
                "runtime.post_restore_response", self.process.pid,
                self.kernel.clock.now,
            )
        return Response(
            status=status,
            body=body,
            request_id=request.request_id,
            started_ms=started,
            finished_ms=self.kernel.clock.now,
        )

    # -- restore support --------------------------------------------------------

    def mark_restored(self) -> None:
        """Called by the restore engine on the resurrected runtime.

        A restored runtime never replays boot/app-init: it resumes with
        whatever ``booted``/``ready``/class state the snapshot carried.
        """
        if self.ready:
            self.kernel.probes.syscall_enter(
                "runtime.ready", self.process.pid, self.kernel.clock.now,
                detail=f"{self.app.name if self.app else ''}:restored",
            )

    # -- checkpoint state protocol ---------------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """Serialize the runtime's logical state into a checkpoint image.

        The memory model stores page *structure*; this carries the
        semantic state those pages would hold in a real dump (loaded
        classes, JIT state, the application object).
        """
        return {
            "kind": self.kind,
            "booted": self.booted,
            "ready": self.ready,
            "requests_served": self.requests_served,
            "app": copy.deepcopy(self.app),
            "extra": self._extra_state(),
        }

    @classmethod
    def from_snapshot_state(
        cls, kernel: Kernel, process: Process, state: Dict[str, Any]
    ) -> "ManagedRuntime":
        """Rebuild a runtime inside ``process`` from snapshotted state."""
        runtime = cls(kernel, process)
        runtime.booted = state["booted"]
        runtime.ready = state["ready"]
        runtime.requests_served = state["requests_served"]
        runtime.app = copy.deepcopy(state["app"])
        runtime._apply_extra_state(state.get("extra", {}))
        return runtime

    def _extra_state(self) -> Dict[str, Any]:
        """Runtime-specific state to include in snapshots."""
        return {}

    def _apply_extra_state(self, extra: Dict[str, Any]) -> None:
        """Re-apply runtime-specific snapshot state after restore."""

    # -- hooks ------------------------------------------------------------------

    def _map_base_memory(self) -> None:
        raise NotImplementedError

    def _app_init(self, app: "FunctionApp") -> None:
        raise NotImplementedError

    def _before_request(self, request: Request) -> None:
        """Lazy work a request can trigger (class loading, JIT)."""
