"""Node.js (V8) runtime model (paper §7 future work).

Like :mod:`repro.runtime.python_rt`, this is a projection: the paper
does not measure Node.js, but lists it as the next runtime to evaluate.
V8 sits between CPython and the JVM — moderate native bootstrap, lazy
parsing plus baseline-JIT of required modules.  Constants are estimates
so multi-runtime experiments can run; they are not paper fits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.osproc.kernel import Kernel
from repro.osproc.memory import VMAKind
from repro.osproc.process import Process
from repro.runtime.base import ManagedRuntime, Request, RuntimeError_

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.functions.base import FunctionApp


@dataclass(frozen=True)
class NodeJSConfig:
    """Tunables for the Node.js runtime model (projection constants)."""

    base_rss_mib: float = 10.0
    rts_ms: float = 45.0                 # V8 init + node bootstrap to main script
    require_per_module_ms: float = 0.28
    require_per_kib_ms: float = 0.018    # parse + baseline compile per KiB
    require_io_per_kib_ms: float = 0.006


class NodeJSRuntime(ManagedRuntime):
    """A Node.js process hosting a function behind an HTTP server."""

    kind = "nodejs"

    def __init__(self, kernel: Kernel, process: Process,
                 config: NodeJSConfig = NodeJSConfig()) -> None:
        super().__init__(kernel, process)
        self.config = config
        self.rts_ms = config.rts_ms
        self.required_modules = 0
        self.bundle_path = ""

    def _map_base_memory(self) -> None:
        space = self.process.address_space
        libnode = self.kernel.fs.ensure("/usr/lib/libnode.so", size=40 * 1024 * 1024)
        text = space.mmap(length=5 * 1024 * 1024, kind=VMAKind.CODE, prot="r-x",
                          file_path=libnode.path, label="libnode-text")
        text.touch_range(0, text.page_count, content_tag="libnode")
        space.grow_anon("v8-heap", self.config.base_rss_mib - 5.0, content_tag="v8heap")

    def _app_init(self, app: "FunctionApp") -> None:
        kernel = self.kernel
        self.bundle_path = app.ensure_artifacts(kernel)
        bundle = kernel.fs.lookup(self.bundle_path)
        self.process.open_fd(bundle, flags="r")
        sock = kernel.fs.ensure(f"socket:[{self.process.pid}]", size=0)
        sock.is_socket = True
        self.process.open_fd(sock, flags="rw")
        app.init(self)
        duration = kernel.costs.jitter(
            app.profile.appinit_vanilla_ms, kernel.streams, "nodejs.appinit"
        )
        kernel.clock.advance(duration)
        self._grow_rss_to(app.profile.snapshot_ready_mib)

    def _grow_rss_to(self, target_mib: float) -> None:
        delta = target_mib - self.process.rss_mib
        if delta > 0:
            self.process.address_space.grow_anon(
                f"v8-heap-{len(self.process.address_space.vmas)}", delta,
                content_tag="v8heap",
            )

    def _before_request(self, request: Request) -> None:
        app = self.app
        if app is None:
            raise RuntimeError_("no application loaded")
        if app.classes and self.required_modules < len(app.classes):
            bundle = self.kernel.fs.lookup(self.bundle_path)
            warmth = self.kernel.page_cache.warmth(bundle)
            cfg = self.config
            cost = 0.0
            for mod in app.classes[self.required_modules:]:
                cost += cfg.require_per_module_ms
                cost += mod.size_kib * (
                    cfg.require_per_kib_ms + cfg.require_io_per_kib_ms * (1.0 - warmth)
                )
            self.kernel.clock.advance(
                self.kernel.costs.jitter(cost, self.kernel.streams, "nodejs.require")
            )
            self.kernel.page_cache.warm(bundle, fraction=1.0)
            self.required_modules = len(app.classes)
        if self.requests_served == 0:
            self._grow_rss_to(app.profile.snapshot_warm_mib)

    # -- checkpoint state ---------------------------------------------------------

    def _extra_state(self):
        return {"bundle_path": self.bundle_path,
                "required_modules": self.required_modules}

    def _apply_extra_state(self, extra) -> None:
        self.bundle_path = extra.get("bundle_path", "")
        self.required_modules = extra.get("required_modules", 0)
