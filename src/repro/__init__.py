"""repro — reproduction of "Prebaking Functions to Warm the Serverless
Cold Start" (Silva, Fireman & Pereira, Middleware '20).

The package builds the paper's whole stack from scratch:

* :mod:`repro.sim` — deterministic discrete-event substrate with a
  cost model calibrated to the paper's reported numbers;
* :mod:`repro.osproc` — the simulated Linux (processes, VMAs, pagemap,
  freezer, ptrace) CRIU manipulates;
* :mod:`repro.runtime` — JVM / CPython / Node.js runtime models;
* :mod:`repro.criu` — the checkpoint/restore engine (and a driver for
  a real ``criu`` binary when present);
* :mod:`repro.core` — **prebaking**: snapshot policies, store, bake
  pipeline, and the vanilla/prebake replica starters;
* :mod:`repro.functions` — the NOOP / Markdown / Image Resizer /
  synthetic workloads (with real markdown and imaging engines);
* :mod:`repro.faas` — a SPEC-RG-style FaaS platform plus the OpenFaaS
  integration of the paper's §5;
* :mod:`repro.bench` — the experiment harness, statistics and
  paper-figure reproductions;
* :mod:`repro.realproc` — real-process measurements on the host.

Quickstart::

    from repro import PrebakeManager, make_world
    from repro.core.policy import AfterWarmup
    from repro.functions import make_app

    world = make_world(seed=42)
    manager = PrebakeManager(world.kernel)
    app = make_app("markdown")
    manager.deploy(app, policy=AfterWarmup(requests=1))
    replica = manager.start_replica(app, technique="prebake",
                                    policy=AfterWarmup(requests=1))
    print(replica.startup_ms("ready"), "ms to ready")
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.manager import PrebakeManager
from repro.osproc.kernel import Kernel
from repro.sim.clock import SimClock
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sim.rng import RandomStreams

__version__ = "1.0.0"


@dataclass
class World:
    """One simulated experiment world: a kernel plus its clock and RNG."""

    kernel: Kernel

    @property
    def clock(self) -> SimClock:
        return self.kernel.clock

    @property
    def now(self) -> float:
        return self.kernel.clock.now


def make_world(seed: int = 0, costs: CostModel = DEFAULT_COST_MODEL,
               observe: bool = False) -> World:
    """Create a fresh simulated world (kernel + clock + seeded RNG).

    ``observe=True`` installs a :class:`repro.obs.Observability` hub so
    the world records lifecycle spans and metrics from the start.
    """
    kernel = Kernel(clock=SimClock(), costs=costs, streams=RandomStreams(seed=seed))
    if observe:
        from repro import obs
        obs.install(kernel)
    return World(kernel=kernel)


__all__ = [
    "PrebakeManager",
    "World",
    "make_world",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Kernel",
    "__version__",
]
