"""The Markdown Render function (paper §4.1).

"The Markdown Render converts a markdown to an HTML page. We embed a
markdown inside the body of each incoming request, and receive the HTML
page as response." The paper embedded the OpenPiton README; offline we
ship a bundled document with equivalent structural variety.
"""

from __future__ import annotations

from typing import Any, Tuple, TYPE_CHECKING

from repro.functions.base import FunctionApp, register_app
from repro.functions.markdown_engine import render_document
from repro.sim.costmodel import MARKDOWN_COSTS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.base import ManagedRuntime, Request

# Stand-in for the OpenPiton README the paper embedded in each request:
# same structural mix (headings, lists, code fences, links, emphasis).
SAMPLE_DOCUMENT = """\
# OpenPiton Research Platform

OpenPiton is the world's first *open source*, general-purpose,
multithreaded *manycore* processor and framework.

## Getting Started

1. Set the `PITON_ROOT` environment variable
2. Run the setup script:

```bash
source $PITON_ROOT/piton/piton_settings.bash
sims -sys=manycore -x_tiles=2 -y_tiles=2 -vcs_build
```

## Features

- Scalable tile-based architecture
- **Configurable** core counts from 1 to 65536
- Supports [FPGA emulation](https://example.org/fpga) and ASIC flows
- Coherent caches with a directory-based protocol

> OpenPiton was developed at Princeton University and released under
> a BSD-style license.

---

### Citation

If you use OpenPiton in your research, please cite the ASPLOS paper.
"""


class MarkdownFunction(FunctionApp):
    """Render the request body (markdown) to a full HTML page."""

    def __init__(self) -> None:
        super().__init__(MARKDOWN_COSTS)

    def artifact_size(self) -> int:
        # The bundle ships a markdown library dependency.
        return int(1.4 * 1024 * 1024)

    def execute(self, runtime: "ManagedRuntime", request: "Request") -> Tuple[Any, int]:
        source = request.body if isinstance(request.body, str) and request.body else SAMPLE_DOCUMENT
        try:
            html = render_document(source)
        except Exception:  # malformed input must not kill the replica
            return "render error", 500
        return html, 200


register_app("markdown", MarkdownFunction)
