"""The Image Resizer function (paper §4.1).

"On start-up, it loads a 1 MB, 3440x1440 pixels image, and for each
incoming request the function scales it down to 10 % of its original
size." It is the paper's best case for prebaking (71 % improvement)
because its APPINIT is I/O heavy and its snapshot is large (99.2 MB).

The simulated replica keeps a reduced-resolution working copy in memory
(timing comes from the calibrated profile, not from pixel arithmetic),
while :meth:`ImageResizerFunction.full_scale_resize` runs the genuine
3440x1440 box-filter downscale for the real-compute examples and tests.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple, TYPE_CHECKING

from repro.functions.base import FunctionApp, register_app
from repro.functions.imaging.generate import PAPER_HEIGHT, PAPER_WIDTH, synthetic_photo
from repro.functions.imaging.image import Image
from repro.functions.imaging.resize import scale_to_fraction
from repro.sim.costmodel import IMAGE_RESIZER_COSTS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.base import ManagedRuntime, Request

SOURCE_IMAGE_PATH = "/srv/functions/image-resizer/source-3440x1440.jpg"
SOURCE_IMAGE_BYTES = 1 * 1024 * 1024  # "a 1MB, 3440x1440 pixels image"
SCALE_FRACTION = 0.10

# The working copy the simulated replica actually resizes per request.
# 1/10 the linear resolution keeps each simulated invocation cheap
# while still pushing real pixels through the box filter.
_WORKING_WIDTH = PAPER_WIDTH // 10
_WORKING_HEIGHT = PAPER_HEIGHT // 10


class ImageResizerFunction(FunctionApp):
    """Load a large image at APPINIT; downscale to 10 % per request."""

    def __init__(self) -> None:
        super().__init__(IMAGE_RESIZER_COSTS)
        self._working_image: Optional[Image] = None

    def artifact_size(self) -> int:
        # Bundle includes the three JDK image-processing packages' glue.
        return int(2.1 * 1024 * 1024)

    def ensure_artifacts(self, kernel) -> str:  # type: ignore[override]
        path = super().ensure_artifacts(kernel)
        kernel.fs.ensure(SOURCE_IMAGE_PATH, size=SOURCE_IMAGE_BYTES)
        return path

    # -- lifecycle --------------------------------------------------------------

    def init(self, runtime: "ManagedRuntime") -> None:
        """APPINIT: read and decode the source image (the I/O the paper
        identifies as dominating this function's vanilla APPINIT)."""
        kernel = runtime.kernel
        source = kernel.fs.lookup(SOURCE_IMAGE_PATH)
        runtime.process.open_fd(source, flags="r")
        kernel.page_cache.warm(source, fraction=1.0)
        self._working_image = synthetic_photo(_WORKING_WIDTH, _WORKING_HEIGHT)

    def execute(self, runtime: "ManagedRuntime", request: "Request") -> Tuple[Any, int]:
        if self._working_image is None:
            return "image not loaded", 500
        thumb = scale_to_fraction(self._working_image, SCALE_FRACTION)
        return {"width": thumb.width, "height": thumb.height,
                "bytes": thumb.nbytes}, 200

    # -- real compute (examples / tests) ---------------------------------------------

    @staticmethod
    def full_scale_resize(seed: int = 2020) -> Image:
        """Run the paper's actual workload: 3440x1440 → 10 % box downscale."""
        photo = synthetic_photo(seed=seed)
        return scale_to_fraction(photo, SCALE_FRACTION)


register_app("image-resizer", ImageResizerFunction)
