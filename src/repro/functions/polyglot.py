"""Polyglot workloads for the paper's §7 future work.

"As future work, we plan to extend our evaluation to other runtimes
environments such as Node.JS and Python, all supported by the leading
public FaaS platforms. As different runtimes implement distinct
start-up procedures, the potential improvements remain unknown."

These functions host the same handler logic on the CPython and Node.js
runtime models so the prebaking pipeline can be exercised across
runtimes. Their timing constants are projections (see the runtime
modules), not paper fits.
"""

from __future__ import annotations

from typing import Any, Tuple, TYPE_CHECKING

from repro.functions.base import FunctionApp, register_app
from repro.functions.markdown_engine import render_document
from repro.runtime.classes import generate_classes
from repro.sim.costmodel import FunctionCosts, synthetic_costs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.base import ManagedRuntime, Request


def _python_profile(name: str, modules: int, kib: float,
                    service_ms: float) -> FunctionCosts:
    return synthetic_costs(name, classes=modules, class_kib=kib,
                           base_rss_mib=7.0, service_ms=service_ms)


def _node_profile(name: str, modules: int, kib: float,
                  service_ms: float) -> FunctionCosts:
    return synthetic_costs(name, classes=modules, class_kib=kib,
                           base_rss_mib=10.0, service_ms=service_ms)


class PythonMarkdownFunction(FunctionApp):
    """Markdown rendering on the CPython runtime model."""

    runtime_kind = "python"

    def __init__(self) -> None:
        super().__init__(_python_profile("py-markdown", modules=40,
                                         kib=900.0, service_ms=4.2))
        self.classes = generate_classes(40, 900.0, seed=21)

    def artifact_path(self) -> str:
        return f"/srv/functions/{self.name}/bundle.tar"

    def execute(self, runtime: "ManagedRuntime",
                request: "Request") -> Tuple[Any, int]:
        source = request.body if isinstance(request.body, str) and request.body \
            else "# hello from python"
        return render_document(source), 200


class NodeMarkdownFunction(FunctionApp):
    """Markdown rendering on the Node.js runtime model."""

    runtime_kind = "nodejs"

    def __init__(self) -> None:
        super().__init__(_node_profile("node-markdown", modules=120,
                                       kib=2_400.0, service_ms=3.8))
        self.classes = generate_classes(120, 2_400.0, seed=22)

    def artifact_path(self) -> str:
        return f"/srv/functions/{self.name}/bundle.js"

    def execute(self, runtime: "ManagedRuntime",
                request: "Request") -> Tuple[Any, int]:
        source = request.body if isinstance(request.body, str) and request.body \
            else "# hello from node"
        return render_document(source), 200


class PythonNoopFunction(FunctionApp):
    """NOOP on the CPython runtime model."""

    runtime_kind = "python"

    def __init__(self) -> None:
        profile = synthetic_costs("py-noop", classes=1, class_kib=4.0,
                                  base_rss_mib=7.0, service_ms=0.7)
        super().__init__(profile)
        self.classes = []

    def artifact_path(self) -> str:
        return f"/srv/functions/{self.name}/handler.py"

    def execute(self, runtime: "ManagedRuntime",
                request: "Request") -> Tuple[Any, int]:
        return "", 200


class NodeNoopFunction(FunctionApp):
    """NOOP on the Node.js runtime model."""

    runtime_kind = "nodejs"

    def __init__(self) -> None:
        profile = synthetic_costs("node-noop", classes=1, class_kib=4.0,
                                  base_rss_mib=10.0, service_ms=0.6)
        super().__init__(profile)
        self.classes = []

    def artifact_path(self) -> str:
        return f"/srv/functions/{self.name}/handler.js"

    def execute(self, runtime: "ManagedRuntime",
                request: "Request") -> Tuple[Any, int]:
        return "", 200


register_app("py-markdown", PythonMarkdownFunction)
register_app("node-markdown", NodeMarkdownFunction)
register_app("py-noop", PythonNoopFunction)
register_app("node-noop", NodeNoopFunction)
