"""Function application protocol and registry.

A :class:`FunctionApp` bundles what the platform deploys: a handler, a
calibrated cost profile (:class:`~repro.sim.costmodel.FunctionCosts`),
the runtime kind it needs, and (for the paper's synthetic functions)
the class set the first invocation lazily loads. The same app object is
hosted by simulated runtimes and drives the real compute substrates
(markdown engine, imaging) for its responses.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple, TYPE_CHECKING

from repro.osproc.kernel import Kernel
from repro.runtime.classes import SyntheticClass
from repro.sim.costmodel import FunctionCosts

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.base import ManagedRuntime, Request


class FunctionApp:
    """Base class for deployable functions."""

    runtime_kind = "jvm"

    def __init__(self, profile: FunctionCosts) -> None:
        self.profile = profile
        self.classes: List[SyntheticClass] = []

    @property
    def name(self) -> str:
        return self.profile.name

    # -- deployment ---------------------------------------------------------

    def artifact_path(self) -> str:
        return f"/srv/functions/{self.name}/function.jar"

    def artifact_size(self) -> int:
        """Size of the deployable artifact in bytes."""
        base = 256 * 1024
        return base + int(sum(c.size_kib for c in self.classes) * 1024)

    def ensure_artifacts(self, kernel: Kernel) -> str:
        """Create the function's artifact(s) in the simulated VFS."""
        path = self.artifact_path()
        kernel.fs.ensure(path, size=self.artifact_size())
        return path

    # -- lifecycle hooks ------------------------------------------------------

    def init(self, runtime: "ManagedRuntime") -> None:
        """APPINIT-time work (open files, preload data)."""

    def execute(self, runtime: "ManagedRuntime", request: "Request") -> Tuple[Any, int]:
        """Produce (body, http_status) for a request."""
        raise NotImplementedError


_REGISTRY: Dict[str, Callable[[], FunctionApp]] = {}


def register_app(name: str, factory: Callable[[], FunctionApp]) -> None:
    """Register a factory under ``name`` (last registration wins)."""
    _REGISTRY[name] = factory


def make_app(name: str) -> FunctionApp:
    """Instantiate a registered function by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown function {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return factory()


def registered_names() -> List[str]:
    return sorted(_REGISTRY)
