"""The NOOP function (paper §4.1).

"It does nothing and returns success to every incoming request. The
function business logic neither has extra dependencies nor adds extra
processing/memory overhead." It is the paper's lower bound on prebaking
improvement (40 %).
"""

from __future__ import annotations

from typing import Any, Tuple, TYPE_CHECKING

from repro.functions.base import FunctionApp, register_app
from repro.sim.costmodel import NOOP_COSTS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.base import ManagedRuntime, Request


class NoopFunction(FunctionApp):
    """Acknowledge every request with an empty 200."""

    def __init__(self) -> None:
        super().__init__(NOOP_COSTS)

    def execute(self, runtime: "ManagedRuntime", request: "Request") -> Tuple[Any, int]:
        return "", 200


register_app("noop", NoopFunction)
