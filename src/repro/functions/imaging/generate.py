"""Deterministic synthetic source image.

The paper's Image Resizer loads a 1 MB, 3440x1440-pixel photograph
downloaded from imgur. Offline we synthesize a deterministic image of
the same dimensions with photograph-like structure (smooth gradients +
band-limited noise + geometric detail) so that decoding and box
filtering exercise the same code paths and data volumes.
"""

from __future__ import annotations

import numpy as np

from repro.functions.imaging.image import Image

PAPER_WIDTH = 3440
PAPER_HEIGHT = 1440


def synthetic_photo(width: int = PAPER_WIDTH, height: int = PAPER_HEIGHT,
                    seed: int = 2020) -> Image:
    """Generate the stand-in for the paper's source image.

    Deterministic for a given seed. The default dimensions match the
    paper (3440x1440).
    """
    if width <= 0 or height <= 0:
        raise ValueError(f"invalid dimensions {width}x{height}")
    rng = np.random.default_rng(seed)
    y = np.linspace(0.0, 1.0, height)[:, None]
    x = np.linspace(0.0, 1.0, width)[None, :]

    # Sky-to-ground gradient per channel.
    r = 90 + 110 * y + 25 * np.sin(2 * np.pi * x * 1.5)
    g = 110 + 80 * y + 20 * np.sin(2 * np.pi * (x * 2.0 + 0.3))
    b = 170 - 90 * y + 15 * np.cos(2 * np.pi * x * 1.2)

    # Band-limited noise: upsample a coarse noise grid (cheap "texture").
    coarse = rng.normal(0.0, 18.0, size=(max(2, height // 48), max(2, width // 48)))
    reps_y = -(-height // coarse.shape[0])
    reps_x = -(-width // coarse.shape[1])
    texture = np.kron(coarse, np.ones((reps_y, reps_x)))[:height, :width]

    # A few geometric features so edges exist for resamplers to chew on.
    ridge = 40.0 * (np.abs(((x * 7) % 1.0) - 0.5) < 0.04)
    disc = 60.0 * (((x - 0.7) ** 2 + ((y - 0.35) * (width / height)) ** 2) < 0.01)

    px = np.stack([
        r + texture + ridge - disc,
        g + texture * 0.8 + ridge,
        b + texture * 0.6 + disc,
    ], axis=-1)
    return Image(np.clip(px, 0, 255))
