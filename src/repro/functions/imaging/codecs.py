"""Image codecs: PPM (P3/P6) and uncompressed 24-bit BMP.

The formats are simple enough to implement exactly and round-trip
losslessly, which is what the tests verify.
"""

from __future__ import annotations

import struct
from typing import Tuple

import numpy as np

from repro.functions.imaging.image import Image, ImageFormatError


# ---------------------------------------------------------------------------
# PPM
# ---------------------------------------------------------------------------

def encode_ppm(image: Image, binary: bool = True) -> bytes:
    """Encode as P6 (binary) or P3 (ASCII) PPM."""
    header = f"{'P6' if binary else 'P3'}\n{image.width} {image.height}\n255\n"
    if binary:
        return header.encode("ascii") + image.pixels.tobytes()
    rows = []
    for row in image.pixels:
        rows.append(" ".join(str(int(v)) for v in row.reshape(-1)))
    return header.encode("ascii") + ("\n".join(rows) + "\n").encode("ascii")


def _read_ppm_tokens(data: bytes, count: int, start: int) -> Tuple[list, int]:
    """Read ``count`` whitespace-separated tokens, skipping # comments."""
    tokens = []
    i = start
    n = len(data)
    while len(tokens) < count and i < n:
        c = data[i:i + 1]
        if c.isspace():
            i += 1
        elif c == b"#":
            while i < n and data[i:i + 1] != b"\n":
                i += 1
        else:
            j = i
            while j < n and not data[j:j + 1].isspace():
                j += 1
            tokens.append(data[i:j])
            i = j
    if len(tokens) < count:
        raise ImageFormatError("truncated PPM header")
    return tokens, i


def decode_ppm(data: bytes) -> Image:
    """Decode a P3 or P6 PPM image."""
    if len(data) < 2 or data[:1] != b"P" or data[1:2] not in b"36":
        raise ImageFormatError("not a PPM image (expected P3 or P6 magic)")
    binary = data[1:2] == b"6"
    (w_tok, h_tok, max_tok), i = _read_ppm_tokens(data, 3, 2)
    width, height, maxval = int(w_tok), int(h_tok), int(max_tok)
    if width <= 0 or height <= 0:
        raise ImageFormatError(f"invalid PPM dimensions {width}x{height}")
    if maxval != 255:
        raise ImageFormatError(f"unsupported PPM maxval {maxval} (only 255)")
    if binary:
        i += 1  # single whitespace after maxval
        expected = width * height * 3
        raster = data[i:i + expected]
        if len(raster) < expected:
            raise ImageFormatError(
                f"truncated P6 raster: {len(raster)} of {expected} bytes"
            )
        px = np.frombuffer(raster, dtype=np.uint8).reshape(height, width, 3).copy()
        return Image(px)
    tokens, _ = _read_ppm_tokens(data, width * height * 3, i)
    values = np.array([int(t) for t in tokens], dtype=np.int64)
    if values.min() < 0 or values.max() > 255:
        raise ImageFormatError("P3 sample out of range 0..255")
    return Image(values.astype(np.uint8).reshape(height, width, 3))


# ---------------------------------------------------------------------------
# BMP (uncompressed BI_RGB, 24bpp, bottom-up)
# ---------------------------------------------------------------------------

_BMP_FILE_HEADER = struct.Struct("<2sIHHI")
_BMP_INFO_HEADER = struct.Struct("<IiiHHIIiiII")


def encode_bmp(image: Image) -> bytes:
    """Encode as an uncompressed 24-bit bottom-up BMP."""
    row_size = (image.width * 3 + 3) & ~3
    raster_size = row_size * image.height
    offset = _BMP_FILE_HEADER.size + _BMP_INFO_HEADER.size
    header = _BMP_FILE_HEADER.pack(b"BM", offset + raster_size, 0, 0, offset)
    info = _BMP_INFO_HEADER.pack(
        _BMP_INFO_HEADER.size, image.width, image.height, 1, 24, 0,
        raster_size, 2835, 2835, 0, 0,
    )
    # BGR channel order, rows bottom-up, each padded to 4 bytes.
    bgr = image.pixels[::-1, :, ::-1]
    pad = row_size - image.width * 3
    if pad:
        padded = np.zeros((image.height, row_size), dtype=np.uint8)
        padded[:, : image.width * 3] = bgr.reshape(image.height, -1)
        raster = padded.tobytes()
    else:
        raster = bgr.tobytes()
    return header + info + raster


def decode_bmp(data: bytes) -> Image:
    """Decode an uncompressed 24-bit BMP (top-down or bottom-up)."""
    if len(data) < _BMP_FILE_HEADER.size + _BMP_INFO_HEADER.size:
        raise ImageFormatError("truncated BMP header")
    magic, _file_size, _, _, offset = _BMP_FILE_HEADER.unpack_from(data, 0)
    if magic != b"BM":
        raise ImageFormatError("not a BMP image (bad magic)")
    (_hdr_size, width, height, _planes, bpp, compression,
     _img_size, _xppm, _yppm, _colors, _important) = _BMP_INFO_HEADER.unpack_from(
        data, _BMP_FILE_HEADER.size
    )
    if bpp != 24 or compression != 0:
        raise ImageFormatError(f"unsupported BMP: bpp={bpp} compression={compression}")
    bottom_up = height > 0
    height = abs(height)
    if width <= 0 or height == 0:
        raise ImageFormatError(f"invalid BMP dimensions {width}x{height}")
    row_size = (width * 3 + 3) & ~3
    expected = row_size * height
    raster = data[offset:offset + expected]
    if len(raster) < expected:
        raise ImageFormatError(f"truncated BMP raster: {len(raster)} of {expected}")
    rows = np.frombuffer(raster, dtype=np.uint8).reshape(height, row_size)
    bgr = rows[:, : width * 3].reshape(height, width, 3)
    rgb = bgr[:, :, ::-1]
    if bottom_up:
        rgb = rgb[::-1]
    return Image(rgb.copy())
