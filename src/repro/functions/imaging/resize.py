"""Image resampling: nearest-neighbour, bilinear and box (area) filters.

The paper's Image Resizer "scales [the image] down to 10 % of its
original size" per request; box filtering is the right choice for large
downscales and is the default here.
"""

from __future__ import annotations

import numpy as np

from repro.functions.imaging.image import Image, ImageFormatError


def _check_target(width: int, height: int) -> None:
    if width <= 0 or height <= 0:
        raise ImageFormatError(f"invalid target size {width}x{height}")


def resize_nearest(image: Image, width: int, height: int) -> Image:
    """Nearest-neighbour resampling."""
    _check_target(width, height)
    src = image.pixels
    xs = np.minimum((np.arange(width) + 0.5) * image.width / width, image.width - 1).astype(int)
    ys = np.minimum((np.arange(height) + 0.5) * image.height / height, image.height - 1).astype(int)
    return Image(src[np.ix_(ys, xs)].copy())


def resize_bilinear(image: Image, width: int, height: int) -> Image:
    """Bilinear interpolation (edge-clamped, center-aligned)."""
    _check_target(width, height)
    src = image.pixels.astype(np.float64)
    fx = (np.arange(width) + 0.5) * image.width / width - 0.5
    fy = (np.arange(height) + 0.5) * image.height / height - 0.5
    x0 = np.clip(np.floor(fx).astype(int), 0, image.width - 1)
    y0 = np.clip(np.floor(fy).astype(int), 0, image.height - 1)
    x1 = np.minimum(x0 + 1, image.width - 1)
    y1 = np.minimum(y0 + 1, image.height - 1)
    wx = np.clip(fx - x0, 0.0, 1.0)[None, :, None]
    wy = np.clip(fy - y0, 0.0, 1.0)[:, None, None]
    top = src[np.ix_(y0, x0)] * (1 - wx) + src[np.ix_(y0, x1)] * wx
    bottom = src[np.ix_(y1, x0)] * (1 - wx) + src[np.ix_(y1, x1)] * wx
    return Image(top * (1 - wy) + bottom * wy)


def resize_box(image: Image, width: int, height: int) -> Image:
    """Box (area-average) filter — the right filter for big downscales.

    Implemented with cumulative sums so the per-pixel source box is
    averaged exactly, including fractional box edges.
    """
    _check_target(width, height)
    if width > image.width or height > image.height:
        # Box (area) filtering is a pure *downscale* filter: enlarging
        # an axis produces empty source boxes. Interpolate instead.
        return resize_bilinear(image, width, height)
    src = image.pixels.astype(np.float64)
    # Integral image with a leading zero row/col.
    integral = np.zeros((image.height + 1, image.width + 1, 3), dtype=np.float64)
    integral[1:, 1:] = src.cumsum(axis=0).cumsum(axis=1)

    x_edges = np.linspace(0, image.width, width + 1)
    y_edges = np.linspace(0, image.height, height + 1)
    # Snap fractional edges to pixel boundaries (exact for integer
    # ratios; a <=1px approximation otherwise).
    xi = np.round(x_edges).astype(int)
    yi = np.round(y_edges).astype(int)
    xi = np.maximum.accumulate(np.clip(xi, 0, image.width))
    yi = np.maximum.accumulate(np.clip(yi, 0, image.height))
    # Guarantee non-empty boxes.
    for arr, limit in ((xi, image.width), (yi, image.height)):
        for i in range(1, len(arr)):
            if arr[i] <= arr[i - 1]:
                arr[i] = min(arr[i - 1] + 1, limit)
        for i in range(len(arr) - 2, -1, -1):
            if arr[i] >= arr[i + 1]:
                arr[i] = max(arr[i + 1] - 1, 0)

    sums = (
        integral[yi[1:], :][:, xi[1:]]
        - integral[yi[:-1], :][:, xi[1:]]
        - integral[yi[1:], :][:, xi[:-1]]
        + integral[yi[:-1], :][:, xi[:-1]]
    )
    areas = ((yi[1:] - yi[:-1])[:, None] * (xi[1:] - xi[:-1])[None, :])[:, :, None]
    return Image(sums / areas)


_FILTERS = {
    "nearest": resize_nearest,
    "bilinear": resize_bilinear,
    "box": resize_box,
}


def resize(image: Image, width: int, height: int, method: str = "box") -> Image:
    """Resize ``image`` to ``width`` x ``height`` using ``method``."""
    try:
        fn = _FILTERS[method]
    except KeyError:
        raise ImageFormatError(
            f"unknown resize method {method!r}; choose from {sorted(_FILTERS)}"
        ) from None
    return fn(image, width, height)


def scale_to_fraction(image: Image, fraction: float, method: str = "box") -> Image:
    """Scale both dimensions by ``fraction`` (the paper uses 0.10)."""
    if not 0 < fraction:
        raise ImageFormatError(f"fraction must be positive, got {fraction}")
    width = max(1, int(round(image.width * fraction)))
    height = max(1, int(round(image.height * fraction)))
    return resize(image, width, height, method=method)
