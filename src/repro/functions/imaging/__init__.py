"""A small, dependency-light imaging library (numpy-backed).

This is the real compute behind the paper's "Image Resizer" function:
on start-up it loads a 1 MB, 3440x1440 image, and for each request
scales it down to 10 % of its original size (§4.1). The paper's source
image is an imgur download we cannot fetch offline, so
:mod:`repro.functions.imaging.generate` synthesizes a deterministic
photographic-looking image of the same dimensions instead (substitution
documented in DESIGN.md).
"""

from repro.functions.imaging.image import Image, ImageFormatError
from repro.functions.imaging.codecs import decode_ppm, encode_ppm, decode_bmp, encode_bmp
from repro.functions.imaging.resize import resize, resize_box, resize_bilinear, resize_nearest
from repro.functions.imaging.generate import synthetic_photo

__all__ = [
    "Image",
    "ImageFormatError",
    "decode_ppm",
    "encode_ppm",
    "decode_bmp",
    "encode_bmp",
    "resize",
    "resize_box",
    "resize_bilinear",
    "resize_nearest",
    "synthetic_photo",
]
