"""The in-memory image type."""

from __future__ import annotations

from typing import Tuple

import numpy as np


class ImageFormatError(Exception):
    """Raised on malformed image data or unsupported formats."""


class Image:
    """An RGB image backed by a ``(height, width, 3)`` uint8 array."""

    def __init__(self, pixels: np.ndarray) -> None:
        pixels = np.asarray(pixels)
        if pixels.ndim == 2:
            pixels = np.stack([pixels] * 3, axis=-1)
        if pixels.ndim != 3 or pixels.shape[2] != 3:
            raise ImageFormatError(
                f"expected (H, W, 3) pixel array, got shape {pixels.shape}"
            )
        if pixels.dtype != np.uint8:
            pixels = np.clip(np.round(pixels), 0, 255).astype(np.uint8)
        self.pixels = pixels

    # -- constructors ----------------------------------------------------------

    @classmethod
    def blank(cls, width: int, height: int, color: Tuple[int, int, int] = (0, 0, 0)) -> "Image":
        if width <= 0 or height <= 0:
            raise ImageFormatError(f"invalid dimensions {width}x{height}")
        px = np.empty((height, width, 3), dtype=np.uint8)
        px[:, :] = color
        return cls(px)

    # -- properties --------------------------------------------------------------

    @property
    def width(self) -> int:
        return self.pixels.shape[1]

    @property
    def height(self) -> int:
        return self.pixels.shape[0]

    @property
    def size(self) -> Tuple[int, int]:
        return self.width, self.height

    @property
    def nbytes(self) -> int:
        return int(self.pixels.nbytes)

    # -- pixels --------------------------------------------------------------------

    def get(self, x: int, y: int) -> Tuple[int, int, int]:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise IndexError(f"pixel ({x},{y}) outside {self.width}x{self.height}")
        return tuple(int(v) for v in self.pixels[y, x])

    def put(self, x: int, y: int, color: Tuple[int, int, int]) -> None:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise IndexError(f"pixel ({x},{y}) outside {self.width}x{self.height}")
        self.pixels[y, x] = color

    def copy(self) -> "Image":
        return Image(self.pixels.copy())

    def mean_color(self) -> Tuple[float, float, float]:
        """Average channel values — useful to verify resizes preserve tone."""
        means = self.pixels.reshape(-1, 3).mean(axis=0)
        return float(means[0]), float(means[1]), float(means[2])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Image):
            return NotImplemented
        return self.pixels.shape == other.pixels.shape and bool(
            np.array_equal(self.pixels, other.pixels)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Image({self.width}x{self.height})"
