"""Function workloads (paper §4.1 and §4.2.2).

Importing this package registers the paper's five workloads in the
function registry: ``noop``, ``markdown``, ``image-resizer``,
``synthetic-small``, ``synthetic-medium`` and ``synthetic-big``.
"""

from repro.functions.base import FunctionApp, make_app, register_app, registered_names
from repro.functions.noop import NoopFunction
from repro.functions.markdown import MarkdownFunction, SAMPLE_DOCUMENT
from repro.functions.image_resizer import ImageResizerFunction
from repro.functions.synthetic import (
    SyntheticFunction,
    big_function,
    custom_function,
    medium_function,
    small_function,
)
from repro.functions.polyglot import (
    NodeMarkdownFunction,
    NodeNoopFunction,
    PythonMarkdownFunction,
    PythonNoopFunction,
)

__all__ = [
    "FunctionApp",
    "make_app",
    "register_app",
    "registered_names",
    "NoopFunction",
    "MarkdownFunction",
    "SAMPLE_DOCUMENT",
    "ImageResizerFunction",
    "SyntheticFunction",
    "small_function",
    "medium_function",
    "big_function",
    "custom_function",
    "PythonMarkdownFunction",
    "PythonNoopFunction",
    "NodeMarkdownFunction",
    "NodeNoopFunction",
]
