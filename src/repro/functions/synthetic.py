"""Synthetic class-loading functions (paper §4.2.2).

"We created a synthetic function which loads a predefined number of
classes when invoked": small = 374 classes (≈2.8 MB), medium = 574
(≈9.2 MB), big = 1574 (≈41 MB). Their first invocation triggers the
lazy load + JIT, so the start-up metric for these experiments is
time-to-first-response.
"""

from __future__ import annotations

from typing import Any, Tuple, TYPE_CHECKING

from repro.functions.base import FunctionApp, register_app
from repro.runtime.classes import generate_classes
from repro.sim.costmodel import (
    SYNTHETIC_BIG,
    SYNTHETIC_MEDIUM,
    SYNTHETIC_SMALL,
    FunctionCosts,
    synthetic_costs,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.base import ManagedRuntime, Request


class SyntheticFunction(FunctionApp):
    """Loads its class set on first invocation, then acks requests."""

    def __init__(self, profile: FunctionCosts, seed: int = 7) -> None:
        super().__init__(profile)
        if profile.classes <= 0:
            raise ValueError(f"profile {profile.name!r} declares no classes")
        self.classes = generate_classes(profile.classes, profile.class_kib, seed=seed)

    def execute(self, runtime: "ManagedRuntime", request: "Request") -> Tuple[Any, int]:
        loaded = getattr(runtime, "loaded_classes", None)
        return {"classes_loaded": loaded if loaded is not None else len(self.classes)}, 200


def small_function() -> SyntheticFunction:
    return SyntheticFunction(SYNTHETIC_SMALL)


def medium_function() -> SyntheticFunction:
    return SyntheticFunction(SYNTHETIC_MEDIUM)


def big_function() -> SyntheticFunction:
    return SyntheticFunction(SYNTHETIC_BIG)


def custom_function(classes: int, total_kib: float, name: str = "") -> SyntheticFunction:
    """Build a synthetic function of arbitrary size (used by sweeps)."""
    profile = synthetic_costs(name or f"synthetic-{classes}c", classes, total_kib)
    return SyntheticFunction(profile)


register_app("synthetic-small", small_function)
register_app("synthetic-medium", medium_function)
register_app("synthetic-big", big_function)
