"""Inline-level markdown parsing: spans inside a block of text."""

from __future__ import annotations

import re
from typing import List

_ESCAPABLE = set("\\`*_{}[]()#+-.!<>|\"'~")

_AUTOLINK_RE = re.compile(r"<(https?://[^\s<>]+|[\w.+-]+@[\w.-]+\.\w+)>")
_LINK_RE = re.compile(r"!?\[([^\]]*)\]\(\s*(<[^>]*>|[^\s)]*)(?:\s+\"([^\"]*)\")?\s*\)")


def escape_html(text: str, quote: bool = False) -> str:
    """HTML-escape ``text`` (&, <, >; plus quotes when ``quote``)."""
    text = text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    if quote:
        text = text.replace('"', "&quot;")
    return text


def render_inline(text: str) -> str:
    """Render inline markdown in ``text`` to an HTML fragment."""
    return _InlineRenderer(text).render()


class _InlineRenderer:
    """Single-pass scanner over a block's raw text."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.out: List[str] = []

    def render(self) -> str:
        text = self.text
        n = len(text)
        while self.pos < n:
            ch = text[self.pos]
            if ch == "\\" and self.pos + 1 < n and text[self.pos + 1] in _ESCAPABLE:
                self.out.append(escape_html(text[self.pos + 1]))
                self.pos += 2
            elif ch == "`":
                self._code_span()
            elif ch in "*_":
                self._emphasis(ch)
            elif ch == "!" and text.startswith("![", self.pos):
                self._link(image=True)
            elif ch == "[":
                self._link(image=False)
            elif ch == "<":
                self._angle()
            elif ch == " " and text.startswith("  \n", self.pos):
                self.out.append("<br />\n")
                self.pos += 3
            else:
                self.out.append(escape_html(ch))
                self.pos += 1
        return "".join(self.out)

    # -- span handlers --------------------------------------------------------

    def _code_span(self) -> None:
        text = self.text
        run = 1
        while self.pos + run < len(text) and text[self.pos + run] == "`":
            run += 1
        opener = "`" * run
        end = text.find(opener, self.pos + run)
        # A longer closing run does not close a shorter opener.
        while end != -1 and end + run < len(text) and text[end + run] == "`":
            nxt = end
            while nxt < len(text) and text[nxt] == "`":
                nxt += 1
            end = text.find(opener, nxt)
        if end == -1:
            self.out.append(escape_html(opener))
            self.pos += run
            return
        code = text[self.pos + run:end].strip()
        self.out.append(f"<code>{escape_html(code)}</code>")
        self.pos = end + run

    def _emphasis(self, marker: str) -> None:
        text = self.text
        run = 1
        while self.pos + run < len(text) and text[self.pos + run] == marker:
            run += 1
        run = min(run, 3)
        # The content must be non-empty and not start with whitespace.
        for width in (run, 2, 1):
            if width > run:
                continue
            closer = marker * width
            start = self.pos + width
            end = text.find(closer, start)
            while end != -1 and text[end - 1] == "\\":
                end = text.find(closer, end + width)
            if end != -1 and end > start and not text[start].isspace() \
                    and not text[end - 1].isspace():
                inner = render_inline(text[start:end])
                if width == 1:
                    self.out.append(f"<em>{inner}</em>")
                elif width == 2:
                    self.out.append(f"<strong>{inner}</strong>")
                else:
                    self.out.append(f"<em><strong>{inner}</strong></em>")
                self.pos = end + width
                return
        self.out.append(escape_html(text[self.pos:self.pos + run]))
        self.pos += run

    def _link(self, image: bool) -> None:
        m = _LINK_RE.match(self.text, self.pos)
        if not m or m.group(0).startswith("!") != image:
            self.out.append(escape_html(self.text[self.pos]))
            self.pos += 1
            return
        label, target, title = m.group(1), m.group(2), m.group(3)
        if target.startswith("<") and target.endswith(">"):
            target = target[1:-1]
        href = escape_html(target, quote=True)
        title_attr = f' title="{escape_html(title, quote=True)}"' if title else ""
        if image:
            alt = escape_html(label, quote=True)
            self.out.append(f'<img src="{href}" alt="{alt}"{title_attr} />')
        else:
            inner = render_inline(label)
            self.out.append(f'<a href="{href}"{title_attr}>{inner}</a>')
        self.pos = m.end()

    def _angle(self) -> None:
        m = _AUTOLINK_RE.match(self.text, self.pos)
        if m:
            target = m.group(1)
            href = target if "://" in target else f"mailto:{target}"
            self.out.append(
                f'<a href="{escape_html(href, quote=True)}">{escape_html(target)}</a>'
            )
            self.pos = m.end()
            return
        # Pass through things that look like inline HTML tags.
        close = self.text.find(">", self.pos)
        candidate = self.text[self.pos:close + 1] if close != -1 else ""
        if re.fullmatch(r"</?[a-zA-Z][\w-]*(\s[^<>]*)?/?>", candidate):
            self.out.append(candidate)
            self.pos = close + 1
        else:
            self.out.append("&lt;")
            self.pos += 1
