"""Block-level markdown parser.

Line-oriented, single pass with recursive sub-parsing for container
blocks (blockquotes and list items). Produces the AST defined in
:mod:`repro.functions.markdown_engine.nodes`.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.functions.markdown_engine.nodes import (
    BlockQuote,
    CodeBlock,
    Document,
    Heading,
    HtmlBlock,
    ListBlock,
    ListItem,
    Node,
    Paragraph,
    ThematicBreak,
)

_ATX_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_THEMATIC_RE = re.compile(r"^ {0,3}((\*\s*){3,}|(-\s*){3,}|(_\s*){3,})$")
_FENCE_RE = re.compile(r"^ {0,3}(```+|~~~+)\s*([^`\s]*)\s*$")
_ORDERED_RE = re.compile(r"^( {0,3})(\d{1,9})([.)])\s+(.*)$")
_BULLET_RE = re.compile(r"^( {0,3})([-+*])\s+(.*)$")
_QUOTE_RE = re.compile(r"^ {0,3}>\s?(.*)$")
_SETEXT_RE = re.compile(r"^ {0,3}(=+|-+)\s*$")
_HTML_BLOCK_RE = re.compile(r"^ {0,3}<(?:[a-zA-Z][^>]*|/[a-zA-Z][^>]*|!--.*)>?")


def _is_blank(line: str) -> bool:
    return not line.strip()


def parse_blocks(text: str) -> Document:
    """Parse markdown ``text`` into a :class:`Document` AST."""
    lines = text.replace("\r\n", "\n").replace("\r", "\n").split("\n")
    return Document(children=_parse_lines(lines))


def _parse_lines(lines: List[str]) -> List[Node]:
    nodes: List[Node] = []
    i = 0
    n = len(lines)
    while i < n:
        line = lines[i]
        if _is_blank(line):
            i += 1
            continue

        # Fenced code block.
        fence = _FENCE_RE.match(line)
        if fence:
            marker, language = fence.group(1), fence.group(2)
            close_re = re.compile(r"^ {0,3}" + re.escape(marker[0]) + "{" + str(len(marker)) + r",}\s*$")
            body: List[str] = []
            i += 1
            while i < n and not close_re.match(lines[i]):
                body.append(lines[i])
                i += 1
            i += 1  # skip the closing fence (or run off the end)
            nodes.append(CodeBlock(code="\n".join(body), language=language, fenced=True))
            continue

        # Thematic break (checked before lists: `---` vs `- item`).
        if _THEMATIC_RE.match(line):
            nodes.append(ThematicBreak())
            i += 1
            continue

        # ATX heading.
        atx = _ATX_RE.match(line.lstrip())
        if atx and len(line) - len(line.lstrip()) <= 3:
            nodes.append(Heading(level=len(atx.group(1)), text=atx.group(2)))
            i += 1
            continue

        # Blockquote: gather the contiguous quoted run, strip markers, recurse.
        if _QUOTE_RE.match(line):
            quoted: List[str] = []
            while i < n:
                m = _QUOTE_RE.match(lines[i])
                if m:
                    quoted.append(m.group(1))
                elif not _is_blank(lines[i]) and quoted and not _is_blank(quoted[-1]):
                    quoted.append(lines[i])  # lazy continuation
                else:
                    break
                i += 1
            nodes.append(BlockQuote(children=_parse_lines(quoted)))
            continue

        # Lists.
        if _BULLET_RE.match(line) or _ORDERED_RE.match(line):
            block, i = _parse_list(lines, i)
            nodes.append(block)
            continue

        # Indented code block (4+ spaces, not a list continuation).
        if line.startswith("    "):
            body = []
            while i < n and (lines[i].startswith("    ") or _is_blank(lines[i])):
                body.append(lines[i][4:] if lines[i].startswith("    ") else "")
                i += 1
            while body and not body[-1].strip():
                body.pop()
            nodes.append(CodeBlock(code="\n".join(body), fenced=False))
            continue

        # Raw HTML block.
        if _HTML_BLOCK_RE.match(line):
            body = []
            while i < n and not _is_blank(lines[i]):
                body.append(lines[i])
                i += 1
            nodes.append(HtmlBlock(html="\n".join(body)))
            continue

        # Paragraph (with setext heading lookahead).
        para: List[Tuple[str, bool]] = []  # (content, ends-with-hard-break)
        while i < n and not _is_blank(lines[i]):
            nxt = lines[i]
            if para:
                setext = _SETEXT_RE.match(nxt)
                if setext:
                    level = 1 if setext.group(1)[0] == "=" else 2
                    nodes.append(Heading(
                        level=level, text=" ".join(s for s, _ in para)))
                    para = []
                    i += 1
                    break
                if (_BULLET_RE.match(nxt) or _ORDERED_RE.match(nxt)
                        or _QUOTE_RE.match(nxt) or _FENCE_RE.match(nxt)
                        or _THEMATIC_RE.match(nxt)
                        or (_ATX_RE.match(nxt.lstrip()) and len(nxt) - len(nxt.lstrip()) <= 3)):
                    break
            para.append((nxt.strip(), nxt.endswith("  ")))
            i += 1
        if para:
            nodes.append(Paragraph(text=_join_paragraph(para)))
    return nodes


def _join_paragraph(parts: List[Tuple[str, bool]]) -> str:
    """Join paragraph lines; trailing double spaces become hard breaks."""
    out = []
    for index, (content, hard) in enumerate(parts):
        out.append(content)
        if index < len(parts) - 1:
            out.append("  \n" if hard else " ")
    return "".join(out)


def _match_list_item(line: str) -> Optional[Tuple[bool, int, int, str]]:
    """Return (ordered, start, content_indent, first_content) or None."""
    m = _BULLET_RE.match(line)
    if m:
        indent = len(m.group(1)) + len(m.group(2)) + 1
        return False, 1, indent, m.group(3)
    m = _ORDERED_RE.match(line)
    if m:
        indent = len(m.group(1)) + len(m.group(2)) + len(m.group(3)) + 1
        return True, int(m.group(2)), indent, m.group(4)
    return None


def _parse_list(lines: List[str], i: int) -> Tuple[ListBlock, int]:
    """Parse a run of list items starting at ``lines[i]``."""
    first = _match_list_item(lines[i])
    assert first is not None
    ordered = first[0]
    block = ListBlock(ordered=ordered, start=first[1])
    n = len(lines)
    saw_blank_inside = False
    while i < n:
        line = lines[i]
        item_match = _match_list_item(line)
        if item_match is None:
            break
        if item_match[0] != ordered:
            break  # list type change ends this list
        _, _, content_indent, first_content = item_match
        item_lines = [first_content]
        i += 1
        blank_run = 0
        while i < n:
            cont = lines[i]
            if _is_blank(cont):
                blank_run += 1
                if blank_run > 1:
                    break
                item_lines.append("")
                i += 1
                continue
            stripped_indent = len(cont) - len(cont.lstrip())
            if stripped_indent >= content_indent:
                item_lines.append(cont[content_indent:])
                blank_run = 0
                i += 1
                continue
            if blank_run == 0 and _match_list_item(cont) is None and not _QUOTE_RE.match(cont):
                # Lazy continuation of the item's trailing paragraph.
                item_lines.append(cont.strip())
                i += 1
                continue
            break
        # Trailing blanks make the list loose only when another sibling
        # item follows; a blank before unrelated content just ends the
        # list.
        trailing_blank = False
        while item_lines and not item_lines[-1].strip():
            item_lines.pop()
            trailing_blank = True
        if trailing_blank and i < n and _match_list_item(lines[i]) is not None:
            saw_blank_inside = True
        if any(_is_blank(l) for l in item_lines):
            saw_blank_inside = True
        block.items.append(ListItem(children=_parse_lines(item_lines)))
        # Skip blank separator lines between sibling items.
        while i < n and _is_blank(lines[i]):
            nxt = i + 1
            if nxt < n and _match_list_item(lines[nxt]) is not None:
                saw_blank_inside = True
                i += 1
            else:
                break
    block.tight = not saw_blank_inside
    return block, i
