"""HTML rendering of the markdown AST."""

from __future__ import annotations

from typing import List

from repro.functions.markdown_engine.blocks import parse_blocks
from repro.functions.markdown_engine.inline import escape_html, render_inline
from repro.functions.markdown_engine.nodes import (
    BlockQuote,
    CodeBlock,
    Document,
    Heading,
    HtmlBlock,
    ListBlock,
    ListItem,
    Node,
    Paragraph,
    ThematicBreak,
)


def render(text: str) -> str:
    """Render markdown ``text`` to an HTML fragment."""
    return _render_children(parse_blocks(text).children)


def render_document(text: str, title: str = "Rendered Markdown") -> str:
    """Render markdown to a complete HTML page (what the paper's
    Markdown Render function returns for each request)."""
    body = render(text)
    return (
        "<!DOCTYPE html>\n<html>\n<head>\n"
        f"<meta charset=\"utf-8\" />\n<title>{escape_html(title)}</title>\n"
        "</head>\n<body>\n"
        f"{body}"
        "</body>\n</html>\n"
    )


def _render_children(children: List[Node]) -> str:
    return "".join(_render_node(node) for node in children)


def _render_node(node: Node) -> str:
    if isinstance(node, Heading):
        return f"<h{node.level}>{render_inline(node.text)}</h{node.level}>\n"
    if isinstance(node, Paragraph):
        return f"<p>{render_inline(node.text)}</p>\n"
    if isinstance(node, CodeBlock):
        lang = f' class="language-{escape_html(node.language, quote=True)}"' if node.language else ""
        return f"<pre><code{lang}>{escape_html(node.code)}\n</code></pre>\n"
    if isinstance(node, BlockQuote):
        return f"<blockquote>\n{_render_children(node.children)}</blockquote>\n"
    if isinstance(node, ListBlock):
        return _render_list(node)
    if isinstance(node, ThematicBreak):
        return "<hr />\n"
    if isinstance(node, HtmlBlock):
        return f"{node.html}\n"
    if isinstance(node, Document):
        return _render_children(node.children)
    raise TypeError(f"unknown node type: {type(node).__name__}")


def _render_list(node: ListBlock) -> str:
    tag = "ol" if node.ordered else "ul"
    start_attr = f' start="{node.start}"' if node.ordered and node.start != 1 else ""
    parts = [f"<{tag}{start_attr}>\n"]
    for item in node.items:
        parts.append(_render_item(item, tight=node.tight))
    parts.append(f"</{tag}>\n")
    return "".join(parts)


def _render_item(item: ListItem, tight: bool) -> str:
    if tight and len(item.children) == 1 and isinstance(item.children[0], Paragraph):
        return f"<li>{render_inline(item.children[0].text)}</li>\n"
    inner = _render_children(item.children)
    return f"<li>\n{inner}</li>\n"
