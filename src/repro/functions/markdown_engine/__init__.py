"""A from-scratch Markdown → HTML renderer.

This is the real compute behind the paper's "Markdown Render" function
(§4.1: "converts a markdown to an HTML page"). It supports the core of
CommonMark: ATX and setext headings, paragraphs, fenced and indented
code blocks, blockquotes, ordered/unordered (nested) lists, thematic
breaks, emphasis/strong, inline code, links, images, autolinks and hard
breaks. It is deliberately dependency-free so the function bundle is
self-contained, as in the paper's Java function.
"""

from repro.functions.markdown_engine.blocks import parse_blocks
from repro.functions.markdown_engine.render import render, render_document

__all__ = ["render", "render_document", "parse_blocks"]
