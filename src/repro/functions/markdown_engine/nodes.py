"""AST node types for the markdown engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class Node:
    """Base AST node."""


@dataclass
class Document(Node):
    children: List[Node] = field(default_factory=list)


@dataclass
class Heading(Node):
    level: int
    text: str


@dataclass
class Paragraph(Node):
    text: str


@dataclass
class CodeBlock(Node):
    code: str
    language: str = ""
    fenced: bool = False


@dataclass
class BlockQuote(Node):
    children: List[Node] = field(default_factory=list)


@dataclass
class ListItem(Node):
    children: List[Node] = field(default_factory=list)


@dataclass
class ListBlock(Node):
    ordered: bool
    start: int = 1
    tight: bool = True
    items: List[ListItem] = field(default_factory=list)


@dataclass
class ThematicBreak(Node):
    pass


@dataclass
class HtmlBlock(Node):
    html: str
