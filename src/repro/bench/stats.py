"""Statistics used by the paper's evaluation (§4.1).

Everything is implemented natively (scipy is only used by the test
suite to cross-check):

* bootstrap percentile confidence intervals for medians, following
  Efron & Tibshirani [6] — the paper's error bars;
* the Shapiro–Wilk W test via Royston's AS R94 approximation [24] —
  the paper's normality screen;
* the Wilcoxon–Mann–Whitney U test (normal approximation with tie
  correction) — the paper's median-equality test;
* a bootstrap CI for the median *difference* — the paper reports e.g.
  "[40.35, 42.29] ms" for NOOP;
* ECDFs and the Kolmogorov–Smirnov distance — Figure 7's comparison.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple


def median(values: Sequence[float]) -> float:
    """Sample median (average of middle pair for even n)."""
    if not values:
        raise ValueError("median of empty sample")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile (numpy 'linear' method)."""
    if not values:
        raise ValueError("quantile of empty sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    pos = q * (len(ordered) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    if ordered[lo] == ordered[hi]:
        # Avoid 1-ulp drift from interpolating between equal values.
        return float(ordered[lo])
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


# ---------------------------------------------------------------------------
# Bootstrap
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided interval with its nominal confidence level."""

    low: float
    high: float
    confidence: float
    point: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def overlaps(self, other: "ConfidenceInterval") -> bool:
        return self.low <= other.high and other.low <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low


def bootstrap_median_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI for the median [6]."""
    if len(values) < 2:
        raise ValueError("bootstrap needs at least 2 observations")
    rng = random.Random(seed)
    data = list(values)
    n = len(data)
    medians = []
    for _ in range(resamples):
        sample = [data[rng.randrange(n)] for _ in range(n)]
        medians.append(median(sample))
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        low=quantile(medians, alpha),
        high=quantile(medians, 1.0 - alpha),
        confidence=confidence,
        point=median(data),
    )


def median_difference_ci(
    a: Sequence[float],
    b: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Bootstrap CI for ``median(a) - median(b)`` (independent samples)."""
    if len(a) < 2 or len(b) < 2:
        raise ValueError("bootstrap needs at least 2 observations per sample")
    rng = random.Random(seed)
    la, lb = list(a), list(b)
    na, nb = len(la), len(lb)
    diffs = []
    for _ in range(resamples):
        ma = median([la[rng.randrange(na)] for _ in range(na)])
        mb = median([lb[rng.randrange(nb)] for _ in range(nb)])
        diffs.append(ma - mb)
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        low=quantile(diffs, alpha),
        high=quantile(diffs, 1.0 - alpha),
        confidence=confidence,
        point=median(la) - median(lb),
    )


# ---------------------------------------------------------------------------
# Shapiro-Wilk (Royston 1995, AS R94 approximation)
# ---------------------------------------------------------------------------

def _norm_ppf(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation)."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"ppf argument must be in (0, 1), got {p}")
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p > p_high:
        q = math.sqrt(-2 * math.log(1 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1)


def _norm_cdf(x: float) -> float:
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def _poly(coeffs: Sequence[float], x: float) -> float:
    """Evaluate c[0] + c[1]x + c[2]x^2 + ..."""
    return sum(c * x ** i for i, c in enumerate(coeffs))


@dataclass(frozen=True)
class TestResult:
    """Statistic + p-value of a hypothesis test."""

    statistic: float
    p_value: float

    def rejects_at(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def shapiro_wilk(values: Sequence[float]) -> TestResult:
    """Shapiro–Wilk normality test (3 <= n <= 5000), Royston AS R94."""
    x = sorted(values)
    n = len(x)
    if n < 3:
        raise ValueError("Shapiro-Wilk needs n >= 3")
    if n > 5000:
        raise ValueError("Shapiro-Wilk approximation valid for n <= 5000")
    if x[0] == x[-1]:
        raise ValueError("Shapiro-Wilk is undefined for constant samples")

    # Expected values of normal order statistics (Blom approximation).
    m = [_norm_ppf((i + 1 - 0.375) / (n + 0.25)) for i in range(n)]
    m_sq = sum(v * v for v in m)
    c = [v / math.sqrt(m_sq) for v in m]
    u = 1.0 / math.sqrt(n)

    # Royston's polynomial-corrected weights for the two largest order stats.
    a = [0.0] * n
    if n == 3:
        a[2] = math.sqrt(0.5)
        a[0] = -a[2]
    else:
        a_n = _poly((c[n - 1], 0.221157, -0.147981, -2.071190, 4.434685, -2.706056), u)
        a_n1 = _poly((c[n - 2], 0.042981, -0.293762, -1.752461, 5.682633, -3.582633), u)
        if n <= 5:
            phi = (m_sq - 2 * m[n - 1] ** 2) / (1 - 2 * a_n ** 2)
            a[n - 1] = a_n
            a[0] = -a_n
            for i in range(1, n - 1):
                a[i] = m[i] / math.sqrt(phi)
        else:
            phi = (m_sq - 2 * m[n - 1] ** 2 - 2 * m[n - 2] ** 2) / \
                  (1 - 2 * a_n ** 2 - 2 * a_n1 ** 2)
            a[n - 1] = a_n
            a[n - 2] = a_n1
            a[0] = -a_n
            a[1] = -a_n1
            for i in range(2, n - 2):
                a[i] = m[i] / math.sqrt(phi)

    mean_x = sum(x) / n
    ss = sum((v - mean_x) ** 2 for v in x)
    w_num = sum(a[i] * x[i] for i in range(n)) ** 2
    w = w_num / ss
    w = min(w, 1.0)

    # P-value via the normalizing transformation of (1 - W).
    if n == 3:
        pw = 6.0 / math.pi * (math.asin(math.sqrt(w)) - math.asin(math.sqrt(0.75)))
        return TestResult(statistic=w, p_value=max(0.0, min(1.0, pw)))
    y = math.log(1.0 - w)
    ln_n = math.log(n)
    if n <= 11:
        gamma = _poly((-2.273, 0.459), n)
        mu = _poly((0.5440, -0.39978, 0.025054, -6.714e-4), n)
        sigma = math.exp(_poly((1.3822, -0.77857, 0.062767, -0.0020322), n))
        z = (-math.log(gamma - y) - mu) / sigma
    else:
        mu = _poly((-1.5861, -0.31082, -0.083751, 0.0038915), ln_n)
        sigma = math.exp(_poly((-0.4803, -0.082676, 0.0030302), ln_n))
        z = (y - mu) / sigma
    return TestResult(statistic=w, p_value=1.0 - _norm_cdf(z))


# ---------------------------------------------------------------------------
# Wilcoxon-Mann-Whitney
# ---------------------------------------------------------------------------

def _rank_with_ties(combined: List[float]) -> Tuple[List[float], List[int]]:
    """Midranks of ``combined`` plus tie-group sizes."""
    order = sorted(range(len(combined)), key=lambda i: combined[i])
    ranks = [0.0] * len(combined)
    tie_sizes: List[int] = []
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and combined[order[j + 1]] == combined[order[i]]:
            j += 1
        midrank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = midrank
        tie_sizes.append(j - i + 1)
        i = j + 1
    return ranks, tie_sizes


def mann_whitney_u(a: Sequence[float], b: Sequence[float]) -> TestResult:
    """Two-sided Wilcoxon–Mann–Whitney U test (normal approximation).

    The paper: "we used the non-parametric Wilcoxon-Mann-Whitney Test
    to check if both medians are equal".
    """
    na, nb = len(a), len(b)
    if na < 1 or nb < 1:
        raise ValueError("both samples must be non-empty")
    combined = list(a) + list(b)
    ranks, tie_sizes = _rank_with_ties(combined)
    rank_sum_a = sum(ranks[:na])
    u_a = rank_sum_a - na * (na + 1) / 2.0
    n = na + nb
    mean_u = na * nb / 2.0
    tie_term = sum(t ** 3 - t for t in tie_sizes)
    var_u = na * nb / 12.0 * ((n + 1) - tie_term / (n * (n - 1))) if n > 1 else 0.0
    if var_u <= 0:
        # All observations identical: no evidence of difference.
        return TestResult(statistic=u_a, p_value=1.0)
    z = (u_a - mean_u + (0.5 if u_a < mean_u else -0.5)) / math.sqrt(var_u)
    p = 2.0 * (1.0 - _norm_cdf(abs(z)))
    return TestResult(statistic=u_a, p_value=max(0.0, min(1.0, p)))


def hodges_lehmann(a: Sequence[float], b: Sequence[float]) -> float:
    """Hodges–Lehmann estimator of the location shift between samples.

    The median of all pairwise differences ``a_i - b_j`` — the point
    estimator associated with the Mann–Whitney test the paper uses for
    its median-difference statements. O(n·m); fine at the paper's
    n = m = 200.
    """
    if not a or not b:
        raise ValueError("both samples must be non-empty")
    diffs = [x - y for x in a for y in b]
    return median(diffs)


# ---------------------------------------------------------------------------
# ECDF / Kolmogorov-Smirnov
# ---------------------------------------------------------------------------

def ecdf(values: Sequence[float]) -> Tuple[List[float], List[float]]:
    """Empirical CDF as (sorted xs, cumulative probabilities)."""
    if not values:
        raise ValueError("ecdf of empty sample")
    xs = sorted(values)
    n = len(xs)
    ps = [(i + 1) / n for i in range(n)]
    return xs, ps


def ecdf_at(values: Sequence[float], x: float) -> float:
    """F(x) for the sample's ECDF."""
    xs = sorted(values)
    count = 0
    for v in xs:
        if v <= x:
            count += 1
        else:
            break
    return count / len(xs)


def ks_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sample Kolmogorov–Smirnov statistic sup |F_a - F_b|."""
    if not a or not b:
        raise ValueError("both samples must be non-empty")
    points = sorted(set(a) | set(b))
    return max(abs(ecdf_at(a, x) - ecdf_at(b, x)) for x in points)
