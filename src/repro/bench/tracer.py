"""Phase tracer — the repo's bpftrace (paper §4.2.1).

"We divided the function start-up into four components (or phases):
i) execution of the clone system call (CLONE), ii) execution of the
exec system call (EXEC), iii) the period between the end of the exec
call and the start of the main() procedure (runtime start-up - RTS)
and iv) from the end of the RTS phase to when the function is ready to
serve the first request (application initialization - APPINIT)."

The tracer subscribes to the kernel probe registry and computes those
boundaries from observed events; nothing is read out of the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.osproc.kernel import Kernel
from repro.osproc.probes import SyscallRecord


@dataclass(frozen=True)
class PhaseBreakdown:
    """Durations of the four start-up phases (ms)."""

    clone_ms: float
    exec_ms: float
    rts_ms: float
    appinit_ms: float

    @property
    def total_ms(self) -> float:
        return self.clone_ms + self.exec_ms + self.rts_ms + self.appinit_ms

    def as_dict(self) -> dict:
        return {
            "CLONE": self.clone_ms,
            "EXEC": self.exec_ms,
            "RTS": self.rts_ms,
            "APPINIT": self.appinit_ms,
        }


class TraceError(Exception):
    """The observed event stream did not contain a full episode."""


class PhaseTracer:
    """Records one start-up episode's probe events and derives phases."""

    WATCHED = ("clone", "execve", "runtime.main", "runtime.ready",
               "runtime.first_response", "criu.restore")

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.events: List[SyscallRecord] = []
        self._armed = False
        for syscall in self.WATCHED:
            kernel.probes.on_enter(syscall, self._record)
            kernel.probes.on_exit(syscall, self._record)

    def _record(self, record: SyscallRecord) -> None:
        if self._armed:
            self.events.append(record)

    def start_episode(self) -> None:
        """Begin recording (attach right before the replica start)."""
        self.events = []
        self._armed = True

    def stop_episode(self) -> None:
        self._armed = False

    # -- analysis --------------------------------------------------------------

    def _first(self, syscall: str, phase: str) -> Optional[SyscallRecord]:
        for event in self.events:
            if event.syscall == syscall and event.phase == phase:
                return event
        return None

    def breakdown(self) -> PhaseBreakdown:
        """Compute CLONE/EXEC/RTS/APPINIT from the recorded episode."""
        clone_in = self._first("clone", "enter")
        clone_out = self._first("clone", "exit")
        exec_in = self._first("execve", "enter")
        exec_out = self._first("execve", "exit")
        ready = self._first("runtime.ready", "enter")
        if not (clone_in and clone_out and exec_in and exec_out):
            raise TraceError(
                "episode is missing clone/exec events; events: "
                + ", ".join(f"{e.syscall}:{e.phase}" for e in self.events)
            )
        if ready is None:
            raise TraceError("episode never reached runtime.ready")
        main = self._first("runtime.main", "enter")
        if main is not None:
            rts = main.timestamp - exec_out.timestamp
            appinit_start = main.timestamp
        else:
            # Restored processes skip main(): RTS is identically zero
            # ("prebaking brings the RTS down to 0ms", §4.2.1).
            rts = 0.0
            appinit_start = exec_out.timestamp
        return PhaseBreakdown(
            clone_ms=clone_out.timestamp - clone_in.timestamp,
            exec_ms=exec_out.timestamp - exec_in.timestamp,
            rts_ms=rts,
            appinit_ms=ready.timestamp - appinit_start,
        )
