"""Platform-level cold-start study: prebake vs vanilla vs warm pool.

Replays an arrival trace (see :mod:`repro.bench.arrivals`) against the
FaaS platform and measures what the paper's introduction frames as the
trade-off space:

* cold-start *frequency* (how often the idle-timeout GC leaves no
  replica alive when a request arrives);
* the *latency* those cold starts impose on requests (prebaking's
  lever);
* the *standing memory cost* of keeping instances warm (the pool
  strategy's price, which prebaking avoids).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro import make_world
from repro.bench.stats import quantile
from repro.core.policy import AfterWarmup, SnapshotPolicy
from repro.faas.platform import FaaSPlatform, PlatformConfig
from repro.faas.autoscaler import AutoscalerConfig
from repro.faas.pool import WarmPool
from repro.functions.base import FunctionApp, make_app
from repro.runtime.base import Request
from repro.sim.rng import _derive_seed


@dataclass
class StudyResult:
    """Outcome of one strategy under one trace."""

    strategy: str
    requests: int
    cold_starts: int
    queued_ms: List[float] = field(default_factory=list)
    idle_mib_ms: float = 0.0

    @property
    def cold_fraction(self) -> float:
        return self.cold_starts / self.requests if self.requests else 0.0

    def latency_p(self, q: float) -> float:
        """Quantile of request queueing latency (cold-start exposure)."""
        if not self.queued_ms:
            return 0.0
        return quantile(self.queued_ms, q)

    @property
    def idle_gib_hours(self) -> float:
        return self.idle_mib_ms / (1024.0 * 3_600_000.0)


def _resolve(function) -> Callable[[], FunctionApp]:
    if callable(function):
        return function
    return lambda: make_app(function)


def run_platform_study(
    function,
    technique: str,
    arrivals: List[float],
    idle_timeout_ms: float = 60_000.0,
    policy: Optional[SnapshotPolicy] = None,
    seed: int = 42,
) -> StudyResult:
    """Replay ``arrivals`` against a platform using ``technique``."""
    factory = _resolve(function)
    world = make_world(seed=_derive_seed(seed, f"study-{technique}"))
    platform = FaaSPlatform(world.kernel, PlatformConfig(
        autoscaler=AutoscalerConfig(idle_timeout_ms=idle_timeout_ms),
    ))
    platform.register_function(
        factory,
        start_technique=technique,
        snapshot_policy=policy or AfterWarmup(requests=1),
        idle_timeout_ms=idle_timeout_ms,
    )
    name = factory().name
    idle_mib_ms = 0.0
    last_t = world.now
    for arrival in arrivals:
        target = max(arrival, world.now)
        # Integrate replica memory held while idle-waiting for traffic.
        # GC only reconciles at arrivals, but the *accounting* caps each
        # replica's held window at its idle-timeout deadline — the point
        # a continuously-running reconciler would have reclaimed it.
        for replica in platform.deployer.replicas(name):
            deadline = replica.last_active_ms + idle_timeout_ms
            held_until = min(target, max(deadline, last_t))
            idle_mib_ms += (replica.handle.process.rss_mib
                            * max(0.0, held_until - last_t))
        if target > world.now:
            world.clock.set_time(target)
        platform.gc_tick()
        platform.invoke(name, Request())
        last_t = world.now
    stats = platform.router.stats
    return StudyResult(
        strategy=technique,
        requests=stats.invocations,
        cold_starts=stats.cold_starts,
        queued_ms=[r.queued_ms for r in stats.records],
        idle_mib_ms=idle_mib_ms,
    )


def run_pool_study(
    function,
    arrivals: List[float],
    pool_size: int = 1,
    seed: int = 42,
) -> StudyResult:
    """Replay ``arrivals`` against a warm pool of vanilla instances."""
    factory = _resolve(function)
    world = make_world(seed=_derive_seed(seed, "study-pool"))
    from repro.core.starters import VanillaStarter
    pool = WarmPool(world.kernel, VanillaStarter(world.kernel), factory,
                    size=pool_size)
    pool.refill()
    queued = []
    cold = 0
    for arrival in arrivals:
        if arrival > world.now:
            world.clock.set_time(arrival)
        before = world.now
        was_hit = pool.idle_count > 0
        response = pool.serve(Request())
        # Pool hit: the request waits only for dispatch (0); miss: it
        # waits for a full vanilla cold start.
        queued.append(response.started_ms - before)
        if not was_hit:
            cold += 1
        pool.refill()
    return StudyResult(
        strategy=f"pool-{pool_size}",
        requests=len(arrivals),
        cold_starts=cold,
        queued_ms=queued,
        idle_mib_ms=pool.snapshot_idle_cost(),
    )


def run_multi_function_study(
    trace_events,
    techniques: Optional[dict] = None,
    idle_timeout_ms: float = 60_000.0,
    seed: int = 42,
) -> List[StudyResult]:
    """Replay a multi-function :class:`~repro.bench.traces.TraceEvent`
    trace against one platform hosting every named function.

    ``techniques`` maps function name → "vanilla" | "prebake"
    (default: prebake for everything). Returns one StudyResult per
    function so the heavy head and cold tail can be compared.
    """
    trace_events = sorted(trace_events, key=lambda e: e.at_ms)
    names = sorted({event.function for event in trace_events})
    if not names:
        raise ValueError("trace has no events")
    techniques = techniques or {}
    world = make_world(seed=_derive_seed(seed, "multi-study"))
    platform = FaaSPlatform(world.kernel, PlatformConfig(
        nodes=4,
        autoscaler=AutoscalerConfig(idle_timeout_ms=idle_timeout_ms),
    ))
    for name in names:
        platform.register_function(
            _resolve(name),
            start_technique=techniques.get(name, "prebake"),
            snapshot_policy=AfterWarmup(requests=1),
            idle_timeout_ms=idle_timeout_ms,
        )
    for event in trace_events:
        if event.at_ms > world.now:
            world.clock.set_time(event.at_ms)
        platform.gc_tick()
        platform.invoke(event.function, Request())
    results = []
    for name in names:
        records = [r for r in platform.router.stats.records
                   if r.function == name]
        results.append(StudyResult(
            strategy=f"{name}({techniques.get(name, 'prebake')})",
            requests=len(records),
            cold_starts=sum(1 for r in records if r.cold_start),
            queued_ms=[r.queued_ms for r in records],
        ))
    return results


def compare_strategies(
    function,
    arrivals: List[float],
    idle_timeout_ms: float = 60_000.0,
    pool_size: int = 1,
    seed: int = 42,
) -> List[StudyResult]:
    """Run vanilla, prebake and warm-pool over the same trace."""
    return [
        run_platform_study(function, "vanilla", arrivals,
                           idle_timeout_ms=idle_timeout_ms, seed=seed),
        run_platform_study(function, "prebake", arrivals,
                           idle_timeout_ms=idle_timeout_ms, seed=seed),
        run_pool_study(function, arrivals, pool_size=pool_size, seed=seed),
    ]


def render_study(results: List[StudyResult], title: str) -> str:
    from repro.bench.report import format_table
    rows = []
    for r in results:
        rows.append([
            r.strategy,
            str(r.requests),
            f"{100 * r.cold_fraction:.1f}%",
            f"{r.latency_p(0.50):.2f}",
            f"{r.latency_p(0.99):.2f}",
            f"{r.idle_mib_ms / 1e6:.2f}",
        ])
    return title + "\n" + format_table(
        ["strategy", "requests", "cold starts", "p50 wait(ms)",
         "p99 wait(ms)", "idle MiB*ks"],
        rows,
    )
