"""Invocation-trace files and a production-shaped synthesizer.

Workload studies become comparable when traces are artifacts: this
module reads/writes arrival traces as JSONL and CSV, and synthesizes a
multi-function workload with the heavy-tailed popularity and bursty
per-function behaviour production FaaS traces show (cf. the Azure
Functions trace analyses): a few hot functions dominate, a long tail is
invoked rarely — exactly the regime where cold starts happen.
"""

from __future__ import annotations

import csv
import io
import json
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.bench.arrivals import bursty_arrivals, poisson_arrivals


class TraceFormatError(Exception):
    """Unreadable trace data."""


@dataclass(frozen=True)
class TraceEvent:
    """One invocation in a multi-function trace."""

    at_ms: float
    function: str

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise TraceFormatError(f"negative timestamp {self.at_ms}")
        if not self.function:
            raise TraceFormatError("empty function name")


def sort_trace(events: Iterable[TraceEvent]) -> List[TraceEvent]:
    return sorted(events, key=lambda e: (e.at_ms, e.function))


# ---------------------------------------------------------------------------
# File formats
# ---------------------------------------------------------------------------

def dump_jsonl(events: Iterable[TraceEvent]) -> str:
    """Serialize to JSON-lines (one event per line)."""
    lines = [json.dumps({"at_ms": e.at_ms, "function": e.function},
                        separators=(",", ":"))
             for e in events]
    return "\n".join(lines) + ("\n" if lines else "")


def load_jsonl(text: str) -> List[TraceEvent]:
    events = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            events.append(TraceEvent(at_ms=float(record["at_ms"]),
                                     function=str(record["function"])))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(f"line {lineno}: {exc}") from exc
    return sort_trace(events)


def dump_csv(events: Iterable[TraceEvent]) -> str:
    """Serialize to CSV with an ``at_ms,function`` header."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["at_ms", "function"])
    for event in events:
        writer.writerow([f"{event.at_ms:.3f}", event.function])
    return buffer.getvalue()


def load_csv(text: str) -> List[TraceEvent]:
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise TraceFormatError("empty CSV") from None
    if [h.strip() for h in header] != ["at_ms", "function"]:
        raise TraceFormatError(f"unexpected CSV header {header!r}")
    events = []
    for lineno, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) != 2:
            raise TraceFormatError(f"line {lineno}: expected 2 columns")
        try:
            events.append(TraceEvent(at_ms=float(row[0]), function=row[1]))
        except ValueError as exc:
            raise TraceFormatError(f"line {lineno}: {exc}") from exc
    return sort_trace(events)


# ---------------------------------------------------------------------------
# Synthesis
# ---------------------------------------------------------------------------

def synthesize_workload(
    functions: List[str],
    duration_ms: float,
    total_rate_per_s: float = 10.0,
    zipf_s: float = 1.2,
    bursty_fraction: float = 0.3,
    seed: int = 0,
) -> List[TraceEvent]:
    """Synthesize a multi-function trace with production shape.

    Function popularity follows a Zipf law with exponent ``zipf_s``; a
    ``bursty_fraction`` of the functions get on/off arrival processes,
    the rest are Poisson.
    """
    if not functions:
        raise TraceFormatError("need at least one function")
    if not 0.0 <= bursty_fraction <= 1.0:
        raise TraceFormatError(
            f"bursty_fraction must be in [0, 1], got {bursty_fraction}")
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** zipf_s for rank in range(len(functions))]
    total_weight = sum(weights)
    events: List[TraceEvent] = []
    for index, (function, weight) in enumerate(zip(functions, weights)):
        rate = total_rate_per_s * weight / total_weight
        if rate <= 0:
            continue
        sub_seed = rng.randrange(2 ** 31)
        if rng.random() < bursty_fraction:
            arrivals = bursty_arrivals(
                burst_rate_per_s=max(rate * 10, 1.0),
                duration_ms=duration_ms,
                mean_on_ms=2_000.0,
                mean_off_ms=max(2_000.0, 20_000.0 / max(rate, 0.01)),
                seed=sub_seed,
            )
        else:
            arrivals = poisson_arrivals(rate, duration_ms, seed=sub_seed)
        events.extend(TraceEvent(at_ms=t, function=function) for t in arrivals)
    return sort_trace(events)


def synthesize_fleet_workload(
    function_count: int,
    duration_ms: float,
    requests: int,
    zipf_s: float = 1.2,
    bursty_fraction: float = 0.3,
    diurnal_period_ms: float = 3_600_000.0,
    diurnal_floor: float = 0.1,
    mean_on_ms: float = 2_000.0,
    mean_off_ms: float = 20_000.0,
    margin: float = 1.08,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fleet-scale trace: Zipf popularity × (diurnal ∘ bursty) arrivals.

    The millions-of-requests sibling of :func:`synthesize_workload`:
    instead of a list of :class:`TraceEvent` objects it returns two
    parallel numpy arrays — sorted arrival times (ms, float64) and
    function indices (int32) — so the X12 fleet study can stream a
    ≥1M-request trace without materializing a million Python objects.

    Shape: function popularity is Zipf(``zipf_s``); a deterministic
    ``bursty_fraction`` of functions arrive as interrupted-Poisson
    bursts (exponential ON/OFF periods), the rest as homogeneous
    Poisson; every arrival is then thinned against a sinusoidal
    diurnal rate curve, composing the daily cycle onto both shapes.
    Per-function rates are pre-scaled by the expected thinning/duty
    losses plus ``margin``, and a deterministic top-up on the hottest
    function makes ``len(times) >= requests`` a hard guarantee rather
    than an expectation.
    """
    if function_count < 1:
        raise TraceFormatError("need at least one function")
    if duration_ms <= 0 or requests < 1:
        raise TraceFormatError("duration and requests must be positive")
    if not 0.0 <= bursty_fraction <= 1.0:
        raise TraceFormatError(
            f"bursty_fraction must be in [0, 1], got {bursty_fraction}")
    rng = np.random.Generator(np.random.PCG64(seed))
    ranks = np.arange(1, function_count + 1, dtype=np.float64)
    weights = ranks ** -zipf_s
    weights /= weights.sum()
    # Expected survival of the diurnal thinning below, and the ON-duty
    # fraction of the bursty processes: both divide the raw rate so
    # the post-thinning count lands on target * margin.
    diurnal_keep = diurnal_floor + (1.0 - diurnal_floor) / 2.0
    duty = mean_on_ms / (mean_on_ms + mean_off_ms)
    targets = requests * margin * weights / diurnal_keep
    is_bursty = rng.random(function_count) < bursty_fraction

    time_parts: List[np.ndarray] = []
    fid_parts: List[np.ndarray] = []
    for fid in range(function_count):
        if is_bursty[fid]:
            # Interrupted Poisson: exponential ON/OFF windows, uniform
            # arrivals inside each ON window at the burst rate.
            rate_per_ms = targets[fid] / (duty * duration_ms)
            chunks = []
            t, on = 0.0, False
            while t < duration_ms:
                period = rng.exponential(mean_on_ms if on else mean_off_ms)
                if on:
                    end = min(t + period, duration_ms)
                    n = rng.poisson(rate_per_ms * (end - t))
                    if n:
                        chunks.append(t + rng.random(n) * (end - t))
                t += period
                on = not on
            arrivals = (np.concatenate(chunks) if chunks
                        else np.empty(0, dtype=np.float64))
        else:
            # Homogeneous Poisson on [0, D): Poisson count, uniform order
            # statistics (exact, and fully vectorized).
            n = rng.poisson(targets[fid])
            arrivals = rng.random(n) * duration_ms
        if arrivals.size:
            time_parts.append(arrivals)
            fid_parts.append(np.full(arrivals.size, fid, dtype=np.int32))

    times = (np.concatenate(time_parts) if time_parts
             else np.empty(0, dtype=np.float64))
    fids = (np.concatenate(fid_parts) if fid_parts
            else np.empty(0, dtype=np.int32))
    # Diurnal composition by thinning (same curve as diurnal_arrivals).
    phase = np.sin(2 * np.pi * times / diurnal_period_ms - np.pi / 2)
    keep_fraction = diurnal_floor + (1 - diurnal_floor) * (phase + 1) / 2
    kept = rng.random(times.size) < keep_fraction
    times, fids = times[kept], fids[kept]
    shortfall = requests - times.size
    if shortfall > 0:
        extra = rng.random(shortfall) * duration_ms
        times = np.concatenate([times, extra])
        fids = np.concatenate(
            [fids, np.zeros(shortfall, dtype=np.int32)])
    order = np.argsort(times, kind="stable")
    return times[order], fids[order]


def per_function_counts(events: Iterable[TraceEvent]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for event in events:
        counts[event.function] = counts.get(event.function, 0) + 1
    return counts
