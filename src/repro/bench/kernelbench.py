"""Kernel throughput microbenchmark: events/sec, fast vs reference (X11).

Every other bench in this repo reports *simulated* milliseconds — the
cost model's answer, identical on any machine. This one measures the
opposite axis: how fast the simulation kernel itself chews through a
fixed, seeded fig3-style workload in *wall-clock* time, with the
vectorized pagemap backend and with the per-page reference backend
(``REPRO_SLOW_PAGEMAP=1``) in the same process.

The workload is deterministic: start-up episodes (deploy → prebake
restore → vanilla boot, exercising checkpoint/restore and the CRIU
chunk paths), a direct pagemap stress (touch_range / incremental dump
/ bulk populate over multi-MiB VMAs), and an event storm on the
discrete-event engine (bulk scheduling, coroutine sleeps, signal
waits, cancellations). Simulated work — and therefore the event count
— is byte-identical under both backends, so

    speedup_vs_reference = fast events/sec ÷ reference events/sec
                         = reference wall ÷ fast wall

is a machine-independent ratio: both runs execute on the same
hardware, back to back. The continuous-perf gate
(:mod:`repro.bench.baseline`, bench ``kernel-throughput``) enforces
that ratio plus the deterministic event total; raw events/sec is
reported and archived as a profile artifact but never gated — it means
nothing across different machines.

The "events" numerator is the sum of three deterministic counters:
syscall probe emissions (``kernel.probes.events_emitted``), engine
dispatches (``Simulation.events_dispatched``), and pages processed by
the pagemap stress. It is a fixed measure of work, not a claim that
all events cost the same.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass
from typing import Dict, List, Union

from repro.bench.report import format_table
from repro.core.policy import AfterReady
from repro.osproc.memory import (
    PAGE_SIZE,
    VMAKind,
    pagemap_backend,
    set_slow_pagemap,
    slow_pagemap_enabled,
)
from repro.sim.engine import Simulation
from repro.sim.events import Signal
from repro.sim.rng import _derive_seed

DEFAULT_TARGET_EVENTS = 60_000

# The refactor's contract (ISSUE: "gated events/sec throughput
# baseline"): the vectorized kernel must beat the per-page reference
# by at least this factor on the fixed workload, on any machine.
SPEEDUP_HARD_FLOOR = 4.0


# ---------------------------------------------------------------------------
# Workload components — each returns its deterministic event count
# ---------------------------------------------------------------------------


def _startup_episode(seed: int, index: int) -> int:
    """One fig3-style episode: deploy + prebake restore + vanilla boot.

    Imports locally so ``repro.bench.baseline --help`` style paths do
    not drag the whole world in; returns the kernel's probe-event
    count, which depends only on (seed, index).
    """
    from repro import make_world
    from repro.core.manager import PrebakeManager
    from repro.functions.base import make_app

    world = make_world(seed=_derive_seed(seed, f"kernel-bench-{index}"))
    kernel = world.kernel
    manager = PrebakeManager(kernel)
    app = make_app("markdown")
    policy = AfterReady()
    manager.deploy(app, policy=policy)
    prebake = manager.starter(
        "prebake", policy=policy,
        version=manager.current_version(app.name))
    prebake.start(app).invoke()
    manager.starter("vanilla").start(make_app("markdown")).invoke()
    return kernel.probes.events_emitted


def _pagemap_stress(seed: int, index: int) -> int:
    """Direct VMA stress on whichever backend is active.

    Mirrors a checkpoint/diff/restore cycle at the pagemap layer: cold
    population in windows, a full dump, soft-dirty clear, sparse
    re-dirtying, an incremental dump, working-set floor, and a bulk
    restore-style populate into a fresh VMA. Page counts are exact
    functions of ``index`` — no RNG, no backend dependence.
    """
    del seed  # sized by index only; kept for signature symmetry
    backend = pagemap_backend()
    pages = 8_192
    window = 2_048
    rounds = 64
    vma = backend(start=PAGE_SIZE, length=pages * PAGE_SIZE,
                  kind=VMAKind.ANON, prot="rw-", label="bench-heap")
    processed = 0
    for rnd in range(rounds):
        for lo in range(0, pages, window):
            vma.touch_range(lo, window,
                            content_tag=f"heap:{index}:{rnd}:{lo}")
            processed += window
        processed += int(vma.touched_indices(floor=True).size)
        vma.clear_soft_dirty()
    full_indices, full_tags = vma.dump_pages()
    processed += len(full_indices)
    target = backend(start=PAGE_SIZE, length=pages * PAGE_SIZE,
                     kind=VMAKind.ANON, prot="rw-", label="bench-restore")
    target.populate_pages(full_indices, full_tags)
    processed += len(full_indices)
    if target.resident_bytes != vma.resident_bytes:
        raise RuntimeError("pagemap stress lost pages in populate")
    return processed


def _event_storm(seed: int, index: int) -> int:
    """Engine stress: bulk scheduling, coroutines, signals, cancels."""
    del seed, index  # fixed-shape storm: dispatch count is constant
    sim = Simulation()

    def noop() -> None:
        return None

    storm = 500
    sim.schedule_many(
        ((float(i % 97), noop) for i in range(storm)), label="storm")
    # Cancellations drive the tombstone-compaction path.
    doomed = [sim.schedule_in(1_000.0 + i, noop, label="doomed")
              for i in range(64)]
    for event in doomed[::2]:
        event.cancel()
    gate = Signal("bench-gate")

    def worker():
        for _ in range(5):
            yield 1.0

    def waiter():
        yield gate

    def firer():
        yield 50.0
        gate.fire(None)

    for n in range(16):
        sim.spawn(worker(), name=f"worker-{n}")
    for n in range(4):
        sim.spawn(waiter(), name=f"waiter-{n}")
    sim.spawn(firer(), name="firer")
    sim.run()
    return sim.events_dispatched


def _run_workload(target_events: int, seed: int) -> int:
    """Repeat the three components until the event budget is met."""
    events = 0
    index = 0
    while events < target_events:
        events += _startup_episode(seed, index)
        events += _pagemap_stress(seed, index)
        events += _event_storm(seed, index)
        index += 1
    return events


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass
class BackendRun:
    """One backend's timed pass over the workload."""

    backend: str        # "fast" | "reference"
    events: int
    wall_s: float

    @property
    def events_per_sec(self) -> float:
        if self.wall_s <= 0.0:
            return 0.0
        return self.events / self.wall_s

    def to_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "events": self.events,
            "wall_s": self.wall_s,
            "events_per_sec": self.events_per_sec,
        }


@dataclass
class KernelBenchResult:
    """Both passes plus the machine-independent speedup ratio."""

    seed: int
    target_events: int
    fast: BackendRun
    reference: BackendRun

    @property
    def events_total(self) -> int:
        return self.fast.events

    @property
    def speedup_vs_reference(self) -> float:
        ref = self.reference.events_per_sec
        if ref <= 0.0:
            return 0.0
        return self.fast.events_per_sec / ref

    def to_dict(self) -> Dict[str, object]:
        return {
            "bench": "kernel-throughput",
            "seed": self.seed,
            "target_events": self.target_events,
            "events_total": self.events_total,
            "speedup_vs_reference": self.speedup_vs_reference,
            "runs": [self.fast.to_dict(), self.reference.to_dict()],
        }

    def render(self) -> str:
        rows: List[List[str]] = []
        for run in (self.fast, self.reference):
            rows.append([
                run.backend,
                str(run.events),
                f"{run.wall_s:.3f}",
                f"{run.events_per_sec:,.0f}",
            ])
        table = format_table(
            ["backend", "events", "wall s", "events/sec"], rows)
        return (
            f"Kernel throughput — seed {self.seed}, "
            f"{self.events_total} events per pass\n"
            f"{table}\n"
            f"speedup vs per-page reference: "
            f"{self.speedup_vs_reference:.1f}x "
            f"(hard floor {SPEEDUP_HARD_FLOOR:.0f}x)"
        )


def kernel_bench(target_events: int = DEFAULT_TARGET_EVENTS,
                 seed: int = 42) -> KernelBenchResult:
    """Time the fixed workload under both pagemap backends.

    Runs the vectorized backend first, then the per-page reference,
    restoring whatever backend was active on entry. Raises if the two
    passes disagree on the event count — that would mean the backends
    diverged in *simulated* behaviour, which is a correctness bug, not
    a performance result.
    """
    if target_events < 1:
        raise ValueError(
            f"target_events must be a positive integer, got {target_events}")
    previous = slow_pagemap_enabled()
    try:
        set_slow_pagemap(False)
        started = time.perf_counter()
        fast_events = _run_workload(target_events, seed)
        fast = BackendRun("fast", fast_events,
                          time.perf_counter() - started)
        set_slow_pagemap(True)
        started = time.perf_counter()
        slow_events = _run_workload(target_events, seed)
        reference = BackendRun("reference", slow_events,
                               time.perf_counter() - started)
    finally:
        set_slow_pagemap(previous)
    if fast_events != slow_events:
        raise RuntimeError(
            "pagemap backends diverged: fast pass counted "
            f"{fast_events} events, reference counted {slow_events}")
    return KernelBenchResult(seed=seed, target_events=target_events,
                             fast=fast, reference=reference)


def write_kernel_bench_json(path: Union[str, pathlib.Path],
                            result: KernelBenchResult) -> pathlib.Path:
    """Archive the raw runs (incl. machine-dependent events/sec)."""
    path = pathlib.Path(path)
    path.write_text(
        json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    return path
