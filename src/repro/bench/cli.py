"""``prebake-bench``: run the paper's experiments from the shell.

Rendered tables go to stdout (pipe them into files/reports); run
diagnostics — timings, trace-file writes, errors — go to stderr as
structured ``key=value`` lines via :mod:`repro.obs.log`.

Examples::

    prebake-bench --list
    prebake-bench fig3 --repetitions 200
    prebake-bench fig4 -r 20 --trace-out fig4-trace.jsonl
    prebake-bench trace --trace-out episode.jsonl
    prebake-bench all --repetitions 100 --seed 7
"""

from __future__ import annotations

import argparse
import time
from typing import Callable, Dict, List

from repro.bench import figures
from repro.obs.log import get_logger

log = get_logger("bench")


def _run_fig3(args) -> str:
    return figures.figure3(repetitions=args.repetitions, seed=args.seed,
                           workers=args.workers).render()


def _run_fig4(args) -> str:
    return figures.figure4(repetitions=args.repetitions, seed=args.seed,
                           trace_path=args.trace_out).render()


def _run_fig5(args) -> str:
    return figures.figure5(repetitions=args.repetitions, seed=args.seed).render()


def _run_factorial(args) -> str:
    result = figures.factorial(repetitions=args.repetitions, seed=args.seed)
    return result.render_figure6() + "\n\n" + result.render_table1()


def _run_fig7(args) -> str:
    return figures.figure7(requests=args.repetitions, seed=args.seed).render()


def _run_sec5(args) -> str:
    return figures.section5(seed=args.seed).render()


def _run_ablation_restore(args) -> str:
    return figures.ablation_restore(
        repetitions=max(10, args.repetitions // 2), seed=args.seed
    ).render()


def _run_ablation_snapshot(args) -> str:
    return figures.ablation_snapshot_point(
        repetitions=max(10, args.repetitions // 2), seed=args.seed
    ).render()


def _run_ablation_bake_timing(args) -> str:
    return figures.ablation_bake_timing(
        repetitions=max(10, args.repetitions // 4), seed=args.seed
    ).render()


def _run_ext_runtimes(args) -> str:
    return figures.ext_runtimes(
        repetitions=max(10, args.repetitions // 2), seed=args.seed
    ).render()


def _run_ext_pool(args) -> str:
    from repro.bench.arrivals import bursty_arrivals
    from repro.bench.platform_study import compare_strategies, render_study
    trace = bursty_arrivals(burst_rate_per_s=20, duration_ms=600_000,
                            mean_on_ms=2_000, mean_off_ms=60_000,
                            seed=args.seed)
    results = compare_strategies("markdown", trace,
                                 idle_timeout_ms=30_000, pool_size=1)
    return render_study(results, "Bursty trace (10 min), markdown, "
                                 "30 s idle timeout")


def _run_chaos(args) -> str:
    """Fault-injection sweep: resilience of both start techniques."""
    from repro.bench.chaos import chaos_experiment
    result = chaos_experiment(
        repetitions=max(5, args.repetitions // 5), seed=args.seed,
        postmortem_dir=args.postmortem_dir,
    )
    if args.postmortem_dir:
        sealed = sum(t.postmortems for t in result.treatments)
        log.info("chaos.postmortems_written", directory=args.postmortem_dir,
                 bundles=sealed)
    return result.render()


def _run_incident(args) -> str:
    """X9: chaos with anomaly detection and postmortem bundles."""
    from repro.bench.incident import incident_experiment
    from repro.obs.flight import write_flight_jsonl

    result = incident_experiment(seed=args.seed,
                                 postmortem_dir=args.postmortem_dir)
    if args.postmortem_dir:
        log.info("incident.postmortems_written",
                 directory=args.postmortem_dir,
                 bundles=len(result.bundle_paths))
    if args.flight_out:
        write_flight_jsonl(args.flight_out, result.flight_events)
        log.info("incident.flight_written", file=args.flight_out,
                 events=len(result.flight_events))
    return result.render()


def _run_shard_chaos(args) -> str:
    """X10: replication factor x storage-node failure sweep."""
    from repro.bench.shard_chaos import shard_chaos_experiment
    return shard_chaos_experiment(
        repetitions=max(5, min(args.repetitions, 12)), seed=args.seed,
    ).render()


def _run_restore_sweep(args) -> str:
    """Fig4 extension: EAGER/LAZY/WORKING_SET sweep + registry dedup."""
    from repro.bench.restore_sweep import restore_sweep
    return restore_sweep(
        repetitions=max(10, args.repetitions // 4), seed=args.seed
    ).render()


def _run_restore_pipeline(args) -> str:
    """X8: pipelined restore sweep (workers × cache policy × function)."""
    from repro.bench.restore_sweep import restore_pipeline_sweep
    return restore_pipeline_sweep(
        repetitions=max(6, args.repetitions // 8), seed=args.seed
    ).render()


def _run_trace(args) -> str:
    """Record full lifecycle traces for a few episodes and summarize.

    With ``--trace-out`` the raw JSONL trace is also written (inspect
    it with ``python -m repro.obs.cli <file>``).
    """
    from repro.bench.harness import run_startup_experiment
    from repro.obs.cli import summarize
    from repro.obs.export import write_trace_jsonl
    from repro.obs.flight import write_flight_jsonl

    repetitions = max(1, min(args.repetitions, 5))
    sink: List[Dict[str, object]] = []
    flight_sink: List[Dict[str, object]] | None = (
        [] if args.flight_out else None)
    for technique in ("vanilla", "prebake"):
        run_startup_experiment("markdown", technique,
                               repetitions=repetitions, seed=args.seed,
                               trace_phases=True, trace_sink=sink,
                               flight_sink=flight_sink)
    if args.trace_out:
        write_trace_jsonl(args.trace_out, sink)
        log.info("trace.written", file=args.trace_out, spans=len(sink))
    if args.flight_out and flight_sink is not None:
        write_flight_jsonl(args.flight_out, flight_sink)
        log.info("flight.written", file=args.flight_out,
                 events=len(flight_sink))
    return (f"Lifecycle trace — markdown, vanilla+prebake, "
            f"{repetitions} rep(s) each\n" + summarize(sink))


def _run_profile(args) -> str:
    """Phase-level profile: flamegraph + critical-path table (§10)."""
    from repro.bench.profile import (
        run_profile_experiment,
        write_folded,
        write_profile_json,
    )
    from repro.obs.export import metrics_to_jsonl
    from repro.obs.metrics import MetricsRegistry

    # Registry names use hyphens ("image-resizer"); accept underscore
    # spellings from the shell.
    function = (args.function or "image-resizer").replace("_", "-")
    repetitions = max(1, min(args.repetitions, 5))
    metrics = MetricsRegistry() if args.metrics_out else None
    result = run_profile_experiment(function, repetitions=repetitions,
                                    seed=args.seed, metrics_sink=metrics)
    if args.flame_out:
        write_folded(args.flame_out, result)
        log.info("profile.flame_written", file=args.flame_out)
    if args.profile_out:
        write_profile_json(args.profile_out, result)
        log.info("profile.written", file=args.profile_out)
    if args.metrics_out and metrics is not None:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(metrics_to_jsonl(metrics))
        log.info("profile.metrics_written", file=args.metrics_out)
    return result.render()


def _run_fleet_study(args) -> str:
    """X12: trace-driven fleet study on the fleet observability plane."""
    import json

    from repro.bench.fleet_study import fleet_study

    result = fleet_study(
        repetitions=max(1, min(args.repetitions, 3)), seed=args.seed,
        requests=args.requests or 1_000_000, workers=args.workers)
    if args.fleet_out:
        with open(args.fleet_out, "w", encoding="utf-8") as handle:
            json.dump(result.as_dict(), handle, sort_keys=True)
        log.info("fleet.artifact_written", file=args.fleet_out,
                 reps=len(result.reps))
    if args.flame_out and result.reps:
        attribution = result.headline.attribution
        folded = attribution.folded_lines() if attribution else []
        with open(args.flame_out, "w", encoding="utf-8") as handle:
            handle.write("\n".join(folded) + ("\n" if folded else ""))
        log.info("fleet.flame_written", file=args.flame_out,
                 stacks=len(folded))
    return result.render()


def _run_fleet_report(args) -> str:
    """Re-render a recorded fleet artifact (blame table + flamegraph)."""
    import json

    from repro.bench.fleet_study import render_fleet_report

    with open(args.fleet_in, "r", encoding="utf-8") as handle:
        artifact = json.load(handle)
    if args.flame_out:
        folded: List[str] = []
        for rep in artifact.get("reps", []):
            folded.extend(rep.get("folded", []))
        with open(args.flame_out, "w", encoding="utf-8") as handle:
            handle.write("\n".join(folded) + ("\n" if folded else ""))
        log.info("fleet.flame_written", file=args.flame_out,
                 stacks=len(folded))
    return render_fleet_report(artifact)


def _run_prewarm(args) -> str:
    """X13: forecast-driven prewarming vs fixed keep-alive sweep."""
    import json

    from repro.bench.prewarm_study import prewarm_study

    result = prewarm_study(
        repetitions=max(1, min(args.repetitions, 3)), seed=args.seed,
        requests=args.requests or 200_000, horizon=args.horizon)
    if args.prewarm_out:
        with open(args.prewarm_out, "w", encoding="utf-8") as handle:
            json.dump(result.as_dict(), handle, sort_keys=True)
        log.info("prewarm.artifact_written", file=args.prewarm_out,
                 reps=len(result.reps))
    return result.render()


def _run_kernel_bench(args) -> str:
    """X11: wall-clock events/sec, vectorized vs per-page reference."""
    from repro.bench.kernelbench import (
        DEFAULT_TARGET_EVENTS,
        kernel_bench,
        write_kernel_bench_json,
    )
    target = args.events or DEFAULT_TARGET_EVENTS
    result = kernel_bench(target_events=target, seed=args.seed)
    if args.profile_out:
        write_kernel_bench_json(args.profile_out, result)
        log.info("kernel_bench.profile_written", file=args.profile_out,
                 speedup=round(result.speedup_vs_reference, 2))
    return result.render()


EXPERIMENTS: Dict[str, Callable] = {
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_factorial,
    "table1": _run_factorial,
    "fig7": _run_fig7,
    "sec5": _run_sec5,
    "ablation-restore": _run_ablation_restore,
    "ablation-snapshot": _run_ablation_snapshot,
    "ablation-bake-timing": _run_ablation_bake_timing,
    "ext-runtimes": _run_ext_runtimes,
    "ext-pool": _run_ext_pool,
    "restore-sweep": _run_restore_sweep,
    "restore-pipeline": _run_restore_pipeline,
    "chaos": _run_chaos,
    "incident": _run_incident,
    "shard-chaos": _run_shard_chaos,
    "trace": _run_trace,
    "profile": _run_profile,
    "kernel-bench": _run_kernel_bench,
    "fleet-study": _run_fleet_study,
    "fleet-report": _run_fleet_report,
    "prewarm": _run_prewarm,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="prebake-bench",
        description="Reproduce the tables and figures of the Prebaking paper.",
    )
    parser.add_argument("experiment", nargs="?", default="all",
                        help="experiment id (see --list) or 'all'")
    parser.add_argument("--repetitions", "-r", type=int, default=200,
                        help="repetitions per treatment (paper: 200)")
    parser.add_argument("--seed", "-s", type=int, default=42,
                        help="master RNG seed")
    parser.add_argument("--workers", "-w", type=int, default=1,
                        help="fan repetitions over N processes where the "
                             "experiment supports it (fig3); results are "
                             "identical for any worker count")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write a JSONL lifecycle trace (fig4 and "
                             "trace experiments)")
    parser.add_argument("--flight-out", default=None, metavar="PATH",
                        help="write the flight-recorder tape as JSONL "
                             "(trace and incident experiments)")
    parser.add_argument("--postmortem-dir", default=None, metavar="DIR",
                        help="seal postmortem bundles into DIR (chaos "
                             "and incident experiments)")
    parser.add_argument("--function", default=None, metavar="NAME",
                        help="function to profile (profile experiment; "
                             "default image-resizer)")
    parser.add_argument("--flame-out", default=None, metavar="PATH",
                        help="write folded-stack flamegraph lines "
                             "(profile experiment)")
    parser.add_argument("--profile-out", default=None, metavar="PATH",
                        help="write the raw phase-profile JSON dump "
                             "(profile and kernel-bench experiments)")
    parser.add_argument("--events", type=int, default=None, metavar="N",
                        help="wall-clock event budget per backend pass "
                             "(kernel-bench experiment)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write merged metrics JSONL "
                             "(profile experiment)")
    parser.add_argument("--requests", type=int, default=None,
                        metavar="N",
                        help="simulated requests per repetition "
                             "(fleet-study default 1000000, prewarm "
                             "default 200000)")
    parser.add_argument("--horizon", type=int, default=64, metavar="N",
                        help="forecast lag-window length for the learned "
                             "policy (prewarm experiment)")
    parser.add_argument("--fleet-out", default=None, metavar="PATH",
                        help="write the fleet-study artifact JSON "
                             "(fleet-study experiment)")
    parser.add_argument("--fleet-in", default=None, metavar="PATH",
                        help="recorded fleet artifact to render "
                             "(fleet-report experiment)")
    parser.add_argument("--prewarm-out", default=None, metavar="PATH",
                        help="write the prewarm-study artifact JSON "
                             "(prewarm experiment)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    return parser


def validate_args(args) -> str | None:
    """Sanity-check numeric knobs; the error message, or None if fine.

    A typo'd ``-r 0`` or negative seed would otherwise surface as a
    confusing downstream traceback (or an experiment that silently
    measures nothing), so the CLI rejects them up front with exit 2.
    """
    if args.repetitions < 1:
        return (f"--repetitions must be a positive integer, "
                f"got {args.repetitions}")
    if args.seed < 1:
        return f"--seed must be a positive integer, got {args.seed}"
    if args.workers < 1:
        return f"--workers must be a positive integer, got {args.workers}"
    if args.events is not None and args.events < 1:
        return f"--events must be a positive integer, got {args.events}"
    if args.requests is not None and args.requests < 1:
        return f"--requests must be a positive integer, got {args.requests}"
    if args.horizon < 2:
        return (f"--horizon must be a positive integer >= 2 "
                f"(the forecaster needs at least two lag windows), "
                f"got {args.horizon}")
    if args.experiment == "fleet-report" and not args.fleet_in:
        return "fleet-report requires --fleet-in PATH (a recorded artifact)"
    return None


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    problem = validate_args(args)
    if problem is not None:
        log.error("cli.bad_argument", message=problem)
        return 2
    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    if args.experiment == "all":
        # fig6 covers table1; fleet-report only re-renders an existing
        # artifact (requires --fleet-in), so neither runs under "all".
        names = [n for n in EXPERIMENTS
                 if n not in ("table1", "fleet-report")]
    elif args.experiment in EXPERIMENTS:
        names = [args.experiment]
    else:
        log.error("cli.bad_experiment",
                  message=f"unknown experiment {args.experiment!r}; use --list")
        return 2
    for name in names:
        log.info("experiment.start", name=name,
                 repetitions=args.repetitions, seed=args.seed)
        started = time.time()
        output = EXPERIMENTS[name](args)
        elapsed = time.time() - started
        log.info("experiment.done", name=name, wall_s=round(elapsed, 2))
        print(f"== {name} " + "=" * 38)
        print(output)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
