"""Experiment runner: the paper's 200-repetition factorial protocol.

"Each experiment treatment was repeated 200 times. The load generator
and the function runtime was restarted before a run" (§4.1) — so every
repetition here builds a *fresh* simulated world (new kernel, new page
cache, new RNG substream), deploys, measures one start-up, and tears
everything down.

Because each repetition is a hermetic world seeded from
``_derive_seed(seed, "rep-<n>")``, repetitions are embarrassingly
parallel: ``workers=N`` fans them over a ``multiprocessing`` pool and
reassembles the samples in repetition order, producing *identical*
results to a serial run for any worker count.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro import make_world, obs
from repro.obs.log import bound_trace_provider
from repro.bench.stats import ConfidenceInterval, bootstrap_median_ci, median
from repro.bench.tracer import PhaseBreakdown, PhaseTracer
from repro.bench.workload import LoadGenerator
from repro.core.manager import PrebakeManager
from repro.core.policy import AfterReady, SnapshotPolicy
from repro.criu.restore import RestoreMode
from repro.functions.base import FunctionApp, make_app
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sim.rng import _derive_seed

AppFactory = Callable[[], FunctionApp]


def _resolve_factory(function) -> AppFactory:
    if callable(function):
        return function
    return lambda: make_app(function)


@dataclass
class StartupSample:
    """One repetition's measurement."""

    repetition: int
    startup_ms: float
    snapshot_mib: float = 0.0
    phases: Optional[PhaseBreakdown] = None


@dataclass
class StartupSummary:
    """All repetitions of one treatment."""

    function: str
    technique: str
    policy_key: str
    metric: str
    samples: List[StartupSample] = field(default_factory=list)

    @property
    def values(self) -> List[float]:
        return [s.startup_ms for s in self.samples]

    @property
    def median_ms(self) -> float:
        return median(self.values)

    def ci(self, confidence: float = 0.95, seed: int = 0) -> ConfidenceInterval:
        return bootstrap_median_ci(self.values, confidence=confidence, seed=seed)

    def phase_medians(self) -> PhaseBreakdown:
        phased = [s.phases for s in self.samples if s.phases is not None]
        if not phased:
            raise ValueError("experiment did not trace phases")
        return PhaseBreakdown(
            clone_ms=median([p.clone_ms for p in phased]),
            exec_ms=median([p.exec_ms for p in phased]),
            rts_ms=median([p.rts_ms for p in phased]),
            appinit_ms=median([p.appinit_ms for p in phased]),
        )


def _startup_repetition(
    rep: int,
    function,
    technique: str,
    policy: SnapshotPolicy,
    seed: int,
    resolved_metric: str,
    trace_phases: bool,
    costs: CostModel,
    restore_mode: RestoreMode,
    in_memory: bool,
    trace_sink: Optional[List[Dict[str, object]]] = None,
    flight_sink: Optional[List[Dict[str, object]]] = None,
) -> StartupSample:
    """One hermetic repetition: fresh world, deploy, measure, tear down.

    Module-level (not a closure) so ``multiprocessing`` workers can run
    it; the sample depends only on the arguments, never on which
    process executed it.
    """
    factory = _resolve_factory(function)
    world = make_world(seed=_derive_seed(seed, f"rep-{rep}"), costs=costs,
                       observe=trace_sink is not None)
    kernel = world.kernel
    if flight_sink is not None:
        # The recorder reads the clock and never advances it, so the
        # measured sample is bit-identical with or without the tape.
        obs.install_flight(kernel)
    manager = PrebakeManager(kernel)
    app = factory()
    # While the repetition runs under an observed world, structured log
    # lines emitted with a span open carry its trace id.
    log_provider = (kernel.obs.tracer.current_trace_id
                    if kernel.obs is not None else None)
    with bound_trace_provider(log_provider), \
            obs.span(kernel, "bench.repetition", rep=rep,
                     function=app.name, technique=technique,
                     policy=policy.key):
        snapshot_mib = 0.0
        if technique == "prebake":
            report = manager.deploy(app, policy=policy)
            snapshot_mib = report.snapshot_mib
        tracer = PhaseTracer(kernel) if trace_phases else None
        starter = manager.starter(
            technique, policy=policy, restore_mode=restore_mode,
            in_memory=in_memory,
            version=(manager.current_version(app.name)
                     if technique == "prebake" else 1),
        )
        if tracer:
            tracer.start_episode()
        handle = starter.start(app)
        if resolved_metric == "first_response":
            handle.invoke()
        if tracer:
            tracer.stop_episode()
        if trace_sink is not None and resolved_metric != "first_response":
            # The measured episode is over (startup_ms derives from
            # the recorded spawn/ready stamps); drive one request so
            # the trace also covers first-request serve.
            handle.invoke()
    sample = StartupSample(
        repetition=rep,
        startup_ms=handle.startup_ms(resolved_metric),
        snapshot_mib=snapshot_mib,
        phases=tracer.breakdown() if tracer else None,
    )
    if trace_sink is not None:
        # Tracer self-check: a clean episode leaves no span open.
        # A leak here means an error path exited without closing
        # its span (the bug class the context-manager discipline
        # exists to prevent) — fail loudly rather than emit a
        # trace with phantom unfinished spans.
        leaked = kernel.obs.tracer.open_spans()
        if leaked:
            raise obs.SpanError(
                "span leak after repetition "
                f"{rep}: {', '.join(s.name for s in leaked)}"
            )
        for span in kernel.obs.tracer.spans:
            record = span.as_dict()
            # Span/trace ids restart in every fresh world; qualify
            # the trace id so merged multi-repetition files keep
            # each repetition's tree intact.
            record["trace"] = f"{technique}/{app.name}/rep{rep}/{record['trace']}"
            record.update(rep=rep, function=app.name, technique=technique)
            trace_sink.append(record)
    if flight_sink is not None:
        for event in kernel.flight.events():
            record = event.as_dict()
            if record.get("trace") is not None:
                # Qualify like the trace sink: ids restart per world.
                record["trace"] = (
                    f"{technique}/{app.name}/rep{rep}/{record['trace']}")
            record.update(rep=rep, function=app.name, technique=technique)
            flight_sink.append(record)
    return sample


def _startup_repetition_star(packed: Tuple) -> StartupSample:
    """Pool-map adapter (pools map over a single argument)."""
    return _startup_repetition(*packed)


def _parallelizable(function, trace_sink, flight_sink) -> bool:
    """Reps can fan out only when every argument survives pickling and
    no cross-rep mutable state (a sink list) is involved."""
    return (trace_sink is None and flight_sink is None
            and not callable(function))


def run_startup_experiment(
    function,
    technique: str,
    policy: SnapshotPolicy = AfterReady(),
    repetitions: int = 200,
    seed: int = 42,
    metric: Optional[str] = None,
    trace_phases: bool = False,
    costs: CostModel = DEFAULT_COST_MODEL,
    restore_mode: RestoreMode = RestoreMode.EAGER,
    in_memory: bool = False,
    trace_sink: Optional[List[Dict[str, object]]] = None,
    flight_sink: Optional[List[Dict[str, object]]] = None,
    workers: int = 1,
) -> StartupSummary:
    """Measure start-up time over ``repetitions`` fresh worlds.

    ``function`` is a registered name or an app factory. ``metric``
    defaults to the function profile's own start-up metric ("ready"
    for the paper's real functions, "first_response" for synthetic).

    ``workers`` fans the repetitions over that many OS processes.
    Seeds are partitioned per repetition (not per worker), so the
    summary is byte-identical to a serial run for any worker count.
    Treatments that need a trace sink, or whose ``function`` is an
    in-process factory (unpicklable), silently run serially.

    ``trace_sink``, when given, turns on lifecycle telemetry: every
    repetition runs under a ``bench.repetition`` root span (deploy →
    bake → checkpoint → restore → first-request serve all nest under
    it), and the repetition's span dicts — stamped with ``rep``,
    ``function`` and ``technique`` — are appended to the list, ready
    for :func:`repro.obs.export.write_trace_jsonl`.

    ``flight_sink`` likewise installs a flight recorder per repetition
    and appends the repetition's event dicts — qualified the same way —
    ready for :func:`repro.obs.flight.write_flight_jsonl`. The recorder
    never touches the clock or RNG, so samples are unchanged by it.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    factory = _resolve_factory(function)
    probe = factory()
    resolved_metric = metric or probe.profile.startup_metric
    summary = StartupSummary(
        function=probe.name,
        technique=technique,
        policy_key=policy.key,
        metric=resolved_metric,
    )
    packed = [
        (rep, function, technique, policy, seed, resolved_metric,
         trace_phases, costs, restore_mode, in_memory)
        for rep in range(repetitions)
    ]
    if workers > 1 and repetitions > 1 and _parallelizable(function, trace_sink,
                                                           flight_sink):
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None)
        with ctx.Pool(processes=min(workers, repetitions)) as pool:
            # map() preserves input order, so samples land rep-sorted
            # exactly as the serial loop would append them.
            summary.samples.extend(pool.map(_startup_repetition_star, packed))
    else:
        for args in packed:
            summary.samples.append(
                _startup_repetition(*args, trace_sink=trace_sink,
                                    flight_sink=flight_sink))
    return summary


@dataclass
class ServiceSummary:
    """Post-start-up service times of one treatment (Figure 7)."""

    function: str
    technique: str
    service_times_ms: List[float] = field(default_factory=list)
    errors: int = 0

    @property
    def median_ms(self) -> float:
        return median(self.service_times_ms)


def run_service_experiment(
    function,
    technique: str,
    policy: SnapshotPolicy = AfterReady(),
    requests: int = 200,
    interval_ms: float = 10.0,
    seed: int = 42,
    costs: CostModel = DEFAULT_COST_MODEL,
    workers: int = 1,
) -> ServiceSummary:
    """Measure ``requests`` sequential service times after one start-up.

    Reproduces Figure 7's setup: "the empirical cumulative distribution
    function (ECDF) of the service time for 200 requests applied to
    [the] functions after being initialized by the prebaking and
    vanilla technique."

    ``workers`` is accepted for interface symmetry with
    :func:`run_startup_experiment`: this treatment drives one replica
    inside a single world, whose requests are causally ordered, so any
    worker count yields the identical serial execution.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    factory = _resolve_factory(function)
    world = make_world(seed=_derive_seed(seed, f"service-{technique}"), costs=costs)
    kernel = world.kernel
    manager = PrebakeManager(kernel)
    app = factory()
    if technique == "prebake":
        manager.deploy(app, policy=policy)
        starter = manager.starter(technique, policy=policy,
                                  version=manager.current_version(app.name))
    else:
        starter = manager.starter(technique)
    generator = LoadGenerator(kernel)
    result = generator.run(starter, app, requests=requests, interval_ms=interval_ms)
    return ServiceSummary(
        function=app.name,
        technique=technique,
        service_times_ms=result.service_times,
        errors=result.errors,
    )
