"""Experiment runner: the paper's 200-repetition factorial protocol.

"Each experiment treatment was repeated 200 times. The load generator
and the function runtime was restarted before a run" (§4.1) — so every
repetition here builds a *fresh* simulated world (new kernel, new page
cache, new RNG substream), deploys, measures one start-up, and tears
everything down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro import make_world, obs
from repro.bench.stats import ConfidenceInterval, bootstrap_median_ci, median
from repro.bench.tracer import PhaseBreakdown, PhaseTracer
from repro.bench.workload import LoadGenerator
from repro.core.manager import PrebakeManager
from repro.core.policy import AfterReady, SnapshotPolicy
from repro.criu.restore import RestoreMode
from repro.functions.base import FunctionApp, make_app
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sim.rng import _derive_seed

AppFactory = Callable[[], FunctionApp]


def _resolve_factory(function) -> AppFactory:
    if callable(function):
        return function
    return lambda: make_app(function)


@dataclass
class StartupSample:
    """One repetition's measurement."""

    repetition: int
    startup_ms: float
    snapshot_mib: float = 0.0
    phases: Optional[PhaseBreakdown] = None


@dataclass
class StartupSummary:
    """All repetitions of one treatment."""

    function: str
    technique: str
    policy_key: str
    metric: str
    samples: List[StartupSample] = field(default_factory=list)

    @property
    def values(self) -> List[float]:
        return [s.startup_ms for s in self.samples]

    @property
    def median_ms(self) -> float:
        return median(self.values)

    def ci(self, confidence: float = 0.95, seed: int = 0) -> ConfidenceInterval:
        return bootstrap_median_ci(self.values, confidence=confidence, seed=seed)

    def phase_medians(self) -> PhaseBreakdown:
        phased = [s.phases for s in self.samples if s.phases is not None]
        if not phased:
            raise ValueError("experiment did not trace phases")
        return PhaseBreakdown(
            clone_ms=median([p.clone_ms for p in phased]),
            exec_ms=median([p.exec_ms for p in phased]),
            rts_ms=median([p.rts_ms for p in phased]),
            appinit_ms=median([p.appinit_ms for p in phased]),
        )


def run_startup_experiment(
    function,
    technique: str,
    policy: SnapshotPolicy = AfterReady(),
    repetitions: int = 200,
    seed: int = 42,
    metric: Optional[str] = None,
    trace_phases: bool = False,
    costs: CostModel = DEFAULT_COST_MODEL,
    restore_mode: RestoreMode = RestoreMode.EAGER,
    in_memory: bool = False,
    trace_sink: Optional[List[Dict[str, object]]] = None,
) -> StartupSummary:
    """Measure start-up time over ``repetitions`` fresh worlds.

    ``function`` is a registered name or an app factory. ``metric``
    defaults to the function profile's own start-up metric ("ready"
    for the paper's real functions, "first_response" for synthetic).

    ``trace_sink``, when given, turns on lifecycle telemetry: every
    repetition runs under a ``bench.repetition`` root span (deploy →
    bake → checkpoint → restore → first-request serve all nest under
    it), and the repetition's span dicts — stamped with ``rep``,
    ``function`` and ``technique`` — are appended to the list, ready
    for :func:`repro.obs.export.write_trace_jsonl`.
    """
    factory = _resolve_factory(function)
    probe = factory()
    resolved_metric = metric or probe.profile.startup_metric
    summary = StartupSummary(
        function=probe.name,
        technique=technique,
        policy_key=policy.key,
        metric=resolved_metric,
    )
    for rep in range(repetitions):
        world = make_world(seed=_derive_seed(seed, f"rep-{rep}"), costs=costs,
                           observe=trace_sink is not None)
        kernel = world.kernel
        manager = PrebakeManager(kernel)
        app = factory()
        with obs.span(kernel, "bench.repetition", rep=rep,
                      function=app.name, technique=technique,
                      policy=policy.key):
            snapshot_mib = 0.0
            if technique == "prebake":
                report = manager.deploy(app, policy=policy)
                snapshot_mib = report.snapshot_mib
            tracer = PhaseTracer(kernel) if trace_phases else None
            starter = manager.starter(
                technique, policy=policy, restore_mode=restore_mode,
                in_memory=in_memory,
                version=(manager.current_version(app.name)
                         if technique == "prebake" else 1),
            )
            if tracer:
                tracer.start_episode()
            handle = starter.start(app)
            if resolved_metric == "first_response":
                handle.invoke()
            if tracer:
                tracer.stop_episode()
            if trace_sink is not None and resolved_metric != "first_response":
                # The measured episode is over (startup_ms derives from
                # the recorded spawn/ready stamps); drive one request so
                # the trace also covers first-request serve.
                handle.invoke()
        summary.samples.append(StartupSample(
            repetition=rep,
            startup_ms=handle.startup_ms(resolved_metric),
            snapshot_mib=snapshot_mib,
            phases=tracer.breakdown() if tracer else None,
        ))
        if trace_sink is not None:
            # Tracer self-check: a clean episode leaves no span open.
            # A leak here means an error path exited without closing
            # its span (the bug class the context-manager discipline
            # exists to prevent) — fail loudly rather than emit a
            # trace with phantom unfinished spans.
            leaked = kernel.obs.tracer.open_spans()
            if leaked:
                raise obs.SpanError(
                    "span leak after repetition "
                    f"{rep}: {', '.join(s.name for s in leaked)}"
                )
            for span in kernel.obs.tracer.spans:
                record = span.as_dict()
                # Span/trace ids restart in every fresh world; qualify
                # the trace id so merged multi-repetition files keep
                # each repetition's tree intact.
                record["trace"] = f"{technique}/{app.name}/rep{rep}/{record['trace']}"
                record.update(rep=rep, function=app.name, technique=technique)
                trace_sink.append(record)
    return summary


@dataclass
class ServiceSummary:
    """Post-start-up service times of one treatment (Figure 7)."""

    function: str
    technique: str
    service_times_ms: List[float] = field(default_factory=list)
    errors: int = 0

    @property
    def median_ms(self) -> float:
        return median(self.service_times_ms)


def run_service_experiment(
    function,
    technique: str,
    policy: SnapshotPolicy = AfterReady(),
    requests: int = 200,
    interval_ms: float = 10.0,
    seed: int = 42,
    costs: CostModel = DEFAULT_COST_MODEL,
) -> ServiceSummary:
    """Measure ``requests`` sequential service times after one start-up.

    Reproduces Figure 7's setup: "the empirical cumulative distribution
    function (ECDF) of the service time for 200 requests applied to
    [the] functions after being initialized by the prebaking and
    vanilla technique."
    """
    factory = _resolve_factory(function)
    world = make_world(seed=_derive_seed(seed, f"service-{technique}"), costs=costs)
    kernel = world.kernel
    manager = PrebakeManager(kernel)
    app = factory()
    if technique == "prebake":
        manager.deploy(app, policy=policy)
        starter = manager.starter(technique, policy=policy,
                                  version=manager.current_version(app.name))
    else:
        starter = manager.starter(technique)
    generator = LoadGenerator(kernel)
    result = generator.run(starter, app, requests=requests, interval_ms=interval_ms)
    return ServiceSummary(
        function=app.name,
        technique=technique,
        service_times_ms=result.service_times,
        errors=result.errors,
    )
