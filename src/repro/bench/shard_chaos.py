"""X10 — shard-chaos: cold starts through a failing snapshot store.

Sweeps ``replication_factor`` x storage-fault pressure on a platform
whose snapshot registry is the sharded, replicated store from
:mod:`repro.criu.shardstore`, and reports what the paper's prebake
claim turns into when the store itself is a distributed system: does a
storage-node crash mid-window break cold starts (failed requests), or
merely degrade them (bounded p99 inflation, degraded restores,
vanilla fallbacks)?

Each repetition is a fresh world; at fault pressure > 0 one storage
node — ``store-(rep mod N)``, so the sweep kills *every* node across
repetitions — is deterministically crashed halfway through the request
window, on top of seeded ``store.node_down`` / ``store.partition`` /
``store.slow_shard`` injection. Replicas are terminated between
requests so every request pays a full cold start through the store.

The expected shape, asserted by CI: at RF>=2 the killed node's windows
are served by surviving replicas — requests never fail and p99 stays
within a small multiple of the clean baseline; at RF=1 the dead node's
windows are unobtainable and cold starts ride the retry → vanilla
fallback ladder instead of failing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Sequence

from repro import faults, make_world
from repro.bench.report import format_table
from repro.bench.stats import quantile
from repro.faas.platform import FaaSPlatform, PlatformConfig
from repro.faults.errors import PlatformError
from repro.faults.model import (
    STORE_NODE_DOWN,
    STORE_PARTITION,
    STORE_SLOW_SHARD,
    FaultPlan,
    FaultSpec,
)
from repro.functions.base import make_app
from repro.sim.rng import _derive_seed

# How the single pressure knob fans out over the storage fault sites.
# Partition is evaluated per replica hop and node_down per restore, so
# both run at a small fraction — a restore only fails when *every*
# replica of some window is unreachable, and the sweep's point is that
# the deterministic mid-window kill dominates: RF>=2 should mostly
# *degrade* (survivor hops), not fall back. Slow shards are harmless
# latency but are evaluated per window, so they run scaled down too or
# their accumulated tax would drown the quorum-hop signal.
SITE_RATE_SCALE = {
    STORE_NODE_DOWN: 0.1,
    STORE_PARTITION: 0.1,
    STORE_SLOW_SHARD: 0.25,
}


def shard_chaos_plan(rate: float, node_down_ms: float) -> FaultPlan:
    """The storage fault plan armed at one sweep point."""
    plan = FaultPlan()
    for site, scale in SITE_RATE_SCALE.items():
        probability = min(1.0, rate * scale)
        if probability <= 0.0:
            continue
        delay = node_down_ms if site == STORE_NODE_DOWN else None
        plan = plan.with_spec(FaultSpec(site, probability, delay_ms=delay))
    return plan


@dataclass
class ShardChaosTreatment:
    """One (replication factor, fault pressure) cell of the sweep."""

    replication_factor: int
    fault_rate: float
    requests: int = 0
    successes: int = 0
    cold_waits_ms: List[float] = field(default_factory=list)
    degraded_restores: int = 0
    fallbacks: int = 0
    retries: int = 0
    retry_hops: int = 0
    read_repairs: int = 0
    handoffs: int = 0
    breaker_opens: int = 0
    faults_fired: int = 0
    schedule_digests: List[str] = field(default_factory=list)

    @property
    def failed(self) -> int:
        return self.requests - self.successes

    @property
    def success_rate(self) -> float:
        return self.successes / self.requests if self.requests else 0.0

    def cold_p50(self) -> float:
        return quantile(self.cold_waits_ms, 0.5) if self.cold_waits_ms else 0.0

    def cold_p99(self) -> float:
        return quantile(self.cold_waits_ms, 0.99) if self.cold_waits_ms else 0.0


@dataclass
class ShardChaosResult:
    """The full sweep, renderable as a stdout-diffable report."""

    function: str
    storage_nodes: int
    repetitions: int
    requests_per_rep: int
    seed: int
    treatments: List[ShardChaosTreatment] = field(default_factory=list)

    def treatment(self, rf: int, rate: float) -> ShardChaosTreatment:
        for t in self.treatments:
            if t.replication_factor == rf and t.fault_rate == rate:
                return t
        raise KeyError(f"no treatment rf={rf} rate={rate}")

    def sweep_digest(self) -> str:
        hasher = hashlib.sha256()
        for t in self.treatments:
            for digest in t.schedule_digests:
                hasher.update(digest.encode("ascii"))
        return hasher.hexdigest()

    def failed_at_rf2_plus(self) -> int:
        """Failed requests across every RF>=2 cell (CI asserts 0)."""
        return sum(t.failed for t in self.treatments
                   if t.replication_factor >= 2)

    def _clean_p99(self, rf: int) -> float:
        """The cell's clean (lowest fault pressure) baseline p99."""
        cells = [t for t in self.treatments if t.replication_factor == rf]
        baseline = min(cells, key=lambda t: t.fault_rate)
        return baseline.cold_p99()

    def render(self) -> str:
        rows = []
        for t in self.treatments:
            clean = self._clean_p99(t.replication_factor)
            inflation = (t.cold_p99() / clean) if clean else 0.0
            rows.append([
                t.replication_factor,
                f"{t.fault_rate:.2f}",
                t.requests,
                f"{100.0 * t.success_rate:.1f}%",
                f"{t.cold_p50():.2f}",
                f"{t.cold_p99():.2f}",
                f"{inflation:.2f}x",
                t.degraded_restores,
                t.fallbacks,
                t.retry_hops,
                t.read_repairs,
                t.breaker_opens,
            ])
        table = format_table(
            ["rf", "rate", "req", "success", "cold p50 ms", "cold p99 ms",
             "p99 vs clean", "degraded", "fallback", "hops", "read-repair",
             "breaker"],
            rows,
        )
        header = (
            f"Shard chaos — {self.function}, {self.storage_nodes} storage "
            f"nodes, {self.repetitions} reps x {self.requests_per_rep} "
            f"requests, seed {self.seed}"
        )
        return (header + "\n" + table
                + f"\nRF>=2 failed requests: {self.failed_at_rf2_plus()}"
                + f"\nfault schedule digest: {self.sweep_digest()}")


def _run_repetition(treatment: ShardChaosTreatment, function: str,
                    rf: int, rate: float, rep: int, seed: int,
                    storage_nodes: int, requests_per_rep: int,
                    think_ms: float, node_down_ms: float) -> None:
    world = make_world(
        seed=_derive_seed(seed, f"shard-chaos-rf{rf}-{rate}-{rep}"),
        observe=True,
    )
    kernel = world.kernel
    platform = FaaSPlatform(kernel, PlatformConfig(
        nodes=2,
        storage_nodes=storage_nodes,
        replication_factor=rf,
    ))
    platform.register_function(lambda: make_app(function),
                               start_technique="prebake")
    injector = platform.install_faults(shard_chaos_plan(rate, node_down_ms))
    victim = f"store-{rep % storage_nodes}"
    try:
        for i in range(requests_per_rep):
            if rate > 0.0 and i == requests_per_rep // 2:
                # The acceptance treatment: kill one storage node
                # mid-window. rep rotates the victim, so the sweep
                # kills every node at least once.
                platform.shard_store.fail_node(victim, node_down_ms)
            treatment.requests += 1
            try:
                platform.invoke(function)
                treatment.successes += 1
            except PlatformError:
                pass
            kernel.clock.advance(think_ms)
            # Terminate the pool so the next request pays a full cold
            # start through the sharded store.
            platform.deployer.terminate_all(function)
            platform.gc_tick()
    finally:
        faults.uninstall(kernel)
    metrics = kernel.obs.metrics
    treatment.cold_waits_ms.extend(platform.cold_start_latencies(function))
    treatment.degraded_restores += int(metrics.value("restore_degraded_total"))
    treatment.fallbacks += int(metrics.value("prebake_fallback_total"))
    treatment.retries += int(metrics.value("prebake_restore_retries_total"))
    treatment.retry_hops += int(metrics.value("shard_fetch_retry_hops_total"))
    treatment.read_repairs += int(metrics.value("shard_read_repair_total"))
    treatment.handoffs += int(metrics.value("shard_hinted_handoff_total"))
    treatment.breaker_opens += int(metrics.value("shard_breaker_open_total"))
    treatment.faults_fired += injector.fired_count()
    treatment.schedule_digests.append(injector.schedule_digest())


def shard_chaos_experiment(
    function: str = "markdown",
    replication_factors: Sequence[int] = (1, 2, 3),
    failure_rates: Sequence[float] = (0.0, 0.5),
    storage_nodes: int = 5,
    repetitions: int = 6,
    requests_per_rep: int = 6,
    seed: int = 42,
    think_ms: float = 100.0,
    node_down_ms: float = 1_500.0,
) -> ShardChaosResult:
    """Sweep replication factor x storage-fault pressure.

    At pressure 0 the cell is the clean baseline (no kill, no armed
    sites, zero extra RNG draws); at pressure > 0 the deterministic
    mid-window node kill runs on top of seeded ``store.*`` injection.
    ``repetitions >= storage_nodes`` makes the rotating victim cover
    every storage node. The rendered report ends with the RF>=2
    failed-request count and the fault-schedule digest CI asserts on.
    """
    result = ShardChaosResult(
        function=function,
        storage_nodes=storage_nodes,
        repetitions=repetitions,
        requests_per_rep=requests_per_rep,
        seed=seed,
    )
    for rf in replication_factors:
        if rf > storage_nodes:
            continue  # cannot place more replicas than nodes
        for rate in failure_rates:
            treatment = ShardChaosTreatment(replication_factor=rf,
                                            fault_rate=rate)
            for rep in range(repetitions):
                _run_repetition(treatment, function, rf, rate, rep, seed,
                                storage_nodes, requests_per_rep, think_ms,
                                node_down_ms)
            result.treatments.append(treatment)
    return result
