"""Assemble a reproduction report from recorded benchmark results.

Every benchmark writes its rendered table to ``benchmarks/results/``;
this module stitches those files into a single markdown report (the
machine-generated companion to the curated EXPERIMENTS.md), so a fresh
bench run always leaves an up-to-date record:

    python -m repro.bench.experiments_writer benchmarks/results report.md
"""

from __future__ import annotations

import pathlib
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.log import get_logger

log = get_logger("bench.report")

# Section ordering + titles for known experiment ids; unknown result
# files are appended alphabetically under their file name.
KNOWN_SECTIONS = [
    ("fig3_startup", "Figure 3 — start-up time, real functions"),
    ("fig4_components", "Figure 4 — start-up phase breakdown"),
    ("fig5_function_size", "Figure 5 — function size impact"),
    ("fig6_speedup", "Figure 6 — speed-up ratios"),
    ("table1_intervals", "Table 1 — start-up intervals"),
    ("fig7_service_time", "Figure 7 — service time after start-up"),
    ("sec5_openfaas", "Section 5 — OpenFaaS integration"),
    ("ablation_restore", "Ablation — restore strategy"),
    ("ablation_snapshot_point", "Ablation — snapshot point"),
    ("ablation_bake_timing", "Ablation — bake timing"),
    ("ext_runtimes", "Extension — prebaking across runtimes"),
    ("ext_pool_baseline", "Extension — warm-pool baseline"),
    ("ext_concurrency", "Extension — concurrent bursts"),
    ("ext_migration", "Extension — live migration"),
]


@dataclass
class ReportSection:
    experiment_id: str
    title: str
    body: str


def collect_sections(results_dir: pathlib.Path) -> List[ReportSection]:
    """Read every ``*.txt`` result and order known sections first."""
    if not results_dir.is_dir():
        raise FileNotFoundError(f"no results directory at {results_dir}")
    available: Dict[str, str] = {}
    for path in sorted(results_dir.glob("*.txt")):
        available[path.stem] = path.read_text(encoding="utf-8").strip()
    sections: List[ReportSection] = []
    for experiment_id, title in KNOWN_SECTIONS:
        body = available.pop(experiment_id, None)
        if body is not None:
            sections.append(ReportSection(experiment_id, title, body))
    for experiment_id in sorted(available):
        sections.append(ReportSection(
            experiment_id, experiment_id.replace("_", " "),
            available[experiment_id],
        ))
    return sections


def write_report(results_dir: pathlib.Path,
                 output: Optional[pathlib.Path] = None) -> str:
    """Build the markdown report; write it if ``output`` given."""
    sections = collect_sections(results_dir)
    if not sections:
        raise FileNotFoundError(
            f"{results_dir} holds no *.txt results; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    lines = [
        "# Reproduction report (generated)",
        "",
        "Assembled from the rendered tables each benchmark wrote to",
        f"`{results_dir}`. See EXPERIMENTS.md for the curated",
        "paper-vs-measured discussion.",
        "",
    ]
    for section in sections:
        lines.append(f"## {section.title}")
        lines.append("")
        lines.append("```text")
        lines.append(section.body)
        lines.append("```")
        lines.append("")
    report = "\n".join(lines)
    if output is not None:
        output.write_text(report, encoding="utf-8")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not 1 <= len(argv) <= 2:
        log.error("cli.usage",
                  message="usage: python -m repro.bench.experiments_writer "
                          "<results-dir> [output.md]")
        return 2
    results_dir = pathlib.Path(argv[0])
    output = pathlib.Path(argv[1]) if len(argv) == 2 else None
    try:
        report = write_report(results_dir, output)
    except FileNotFoundError as exc:
        log.error("report.failed", reason=str(exc))
        return 1
    if output is None:
        # stdout carries the result itself, so it stays a bare print.
        print(report)
    else:
        log.info("report.written", file=str(output),
                 sections=report.count("\n## "))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
