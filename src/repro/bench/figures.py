"""One entry point per paper table/figure (the experiment index of
DESIGN.md §5). Each function runs the full protocol and returns a
structured result with a ``render()`` method producing the paper-style
text output; ``paper`` fields carry the published values so reports can
show paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import make_world
from repro.bench.harness import (
    ServiceSummary,
    StartupSummary,
    run_service_experiment,
    run_startup_experiment,
)
from repro.bench.report import format_interval, format_table, stacked_bar
from repro.bench.stats import (
    ks_distance,
    mann_whitney_u,
    median_difference_ci,
    shapiro_wilk,
)
from repro.core.policy import AfterReady, AfterRuntimeBoot, AfterWarmup
from repro.criu.restore import RestoreMode
from repro.functions import make_app  # noqa: F401 - registers workloads

REAL_FUNCTIONS = ("noop", "markdown", "image-resizer")
SYNTHETIC_FUNCTIONS = ("synthetic-small", "synthetic-medium", "synthetic-big")

# Published values (for EXPERIMENTS.md comparisons).
PAPER_FIG3_IMPROVEMENT = {"noop": 40.0, "markdown": 47.0, "image-resizer": 71.0}
PAPER_FIG3_MEDIANS = {
    "noop": {"vanilla": 103.0, "prebake": 62.0},
    "markdown": {"vanilla": 100.0, "prebake": 53.0},
    "image-resizer": {"vanilla": 310.0, "prebake": 87.0},
}
PAPER_TABLE1 = {
    "synthetic-small": {"vanilla": (219.25, 220.32), "nowarmup": (172.12, 172.80),
                        "warmup": (54.06, 54.75)},
    "synthetic-medium": {"vanilla": (455.45, 456.64), "nowarmup": (360.51, 361.24),
                         "warmup": (63.46, 63.99)},
    "synthetic-big": {"vanilla": (1619.91, 1622.08), "nowarmup": (1339.90, 1340.98),
                      "warmup": (83.62, 84.35)},
}
PAPER_FIG6_RATIOS = {
    "synthetic-small": {"nowarmup": 127.45, "warmup": 403.96},
    "synthetic-big": {"nowarmup": 121.07, "warmup": 1932.49},
}
PAPER_SNAPSHOT_MIB = {"noop": 13.0, "markdown": 14.0, "image-resizer": 99.2}


# ---------------------------------------------------------------------------
# Figure 3 — start-up comparison, real functions
# ---------------------------------------------------------------------------

@dataclass
class Fig3Row:
    function: str
    vanilla: StartupSummary
    prebake: StartupSummary
    improvement_pct: float
    diff_ci: Tuple[float, float]
    mwu_p: float
    vanilla_normal_p: float


@dataclass
class Fig3Result:
    rows: List[Fig3Row] = field(default_factory=list)

    def render(self) -> str:
        table_rows = []
        for row in self.rows:
            vci = row.vanilla.ci()
            pci = row.prebake.ci()
            table_rows.append([
                row.function,
                f"{row.vanilla.median_ms:.2f}",
                format_interval(vci.low, vci.high),
                f"{row.prebake.median_ms:.2f}",
                format_interval(pci.low, pci.high),
                f"{row.improvement_pct:.1f}%",
                f"{PAPER_FIG3_IMPROVEMENT[row.function]:.0f}%",
                f"{row.mwu_p:.2e}",
            ])
        return (
            "Figure 3 — start-up time, vanilla vs prebaking (medians, 95% bootstrap CI)\n"
            + format_table(
                ["function", "vanilla(ms)", "CI", "prebake(ms)", "CI",
                 "improvement", "paper", "MWU p"],
                table_rows,
            )
        )


def figure3(repetitions: int = 200, seed: int = 42,
            workers: int = 1) -> Fig3Result:
    """Reproduce Figure 3: NOOP/Markdown/Image Resizer start-up.

    ``workers`` fans repetitions over processes (identical output for
    any worker count; see :func:`run_startup_experiment`)."""
    result = Fig3Result()
    for name in REAL_FUNCTIONS:
        vanilla = run_startup_experiment(name, "vanilla",
                                         repetitions=repetitions, seed=seed,
                                         workers=workers)
        prebake = run_startup_experiment(name, "prebake", policy=AfterReady(),
                                         repetitions=repetitions, seed=seed + 1,
                                         workers=workers)
        diff = median_difference_ci(vanilla.values, prebake.values, seed=seed)
        test = mann_whitney_u(vanilla.values, prebake.values)
        normal = shapiro_wilk(vanilla.values)
        result.rows.append(Fig3Row(
            function=name,
            vanilla=vanilla,
            prebake=prebake,
            improvement_pct=100.0 * (1 - prebake.median_ms / vanilla.median_ms),
            diff_ci=(diff.low, diff.high),
            mwu_p=test.p_value,
            vanilla_normal_p=normal.p_value,
        ))
    return result


# ---------------------------------------------------------------------------
# Figure 4 — phase breakdown
# ---------------------------------------------------------------------------

@dataclass
class Fig4Cell:
    function: str
    technique: str
    phases: Dict[str, float]

    @property
    def total_ms(self) -> float:
        return sum(self.phases.values())


@dataclass
class Fig4Result:
    cells: List[Fig4Cell] = field(default_factory=list)

    def cell(self, function: str, technique: str) -> Fig4Cell:
        for c in self.cells:
            if c.function == function and c.technique == technique:
                return c
        raise KeyError(f"no cell for {function}/{technique}")

    def render(self) -> str:
        rows = []
        for c in self.cells:
            rows.append([
                c.function, c.technique,
                f"{c.phases['CLONE']:.2f}", f"{c.phases['EXEC']:.2f}",
                f"{c.phases['RTS']:.2f}", f"{c.phases['APPINIT']:.2f}",
                f"{c.total_ms:.2f}",
                stacked_bar(c.phases, total_width=40),
            ])
        return (
            "Figure 4 — start-up phase medians (ms); bars: C=CLONE E=EXEC R=RTS A=APPINIT\n"
            + format_table(
                ["function", "technique", "CLONE", "EXEC", "RTS", "APPINIT",
                 "total", "stacked"],
                rows,
            )
        )


def figure4(repetitions: int = 200, seed: int = 42,
            trace_path: Optional[str] = None) -> Fig4Result:
    """Reproduce Figure 4: CLONE/EXEC/RTS/APPINIT per function/technique.

    ``trace_path`` additionally records every repetition's lifecycle
    spans and writes them as one JSONL trace file (summarize it with
    ``python -m repro.obs.cli``).
    """
    from repro.obs.export import write_trace_jsonl
    result = Fig4Result()
    trace_sink: Optional[List[Dict[str, object]]] = \
        [] if trace_path is not None else None
    for name in REAL_FUNCTIONS:
        for technique in ("vanilla", "prebake"):
            summary = run_startup_experiment(
                name, technique, policy=AfterReady(),
                repetitions=repetitions, seed=seed, trace_phases=True,
                trace_sink=trace_sink,
            )
            result.cells.append(Fig4Cell(
                function=name,
                technique=technique,
                phases=summary.phase_medians().as_dict(),
            ))
    if trace_path is not None:
        write_trace_jsonl(trace_path, trace_sink)
    return result


# ---------------------------------------------------------------------------
# Figure 5 — vanilla start-up vs function size
# ---------------------------------------------------------------------------

@dataclass
class Fig5Result:
    summaries: List[StartupSummary] = field(default_factory=list)

    def render(self) -> str:
        rows = []
        for s in self.summaries:
            ci = s.ci()
            rows.append([s.function, f"{s.median_ms:.2f}",
                         format_interval(ci.low, ci.high),
                         format_interval(*PAPER_TABLE1[s.function]["vanilla"])])
        return (
            "Figure 5 — vanilla start-up vs function size (95% CI)\n"
            + format_table(["function", "median(ms)", "CI", "paper CI"], rows)
        )


def figure5(repetitions: int = 200, seed: int = 42) -> Fig5Result:
    """Reproduce Figure 5: function size impact under vanilla start."""
    result = Fig5Result()
    for name in SYNTHETIC_FUNCTIONS:
        result.summaries.append(
            run_startup_experiment(name, "vanilla",
                                   repetitions=repetitions, seed=seed)
        )
    return result


# ---------------------------------------------------------------------------
# Figure 6 + Table 1 — the full factorial with snapshot policies
# ---------------------------------------------------------------------------

@dataclass
class FactorialCell:
    function: str
    treatment: str       # vanilla | nowarmup | warmup
    summary: StartupSummary


@dataclass
class FactorialResult:
    cells: List[FactorialCell] = field(default_factory=list)

    def summary(self, function: str, treatment: str) -> StartupSummary:
        for cell in self.cells:
            if cell.function == function and cell.treatment == treatment:
                return cell.summary
        raise KeyError(f"no cell for {function}/{treatment}")

    def ratio_pct(self, function: str, treatment: str) -> float:
        vanilla = self.summary(function, "vanilla").median_ms
        other = self.summary(function, treatment).median_ms
        return 100.0 * vanilla / other

    def render_figure6(self) -> str:
        rows = []
        for name in SYNTHETIC_FUNCTIONS:
            paper = PAPER_FIG6_RATIOS.get(name, {})
            rows.append([
                name,
                f"{self.ratio_pct(name, 'nowarmup'):.2f}%",
                f"{paper.get('nowarmup', float('nan')):.2f}%" if paper else "-",
                f"{self.ratio_pct(name, 'warmup'):.2f}%",
                f"{paper.get('warmup', float('nan')):.2f}%" if paper else "-",
            ])
        return (
            "Figure 6 — start-up speed-up over vanilla (vanilla/prebake x 100)\n"
            + format_table(
                ["function", "PB-NOWarmup", "paper", "PB-Warmup", "paper"], rows)
        )

    def render_table1(self) -> str:
        rows = []
        for name in SYNTHETIC_FUNCTIONS:
            row = [name.replace("synthetic-", "").capitalize()]
            for treatment in ("vanilla", "nowarmup", "warmup"):
                ci = self.summary(name, treatment).ci()
                row.append(format_interval(ci.low, ci.high))
                row.append(format_interval(*PAPER_TABLE1[name][treatment]))
            rows.append(row)
        return (
            "Table 1 — start-up intervals (ms, 95% confidence), measured vs paper\n"
            + format_table(
                ["size", "Vanilla", "paper", "PB-NOWarmup", "paper",
                 "PB-Warmup", "paper"],
                rows,
            )
        )


def factorial(repetitions: int = 200, seed: int = 42) -> FactorialResult:
    """Run the §4.2.2 full factorial: 3 techniques x 3 function sizes."""
    result = FactorialResult()
    treatments = (
        ("vanilla", "vanilla", AfterReady()),
        ("nowarmup", "prebake", AfterReady()),
        ("warmup", "prebake", AfterWarmup(requests=1)),
    )
    for name in SYNTHETIC_FUNCTIONS:
        for label, technique, policy in treatments:
            summary = run_startup_experiment(
                name, technique, policy=policy,
                repetitions=repetitions, seed=seed,
            )
            result.cells.append(FactorialCell(name, label, summary))
    return result


# ---------------------------------------------------------------------------
# Figure 7 — service-time ECDF overlap
# ---------------------------------------------------------------------------

@dataclass
class Fig7Row:
    function: str
    vanilla: ServiceSummary
    prebake: ServiceSummary
    ks: float
    mwu_p: float


@dataclass
class Fig7Result:
    rows: List[Fig7Row] = field(default_factory=list)

    def render(self) -> str:
        table_rows = []
        for row in self.rows:
            table_rows.append([
                row.function,
                f"{row.vanilla.median_ms:.3f}",
                f"{row.prebake.median_ms:.3f}",
                f"{row.ks:.3f}",
                f"{row.mwu_p:.3f}",
                "coincide" if row.mwu_p > 0.05 else "DIFFER",
            ])
        return (
            "Figure 7 — service time after start-up (200 requests); "
            "ECDFs should coincide\n"
            + format_table(
                ["function", "vanilla med(ms)", "prebake med(ms)", "KS dist",
                 "MWU p", "verdict"],
                table_rows,
            )
        )


def figure7(requests: int = 200, seed: int = 42) -> Fig7Result:
    """Reproduce Figure 7: no service-time penalty after restore."""
    result = Fig7Result()
    for name in REAL_FUNCTIONS:
        vanilla = run_service_experiment(name, "vanilla",
                                         requests=requests, seed=seed)
        prebake = run_service_experiment(name, "prebake", policy=AfterReady(),
                                         requests=requests, seed=seed)
        result.rows.append(Fig7Row(
            function=name,
            vanilla=vanilla,
            prebake=prebake,
            ks=ks_distance(vanilla.service_times_ms, prebake.service_times_ms),
            mwu_p=mann_whitney_u(vanilla.service_times_ms,
                                 prebake.service_times_ms).p_value,
        ))
    return result


# ---------------------------------------------------------------------------
# Section 5 — OpenFaaS integration
# ---------------------------------------------------------------------------

@dataclass
class Sec5Result:
    rows: List[Tuple[str, str, float, float]] = field(default_factory=list)
    # (function, template, build_ms, cold_start_ms)

    def render(self) -> str:
        return (
            "Section 5 — OpenFaaS integration: new/build/push/deploy then cold start\n"
            + format_table(
                ["function", "template", "build(ms)", "cold start(ms)"],
                [[f, t, f"{b:.1f}", f"{c:.2f}"] for f, t, b, c in self.rows],
            )
        )


def section5(seed: int = 42) -> Sec5Result:
    """Drive the §5 flow for vanilla and CRIU templates."""
    from repro.faas.openfaas.stack import make_openfaas_stack

    result = Sec5Result()
    cases = [
        ("markdown", "java8"),
        ("markdown", "java8-criu"),
        ("markdown", "java8-criu-warm"),
        ("image-resizer", "java8-criu-warm"),
    ]
    for index, (fn, template) in enumerate(cases):
        world = make_world(seed=seed + index)
        stack = make_openfaas_stack(world.kernel)
        factory = lambda fn=fn: make_app(fn)
        project = f"{fn}-{template}"
        stack.cli.new(project, template, factory)
        t0 = world.now
        stack.cli.build(project)
        build_ms = world.now - t0
        stack.cli.push(project)
        stack.cli.deploy(project)
        response = stack.gateway.invoke(project)
        assert response.ok
        cold = stack.gateway._services[project].replicas[0].cold_start_ms
        result.rows.append((fn, template, build_ms, cold))
    return result


# ---------------------------------------------------------------------------
# Ablations — restore strategy and snapshot point
# ---------------------------------------------------------------------------

@dataclass
class AblationResult:
    title: str
    rows: List[Tuple[str, str, float]] = field(default_factory=list)
    # (function, variant, median startup ms)

    def render(self) -> str:
        return (
            f"{self.title}\n"
            + format_table(
                ["function", "variant", "median startup(ms)"],
                [[f, v, f"{m:.2f}"] for f, v, m in self.rows],
            )
        )


def ablation_restore(repetitions: int = 100, seed: int = 42) -> AblationResult:
    """Eager vs lazy vs in-memory restore (future-work [26], §7)."""
    result = AblationResult(
        title="Ablation — restore strategy (warm snapshots, time to ready)"
    )
    variants = (
        ("eager-disk", RestoreMode.EAGER, False),
        ("eager-inmem", RestoreMode.EAGER, True),
        ("lazy-disk", RestoreMode.LAZY, False),
        ("lazy-inmem", RestoreMode.LAZY, True),
    )
    for name in ("synthetic-small", "synthetic-big"):
        for label, mode, in_memory in variants:
            # "ready" is the right metric here: lazy restore trades
            # readiness latency against first-request latency, and the
            # in-memory image cache only affects the restore itself.
            summary = run_startup_experiment(
                name, "prebake", policy=AfterWarmup(requests=1),
                repetitions=repetitions, seed=seed,
                restore_mode=mode, in_memory=in_memory,
                metric="ready",
            )
            result.rows.append((name, label, summary.median_ms))
    return result


def ablation_bake_timing(repetitions: int = 60, seed: int = 42) -> AblationResult:
    """When to bake: at deploy (build) time vs lazily on first start.

    The paper's design (§3.1) bakes at build time precisely because
    that keeps snapshot generation off the request path. This ablation
    quantifies the alternative: a lazily-baked function pays vanilla
    start-up *plus* the checkpoint on its first cold start.
    """
    from repro import make_world
    from repro.core.manager import PrebakeManager
    from repro.sim.rng import _derive_seed

    result = AblationResult(
        title="Ablation — bake at build time vs on first cold start "
              "(first request's observed start-up, ms)"
    )
    for name in ("markdown", "synthetic-medium"):
        build_time = []
        lazy = []
        for rep in range(repetitions):
            # Build-time bake: the deploy already produced the snapshot.
            world = make_world(seed=_derive_seed(seed, f"bt-{name}-{rep}"))
            manager = PrebakeManager(world.kernel)
            app = make_app(name)
            manager.deploy(app, policy=AfterWarmup(1))
            t0 = world.now
            handle = manager.start_replica(app, technique="prebake",
                                           policy=AfterWarmup(1))
            handle.invoke()
            build_time.append(world.now - t0)

            # Lazy bake: nothing exists until the first request needs a
            # replica — the bake runs inline, on the request path.
            world = make_world(seed=_derive_seed(seed, f"lz-{name}-{rep}"))
            manager = PrebakeManager(world.kernel)
            app = make_app(name)
            t0 = world.now
            handle = manager.start_replica(app, technique="prebake",
                                           policy=AfterWarmup(1))
            handle.invoke()
            lazy.append(world.now - t0)
        from repro.bench.stats import median as med
        result.rows.append((name, "bake-at-build", med(build_time)))
        result.rows.append((name, "bake-on-first-start", med(lazy)))
    return result


def ext_runtimes(repetitions: int = 100, seed: int = 42) -> AblationResult:
    """The paper's §7 future work: prebaking across runtimes.

    Runs markdown-rendering functions hosted on the JVM, CPython and
    Node.js runtime models under vanilla vs warm-prebake start. The
    non-JVM constants are projections, not paper fits — the point is
    the *relative* picture: every runtime benefits, and the benefit
    scales with how much bootstrap + lazy-load state the snapshot
    captures.
    """
    result = AblationResult(
        title="Extension — prebaking across runtimes (to first response)"
    )
    cases = ("markdown", "py-markdown", "node-markdown")
    for name in cases:
        for label, technique, policy in (
            ("vanilla", "vanilla", AfterReady()),
            ("prebake-warm", "prebake", AfterWarmup(requests=1)),
        ):
            summary = run_startup_experiment(
                name, technique, policy=policy,
                repetitions=repetitions, seed=seed,
                metric="first_response",
            )
            result.rows.append((name, label, summary.median_ms))
    return result


def ablation_snapshot_point(repetitions: int = 100, seed: int = 42) -> AblationResult:
    """Where along start-up to snapshot (§3.1's design discussion)."""
    result = AblationResult(
        title="Ablation — snapshot point along the start-up lifecycle"
    )
    points = (
        ("after-runtime-boot", AfterRuntimeBoot()),
        ("after-ready", AfterReady()),
        ("after-warmup-1", AfterWarmup(requests=1)),
        ("after-warmup-5", AfterWarmup(requests=5)),
    )
    for name in ("markdown", "synthetic-medium"):
        for label, policy in points:
            summary = run_startup_experiment(
                name, "prebake", policy=policy,
                repetitions=repetitions, seed=seed,
                metric="first_response",
            )
            result.rows.append((name, label, summary.median_ms))
    return result
