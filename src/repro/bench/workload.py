"""Load generator (paper §4.1).

"The load generator starts the function replica and holds the first
request until the replica becomes ready. After that, the load is sent
sequentially and at a constant rate."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.starters import ReplicaHandle, Starter
from repro.functions.base import FunctionApp
from repro.osproc.kernel import Kernel
from repro.runtime.base import Request, Response


@dataclass
class LoadResult:
    """Start-up timeline plus per-request service times."""

    handle: ReplicaHandle
    responses: List[Response] = field(default_factory=list)

    @property
    def service_times(self) -> List[float]:
        return [r.service_ms for r in self.responses]

    @property
    def errors(self) -> int:
        return sum(1 for r in self.responses if not r.ok)


class LoadGenerator:
    """Sequential constant-rate load against one replica."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel

    def run(
        self,
        starter: Starter,
        app: FunctionApp,
        requests: int = 200,
        interval_ms: float = 10.0,
        body: Optional[object] = None,
    ) -> LoadResult:
        """Start a replica and drive ``requests`` invocations at a
        constant rate (one in flight at a time, as in public clouds)."""
        if requests < 0:
            raise ValueError(f"requests must be >= 0, got {requests}")
        handle = starter.start(app)
        result = LoadResult(handle=handle)
        for i in range(requests):
            if i > 0 and interval_ms > 0:
                # Constant-rate spacing between sequential requests.
                self.kernel.clock.advance(interval_ms)
            response = handle.invoke(Request(body=body))
            result.responses.append(response)
        return result
