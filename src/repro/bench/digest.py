"""Streaming quantile estimation (the P² algorithm).

Platform metrics (gateway latency percentiles, autoscaler signals)
cannot retain every sample; the P² algorithm (Jain & Chlamtac, 1985)
maintains a target quantile with five markers in O(1) memory and O(1)
per observation. :class:`LatencyDigest` bundles the usual operational
percentiles; the tests validate accuracy against exact quantiles.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence


class P2Quantile:
    """One streaming quantile estimator."""

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._initial: List[float] = []
        # Marker state after initialization:
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self.count = 0

    def observe(self, value: float) -> None:
        """Feed one observation."""
        if math.isnan(value):
            raise ValueError("cannot observe NaN")
        self.count += 1
        if self._heights:
            self._observe_initialized(value)
            return
        self._initial.append(value)
        if len(self._initial) == 5:
            self._initial.sort()
            self._heights = list(self._initial)
            self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
            self._desired = [1.0, 1.0 + 2.0 * self.q, 1.0 + 4.0 * self.q,
                             3.0 + 2.0 * self.q, 5.0]

    def _observe_initialized(self, value: float) -> None:
        h, pos = self._heights, self._positions
        if value < h[0]:
            h[0] = value
            cell = 0
        elif value >= h[4]:
            h[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= h[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]

        for i in (1, 2, 3):
            delta = self._desired[i] - pos[i]
            if (delta >= 1.0 and pos[i + 1] - pos[i] > 1.0) or \
               (delta <= -1.0 and pos[i - 1] - pos[i] < -1.0):
                direction = 1.0 if delta > 0 else -1.0
                candidate = self._parabolic(i, direction)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, direction)
                pos[i] += direction

    def _parabolic(self, i: int, d: float) -> float:
        h, pos = self._heights, self._positions
        return h[i] + d / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + d) * (h[i + 1] - h[i]) / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - d) * (h[i] - h[i - 1]) / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, pos = self._heights, self._positions
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (pos[j] - pos[i])

    @property
    def value(self) -> float:
        """Current quantile estimate."""
        if self.count == 0:
            return 0.0
        if not self._heights:
            ordered = sorted(self._initial)
            index = min(len(ordered) - 1,
                        max(0, math.ceil(self.q * len(ordered)) - 1))
            return ordered[index]
        return self._heights[2]


class LatencyDigest:
    """Bundle of P² estimators for the usual operational percentiles."""

    DEFAULT_QUANTILES = (0.50, 0.90, 0.99)

    def __init__(self, quantiles: Sequence[float] = DEFAULT_QUANTILES) -> None:
        if not quantiles:
            raise ValueError("need at least one quantile")
        self._estimators: Dict[float, P2Quantile] = {
            q: P2Quantile(q) for q in quantiles
        }
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for estimator in self._estimators.values():
            estimator.observe(value)

    def quantile(self, q: float) -> float:
        estimator = self._estimators.get(q)
        if estimator is None:
            raise KeyError(
                f"quantile {q} not tracked; tracked: {sorted(self._estimators)}"
            )
        return estimator.value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        out = {"count": float(self.count), "mean": self.mean}
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
        for q, estimator in sorted(self._estimators.items()):
            out[f"p{int(q * 100)}"] = estimator.value
        return out
