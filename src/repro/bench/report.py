"""Plain-text rendering of experiment results (paper-style tables)."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned fixed-width table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)).rstrip())
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_interval(low: float, high: float, digits: int = 2) -> str:
    """Paper Table 1 style: ``(219.25;220.32)``."""
    return f"({low:.{digits}f};{high:.{digits}f})"


def format_ms(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}ms"


def format_pct(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}%"


def stacked_bar(parts: dict, total_width: int = 60) -> str:
    """ASCII stacked bar for the Figure 4 phase breakdown."""
    total = sum(parts.values())
    if total <= 0:
        return "(empty)"
    glyphs = {"CLONE": "C", "EXEC": "E", "RTS": "R", "APPINIT": "A"}
    bar = []
    for name, value in parts.items():
        width = int(round(total_width * value / total))
        bar.append(glyphs.get(name, "?") * width)
    return "".join(bar)[:total_width]


def bullet_list(items: List[str]) -> str:
    return "\n".join(f"  - {item}" for item in items)
