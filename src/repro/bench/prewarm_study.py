"""X13 — predictive prewarming study: the keep-alive policy ladder.

The paper removes cold-start *cost* (prebaking makes a cold start
cheap); ROADMAP item 2's open remainder is removing cold-start
*frequency*: decide ahead of demand which functions to keep or make
warm. This study sweeps the policy ladder from
:mod:`repro.predict` over one production-shaped trace and reports the
two axes every policy trades between — cold starts suffered and
wasted warm-seconds held:

* **reactive** — no keep-alive at all: the zero-waste / max-cold
  corner;
* **fixed** — the classic fixed idle timeout (the platform status
  quo, and the baseline the acceptance criteria compare against);
* **histogram** — Serverless-in-the-Wild-style hybrid: per-function
  inter-arrival histogram chooses the keep-alive, an EWMA of window
  counts sizes the warm set, and long *predictable* gaps get a
  just-in-time prewarm schedule instead of an unaffordable timeout;
* **learned** — same skeleton, but next-window counts come from the
  numpy-only attention forecaster, which tracks burst edges faster
  than a decayed average;
* **oracle** — reads next-window counts straight off the trace: the
  clairvoyant bound on what any forecast could achieve.

The trace composes the X12 fleet synthesizer (Zipf popularity,
interrupted-Poisson bursts, diurnal thinning) with a class of
**timer/cron functions**: strictly periodic triggers (with jitter)
whose periods dwarf any keep-alive — the dominant cold-start class in
production FaaS traces, and the one a histogram turns from "cold
every single time" into "warm for a few seconds of idle cost".
Timer functions deliberately carry the largest images, so covering
them moves the cold-start *tail*, not just the rate.

Cold-start latency uses the calibrated CostModel decomposition (the
same clone/spawn/restore prices as X12) against a node-local image
cache that predictive policies *prefetch* into — the chunk-prefetch
half of the tentpole, so a predicted-then-realized cold start fetches
from local cache instead of the registry.

One *real* platform episode (FaaSPlatform with ``PrewarmConfig``
installed) rides along as the exemplar: its controller stats prove
the live wiring (forecast → autoscaler prewarm → deployer prefetch)
fires outside the simulator too.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import make_world
from repro.bench.report import format_table
from repro.bench.traces import synthesize_fleet_workload
from repro.faas.platform import FaaSPlatform, PlatformConfig
from repro.functions.base import make_app
from repro.predict.policy import (
    FixedKeepAlivePolicy,
    HistogramEwmaPolicy,
    LearnedPolicy,
    OraclePolicy,
    PrewarmConfig,
    PrewarmPolicy,
    ReactivePolicy,
)
from repro.sim.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.sim.rng import _derive_seed

MIB = 1024 * 1024

POLICY_LADDER = ("reactive", "fixed", "histogram", "learned", "oracle")


@dataclass(frozen=True)
class PrewarmStudyConfig:
    """Shape of one X13 run (defaults = the sealed baseline)."""

    functions: int = 36               # Zipf/bursty/Poisson population
    timer_functions: int = 12         # periodic cron-style triggers
    requests: int = 200_000
    duration_ms: float = 7_200_000.0  # 2 simulated hours
    window_ms: float = 10_000.0       # forecast window
    service_ms: float = 150.0
    max_replicas: int = 8
    fixed_keepalive_ms: float = 60_000.0
    keepalive_floor_ms: float = 1_000.0
    # Per-function keep-alives may exceed the fixed status quo where
    # the histogram says the coverage pays (Serverless-in-the-Wild
    # caps at several multiples of the default for the same reason).
    keepalive_cap_ms: float = 120_000.0
    horizon: int = 64
    ewma_alpha: float = 0.25
    node_cache_mib: int = 768         # image-prefetch cache per node
    # Bursty main-population shape (interrupted Poisson).
    bursty_fraction: float = 0.3
    mean_on_ms: float = 30_000.0
    mean_off_ms: float = 120_000.0
    # Timer class: periods far beyond any keep-alive, mild jitter.
    timer_period_lo_ms: float = 150_000.0
    timer_period_hi_ms: float = 420_000.0
    timer_jitter: float = 0.03
    # Image sizes: timers carry the big batch images, so covering their
    # cold starts moves the tail of the cold-latency distribution.
    main_image_lo_mib: int = 16
    main_image_hi_mib: int = 64
    timer_image_lo_mib: int = 96
    timer_image_hi_mib: int = 160
    prewarm_budget_per_window: int = 16

    @property
    def total_functions(self) -> int:
        return self.functions + self.timer_functions


@dataclass
class PolicyOutcome:
    """One policy's two-axis score on one trace repetition."""

    policy: str
    requests: int = 0
    cold_starts: int = 0
    warm_starts: int = 0
    queued: int = 0
    cold_p50_ms: float = 0.0
    cold_p99_ms: float = 0.0
    cold_mean_ms: float = 0.0
    wasted_warm_s: float = 0.0
    timer_cold_starts: int = 0
    timer_wasted_warm_s: float = 0.0
    prewarm_placements: int = 0
    prefetch_mib: float = 0.0
    cold_cache_hits: int = 0

    @property
    def cold_start_rate(self) -> float:
        return self.cold_starts / self.requests if self.requests else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "requests": self.requests,
            "cold_starts": self.cold_starts,
            "cold_start_rate": self.cold_start_rate,
            "warm_starts": self.warm_starts,
            "queued": self.queued,
            "cold_p50_ms": self.cold_p50_ms,
            "cold_p99_ms": self.cold_p99_ms,
            "cold_mean_ms": self.cold_mean_ms,
            "wasted_warm_s": self.wasted_warm_s,
            "timer_cold_starts": self.timer_cold_starts,
            "timer_wasted_warm_s": self.timer_wasted_warm_s,
            "prewarm_placements": self.prewarm_placements,
            "prefetch_mib": self.prefetch_mib,
            "cold_cache_hits": self.cold_cache_hits,
        }


@dataclass
class PrewarmRepResult:
    """The policy ladder's outcomes on one repetition's trace."""

    rep: int
    seed: int
    outcomes: Dict[str, PolicyOutcome] = field(default_factory=dict)

    @property
    def learned_beats_fixed(self) -> bool:
        """The acceptance criterion: strictly fewer cold starts AND a
        strictly lower cold p99 at equal-or-lower wasted warm-seconds."""
        learned = self.outcomes["learned"]
        fixed = self.outcomes["fixed"]
        return (learned.cold_starts < fixed.cold_starts
                and learned.cold_p99_ms < fixed.cold_p99_ms
                and learned.wasted_warm_s <= fixed.wasted_warm_s)

    @property
    def oracle_bounds_gap(self) -> bool:
        """The oracle never does worse than the learned policy."""
        return (self.outcomes["oracle"].cold_start_rate
                <= self.outcomes["learned"].cold_start_rate)


@dataclass
class PrewarmStudyResult:
    """The X13 report: the ladder per rep + the live-platform exemplar."""

    config: PrewarmStudyConfig
    seed: int
    reps: List[PrewarmRepResult] = field(default_factory=list)
    exemplar: Dict[str, object] = field(default_factory=dict)

    @property
    def headline(self) -> PrewarmRepResult:
        return self.reps[0]

    def as_dict(self) -> Dict[str, object]:
        return {
            "experiment": "prewarm-study",
            "seed": self.seed,
            "config": {
                "functions": self.config.functions,
                "timer_functions": self.config.timer_functions,
                "requests": self.config.requests,
                "duration_ms": self.config.duration_ms,
                "window_ms": self.config.window_ms,
                "horizon": self.config.horizon,
                "fixed_keepalive_ms": self.config.fixed_keepalive_ms,
                "node_cache_mib": self.config.node_cache_mib,
            },
            "reps": [
                {
                    "rep": r.rep,
                    "seed": r.seed,
                    "learned_beats_fixed": r.learned_beats_fixed,
                    "oracle_bounds_gap": r.oracle_bounds_gap,
                    "policies": {name: o.as_dict()
                                 for name, o in r.outcomes.items()},
                }
                for r in self.reps
            ],
            "exemplar": self.exemplar,
        }

    def render(self) -> str:
        return render_prewarm_report(self.as_dict())


# ---------------------------------------------------------------------------
# Trace synthesis: fleet workload + the timer/cron overlay
# ---------------------------------------------------------------------------


def _synthesize_prewarm_trace(config: PrewarmStudyConfig,
                              seed: int) -> Tuple[np.ndarray, np.ndarray]:
    """Merged (times, fids): fleet trace + periodic timer arrivals."""
    times, fids = synthesize_fleet_workload(
        function_count=config.functions,
        duration_ms=config.duration_ms,
        requests=config.requests,
        bursty_fraction=config.bursty_fraction,
        mean_on_ms=config.mean_on_ms,
        mean_off_ms=config.mean_off_ms,
        seed=_derive_seed(seed, "prewarm-trace"))
    rng = np.random.Generator(np.random.PCG64(
        _derive_seed(seed, "prewarm-timers")))
    timer_times: List[float] = []
    timer_fids: List[int] = []
    for i in range(config.timer_functions):
        fid = config.functions + i
        period = rng.uniform(config.timer_period_lo_ms,
                             config.timer_period_hi_ms)
        t = rng.uniform(0.0, period)
        while t < config.duration_ms:
            timer_times.append(t)
            timer_fids.append(fid)
            gap = period * (1.0 + config.timer_jitter
                            * rng.standard_normal())
            t += max(gap, 0.5 * period)
    all_times = np.concatenate([
        times, np.asarray(timer_times, dtype=np.float64)])
    all_fids = np.concatenate([
        fids.astype(np.int64),
        np.asarray(timer_fids, dtype=np.int64)])
    order = np.argsort(all_times, kind="stable")
    return all_times[order], all_fids[order]


def _image_sizes(config: PrewarmStudyConfig, seed: int) -> np.ndarray:
    setup = np.random.Generator(np.random.PCG64(
        _derive_seed(seed, "prewarm-images")))
    sizes = np.empty(config.total_functions, dtype=np.float64)
    sizes[:config.functions] = setup.integers(
        config.main_image_lo_mib, config.main_image_hi_mib,
        size=config.functions)
    sizes[config.functions:] = setup.integers(
        config.timer_image_lo_mib, config.timer_image_hi_mib,
        size=config.timer_functions)
    return sizes


# ---------------------------------------------------------------------------
# The per-policy simulator
# ---------------------------------------------------------------------------


class _ImageLRU:
    """Whole-image LRU cache standing in for a node's HotChunkCache."""

    def __init__(self, capacity_mib: float) -> None:
        self.capacity_mib = float(capacity_mib)
        self._resident: Dict[int, float] = {}   # fid -> MiB, LRU-ordered
        self._used_mib = 0.0

    def admit(self, fid: int, mib: float) -> bool:
        """Touch ``fid``; returns True when it was already resident."""
        present = fid in self._resident
        if present:
            del self._resident[fid]            # move-to-end bump
        else:
            self._used_mib += mib
        self._resident[fid] = mib
        while self._used_mib > self.capacity_mib and len(self._resident) > 1:
            victim, size = next(iter(self._resident.items()))
            if victim == fid:
                break
            del self._resident[victim]
            self._used_mib -= size
        return present


class _PolicySim:
    """One chronological sweep of the trace under one prewarm policy.

    Replicas are ``[ready_ms, busy_until_ms, idle_from_ms, expire_override]``
    rows in per-function pools. Expiry is lazy (evaluated at arrivals,
    window ticks, and the final flush) but exact: an idle replica's
    expiry instant is a deterministic function of when it went idle,
    so wasted warm-time never depends on when the sweep notices it.
    """

    def __init__(self, config: PrewarmStudyConfig, policy: PrewarmPolicy,
                 image_mib: np.ndarray, costs: CostModel, seed: int) -> None:
        self.c = config
        self.policy = policy
        self.costs = costs
        self.image_mib = image_mib
        self.rng = np.random.Generator(np.random.PCG64(seed))
        n = config.total_functions
        self.pools: List[List[List[float]]] = [[] for _ in range(n)]
        self.ka: List[float] = [policy.keepalive_ms(fid) for fid in range(n)]
        self.last_arrival: List[float] = [-1.0] * n
        self.sched_mark: List[float] = [-1.0] * n
        self.wasted_ms = np.zeros(n, dtype=np.float64)
        self.cold_by_fid = np.zeros(n, dtype=np.int64)
        self.cache = _ImageLRU(config.node_cache_mib)
        self.cold_lats: List[float] = []
        self.outcome = PolicyOutcome(policy=policy.name)

    # -- replica lifecycle ---------------------------------------------------

    def _expire(self, fid: int, t: float) -> None:
        pool = self.pools[fid]
        if not pool:
            return
        ka = self.ka[fid]
        keep: List[List[float]] = []
        for r in pool:
            if r[1] > t:                      # busy or still provisioning
                keep.append(r)
                continue
            expire_at = r[3] if r[3] >= 0.0 else r[2] + ka
            if expire_at <= t:
                self.wasted_ms[fid] += max(0.0, expire_at - r[2])
            else:
                keep.append(r)
        pool[:] = keep

    def _cold_latency(self, fid: int, prefetch: bool = False) -> float:
        """Calibrated provision latency against the node image cache."""
        costs = self.costs
        mib = float(self.image_mib[fid])
        hit = self.cache.admit(fid, mib)
        if prefetch and not hit:
            self.outcome.prefetch_mib += mib
        cf = 1.0 if hit else 0.0
        pages_ms = costs.restore_per_mib_ms * mib
        fetch_ms = pages_ms * costs.restore_fetch_fraction * (
            (1.0 - cf) + cf * costs.restore_cache_hit_factor)
        map_ms = pages_ms * (1.0 - costs.restore_fetch_fraction)
        restore_ms = costs.restore_base_ms + fetch_ms + map_ms
        factor = math.exp(costs.noise_sigma * self.rng.standard_normal())
        return (costs.clone_ms + costs.criu_spawn_ms + restore_ms) * factor, hit

    def _place(self, fid: int, t: float, expire_override: float) -> None:
        """Pre-provision one replica (prefetching its image first)."""
        latency, _ = self._cold_latency(fid, prefetch=True)
        ready = t + latency
        self.pools[fid].append([ready, ready, ready, expire_override])
        self.outcome.prewarm_placements += 1

    # -- forecast-window tick ------------------------------------------------

    def _tick(self, boundary: float, counts: List[int]) -> None:
        c = self.c
        policy = self.policy
        for fid in range(c.total_functions):
            policy.observe_window(fid, float(counts[fid]))
        placed = 0
        budget = c.prewarm_budget_per_window
        min_target = 1 if policy.prewarm_singletons else 2
        for fid in range(c.total_functions):
            target = policy.target_warm(fid)
            ka = policy.keepalive_ms(fid)
            if target > 0:
                # Anti-churn floor (mirrors PrewarmController): a
                # deliberately held replica must outlive the gap to the
                # next planning pass.
                ka = max(ka, 1.5 * c.window_ms)
            self.ka[fid] = ka
            pool = self.pools[fid]
            if target >= min_target and pool:
                # Target-protected retention: GC never reaps below the
                # planned warm set. The most-recently-idle replicas up
                # to the target are refreshed (their standby time is
                # accrued as waste now, restarting their idle clock) so
                # surplus depth for overlap bursts survives between
                # plans instead of churning cold. Forecast policies
                # exclude singleton targets (see
                # ``PrewarmPolicy.prewarm_singletons``).
                busy = sum(1 for r in pool if r[1] > boundary)
                idle = sorted((r for r in pool if r[1] <= boundary),
                              key=lambda r: r[2], reverse=True)
                for r in idle[:max(0, target - busy)]:
                    if r[3] >= 0.0:
                        continue          # scheduled holds keep their own
                    self.wasted_ms[fid] += max(0.0, boundary - r[2])
                    r[2] = boundary
            self._expire(fid, boundary)
            if target >= min_target and target > len(pool) and placed < budget:
                add = min(target - len(pool), budget - placed,
                          c.max_replicas - len(pool))
                for _ in range(add):
                    self._place(fid, boundary, -1.0)
                placed += max(0, add)
            elif target > 0:
                # Target already met: refresh the image cache so a
                # predicted-then-realized cold start fetches locally.
                self.cache.admit(fid, float(self.image_mib[fid]))
            if (not pool and placed < budget
                    and self.last_arrival[fid] >= 0.0
                    and self.sched_mark[fid] != self.last_arrival[fid]):
                schedule = policy.prewarm_schedule(fid)
                if schedule is not None:
                    eta, hold = schedule
                    due = self.last_arrival[fid] + eta
                    if boundary >= due + hold:
                        self.sched_mark[fid] = self.last_arrival[fid]
                    elif due <= boundary:
                        self._place(fid, boundary, due + hold)
                        self.sched_mark[fid] = self.last_arrival[fid]
                        placed += 1

    # -- arrivals ------------------------------------------------------------

    def _arrival(self, t: float, fid: int) -> None:
        c = self.c
        self._expire(fid, t)
        pool = self.pools[fid]
        best: Optional[List[float]] = None
        for r in pool:
            if r[1] <= t and (best is None or r[2] > best[2]):
                best = r                      # LIFO: most recently idle
        if best is not None:
            self.wasted_ms[fid] += max(0.0, t - best[2])
            best[1] = t + c.service_ms
            best[2] = best[1]
            best[3] = -1.0
            self.outcome.warm_starts += 1
        elif len(pool) < c.max_replicas:
            latency, cached = self._cold_latency(fid)
            self.cold_lats.append(latency)
            busy = t + latency + c.service_ms
            pool.append([t, busy, busy, -1.0])
            self.outcome.cold_starts += 1
            self.cold_by_fid[fid] += 1
            if cached:
                self.outcome.cold_cache_hits += 1
            if fid >= c.functions:
                self.outcome.timer_cold_starts += 1
        else:
            replica = min(pool, key=lambda r: r[1])
            replica[1] += c.service_ms
            replica[2] = replica[1]
            replica[3] = -1.0
            self.outcome.queued += 1
        if self.last_arrival[fid] >= 0.0:
            self.policy.note_gap(fid, t - self.last_arrival[fid])
        self.last_arrival[fid] = t

    # -- the sweep -----------------------------------------------------------

    def run(self, times: np.ndarray, fids: np.ndarray,
            tick: bool) -> PolicyOutcome:
        c = self.c
        n = c.total_functions
        boundary = c.window_ms
        counts = [0] * n
        for t, fid in zip(times.tolist(), fids.tolist()):
            if tick:
                while boundary <= t:
                    self._tick(boundary, counts)
                    counts = [0] * n
                    boundary += c.window_ms
            counts[fid] += 1
            self._arrival(t, fid)
        if tick:
            while boundary <= c.duration_ms:
                self._tick(boundary, counts)
                counts = [0] * n
                boundary += c.window_ms
        self._flush(c.duration_ms)

        out = self.outcome
        out.requests = int(times.size)
        if self.cold_lats:
            lats = np.asarray(self.cold_lats)
            out.cold_p50_ms = float(np.quantile(lats, 0.5))
            out.cold_p99_ms = float(np.quantile(lats, 0.99))
            out.cold_mean_ms = float(lats.mean())
        out.wasted_warm_s = float(self.wasted_ms.sum()) / 1000.0
        out.timer_wasted_warm_s = \
            float(self.wasted_ms[c.functions:].sum()) / 1000.0
        return out

    def _flush(self, end_ms: float) -> None:
        """Close out idle time still accruing when the trace ends."""
        for fid, pool in enumerate(self.pools):
            ka = self.ka[fid]
            for r in pool:
                idle_from = r[2]
                if idle_from >= end_ms:
                    continue
                expire_at = r[3] if r[3] >= 0.0 else idle_from + ka
                self.wasted_ms[fid] += max(
                    0.0, min(expire_at, end_ms) - idle_from)


# ---------------------------------------------------------------------------
# The study
# ---------------------------------------------------------------------------


def _window_counts(config: PrewarmStudyConfig, times: np.ndarray,
                   fids: np.ndarray) -> Dict[int, List[float]]:
    """Per-function next-window count vectors for the oracle."""
    nwin = int(math.ceil(config.duration_ms / config.window_ms))
    windows = np.minimum(
        (times / config.window_ms).astype(np.int64), nwin - 1)
    flat = np.bincount(fids * nwin + windows,
                       minlength=config.total_functions * nwin)
    matrix = flat.reshape(config.total_functions, nwin)
    return {fid: matrix[fid].astype(float).tolist()
            for fid in range(config.total_functions)}


def _build_policy(name: str, config: PrewarmStudyConfig, seed: int,
                  oracle_counts: Dict[int, List[float]]) -> PrewarmPolicy:
    kwargs = dict(
        window_ms=config.window_ms,
        service_ms=config.service_ms,
        keepalive_floor_ms=config.keepalive_floor_ms,
        keepalive_cap_ms=config.keepalive_cap_ms,
        default_keepalive_ms=config.fixed_keepalive_ms,
        ewma_alpha=config.ewma_alpha,
    )
    if name == "reactive":
        return ReactivePolicy()
    if name == "fixed":
        return FixedKeepAlivePolicy(config.fixed_keepalive_ms)
    if name == "histogram":
        return HistogramEwmaPolicy(**kwargs)
    if name == "learned":
        return LearnedPolicy(horizon=config.horizon,
                             seed=_derive_seed(seed, "learned-policy"),
                             **kwargs)
    if name == "oracle":
        # The clairvoyant bound staffs generously: it knows the next
        # window's exact count and never pays for a wrong forecast, so
        # a wide overlap margin only tightens the bound.
        return OraclePolicy(oracle_counts, window_ms=config.window_ms,
                            service_ms=config.service_ms, safety=4.0)
    raise ValueError(f"unknown policy {name!r}")


def _run_repetition(config: PrewarmStudyConfig, seed: int,
                    rep: int) -> PrewarmRepResult:
    rep_seed = _derive_seed(seed, f"prewarm-{rep}")
    times, fids = _synthesize_prewarm_trace(config, rep_seed)
    image_mib = _image_sizes(config, rep_seed)
    oracle_counts = _window_counts(config, times, fids)
    result = PrewarmRepResult(rep=rep, seed=rep_seed)
    for name in POLICY_LADDER:
        policy = _build_policy(name, config, rep_seed, oracle_counts)
        sim = _PolicySim(config, policy, image_mib, DEFAULT_COST_MODEL,
                         seed=_derive_seed(rep_seed, f"latency-{name}"))
        tick = name in ("histogram", "learned", "oracle")
        result.outcomes[name] = sim.run(times, fids, tick=tick)
    return result


def _platform_exemplar(seed: int) -> Dict[str, object]:
    """One live platform episode with the prewarm layer installed.

    A short, dense markdown arrival stream with a deliberately large
    service-time hint, so the forecast target exceeds the serving
    replica count and the controller's whole pipeline fires: windows
    fed -> plan -> autoscaler prewarm provisioning -> deployer chunk
    prefetch into the node HotChunkCache.
    """
    world = make_world(seed=_derive_seed(seed, "prewarm-exemplar"),
                       observe=True)
    kernel = world.kernel
    platform = FaaSPlatform(kernel, PlatformConfig(prewarm=PrewarmConfig(
        policy="learned", window_ms=200.0, service_ms_hint=500.0,
        min_forecast=0.5)))
    platform.register_function(lambda: make_app("markdown"),
                               start_technique="prebake",
                               cache_policy="freq-over-size")
    for _ in range(60):
        platform.invoke("markdown")
        kernel.clock.advance(40.0)
        platform.gc_tick()
    controller = platform.prewarm
    stats = controller.stats if controller else None
    autoscaler = platform.autoscaler
    prewarm_events = sum(1 for e in autoscaler.events
                         if e.action == "prewarm")
    return {
        "plans": stats.plans if stats else 0,
        "windows_fed": stats.windows_fed if stats else 0,
        "prewarm_replicas": stats.prewarm_replicas if stats else 0,
        "prefetch_requests": stats.prefetch_requests if stats else 0,
        "autoscaler_prewarm_events": prewarm_events,
        "autoscaler_events_dropped": autoscaler.events_dropped,
        "wasted_warm_ms": dict(autoscaler.wasted_warm_ms),
    }


def prewarm_study(repetitions: int = 1, seed: int = 42,
                  requests: int = 200_000, horizon: int = 64,
                  functions: int = 36, timer_functions: int = 12,
                  duration_ms: float = 7_200_000.0) -> PrewarmStudyResult:
    """Run X13: the policy ladder over ``repetitions`` fleet traces."""
    config = PrewarmStudyConfig(
        functions=functions, timer_functions=timer_functions,
        requests=requests, duration_ms=duration_ms, horizon=horizon)
    result = PrewarmStudyResult(config=config, seed=seed)
    for rep in range(repetitions):
        result.reps.append(_run_repetition(config, seed, rep))
    result.exemplar = _platform_exemplar(seed)
    return result


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def render_prewarm_report(artifact: Dict[str, object]) -> str:
    """Human-readable X13 report (the CI smoke greps its verdict lines)."""
    lines: List[str] = []
    config = artifact.get("config", {})
    lines.append("X13 — predictive prewarming study")
    lines.append(
        f"functions: {config.get('functions')} "
        f"(+{config.get('timer_functions')} timer)  "
        f"requests: {config.get('requests')}  "
        f"window: {config.get('window_ms')} ms  "
        f"fixed keep-alive: {config.get('fixed_keepalive_ms')} ms")
    for rep in artifact.get("reps", []):  # type: ignore[union-attr]
        lines.append("")
        lines.append(f"rep {rep['rep']}:")
        rows = []
        for name in POLICY_LADDER:
            o = rep["policies"].get(name)
            if not o:
                continue
            rows.append([
                name,
                o["cold_starts"],
                f"{100.0 * o['cold_start_rate']:.2f}%",
                f"{o['cold_p50_ms']:.1f}",
                f"{o['cold_p99_ms']:.1f}",
                f"{o['wasted_warm_s']:.0f}",
                o["timer_cold_starts"],
                o["prewarm_placements"],
            ])
        lines.append(format_table(
            ["policy", "cold", "cold-rate", "p50(ms)", "p99(ms)",
             "waste(s)", "timer-cold", "prewarmed"], rows))
        learned = rep["policies"]["learned"]
        fixed = rep["policies"]["fixed"]
        oracle = rep["policies"]["oracle"]
        verdict = "yes" if rep["learned_beats_fixed"] else "NO"
        lines.append(
            f"predictive beats fixed keep-alive: {verdict} "
            f"(cold {learned['cold_starts']} vs {fixed['cold_starts']}, "
            f"p99 {learned['cold_p99_ms']:.1f} vs "
            f"{fixed['cold_p99_ms']:.1f} ms, "
            f"waste {learned['wasted_warm_s']:.0f} vs "
            f"{fixed['wasted_warm_s']:.0f} s)")
        bound = "yes" if rep["oracle_bounds_gap"] else "NO"
        lines.append(
            f"oracle bounds the gap: {bound} "
            f"(oracle cold rate {100.0 * oracle['cold_start_rate']:.2f}% "
            f"<= learned {100.0 * learned['cold_start_rate']:.2f}%)")
    exemplar = artifact.get("exemplar", {})
    if exemplar:
        lines.append("")
        lines.append(
            "live platform exemplar: "
            f"{exemplar.get('prewarm_replicas', 0)} prewarmed replicas, "
            f"{exemplar.get('prefetch_requests', 0)} prefetch requests, "
            f"{exemplar.get('windows_fed', 0)} forecast windows fed, "
            f"{exemplar.get('autoscaler_events_dropped', 0)} events dropped")
    return "\n".join(lines)
