"""Figure-4 extension: restore modes × image size, plus registry dedup.

The paper's Figure 4 shows restore time growing with snapshot size
(NOOP 13 MB → Image Resizer 99.2 MB) under a fully eager restore.
This experiment extends that axis with the two optimizations the
refactored pipeline adds:

* a *restore-mode sweep*: EAGER vs LAZY vs WORKING_SET restore latency
  per real function, where the first WORKING_SET restore records the
  pages touched before first response and later restores prefetch only
  that set (REAP);
* *registry dedup accounting*: all snapshots live in one
  content-addressed store, so the report shows logical vs physical
  bytes, the cross-snapshot dedup ratio, per-function ready→warm image
  diffs (:mod:`repro.criu.imgdiff`), and the sublinear growth of the
  physical registry as functions accumulate.

Unlike the fig3/fig4 harness (fresh world per repetition), restores
here repeat inside one world: working-set records and the chunk store
must persist across restores for either mechanism to show.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro import make_world
from repro.bench.report import format_table
from repro.bench.stats import ks_distance, mann_whitney_u, median
from repro.core.bakery import registry_growth_curve
from repro.core.manager import PrebakeManager
from repro.core.policy import AfterReady, AfterWarmup
from repro.core.store import SnapshotKey
from repro.criu.imgdiff import diff_images
from repro.criu.restore import RestoreMode
from repro.functions import make_app
from repro.sim.rng import _derive_seed

REAL_FUNCTIONS = ("noop", "markdown", "image-resizer")
GROWTH_FUNCTIONS = REAL_FUNCTIONS + ("synthetic-small", "synthetic-medium")


@dataclass
class ModeRow:
    """Restore-latency medians for one function across modes."""

    function: str
    image_mib: float
    eager_ms: float
    lazy_ms: float
    lazy_first_response_ms: float   # includes the deferred paging debt
    ws_record_ms: float             # first (recording) WORKING_SET restore
    ws_ms: float                    # steady-state prefetching restores
    ws_fraction: float              # recorded working set / resident set
    ks_vs_eager: float              # service-time ECDF distance WS vs EAGER
    mwu_p_vs_eager: float

    @property
    def ws_speedup_pct(self) -> float:
        if self.eager_ms <= 0:
            return 0.0
        return 100.0 * (1 - self.ws_ms / self.eager_ms)


@dataclass
class RestoreSweepResult:
    rows: List[ModeRow] = field(default_factory=list)
    logical_mib: float = 0.0
    physical_mib: float = 0.0
    dedup_ratio: float = 0.0
    chunk_count: int = 0
    dedup_hits: int = 0
    imgdiff_summaries: List[str] = field(default_factory=list)
    growth: List[Dict[str, float]] = field(default_factory=list)

    def render(self) -> str:
        table_rows = [
            [
                row.function,
                f"{row.image_mib:.1f}",
                f"{row.eager_ms:.2f}",
                f"{row.lazy_ms:.2f}",
                f"{row.lazy_first_response_ms:.2f}",
                f"{row.ws_record_ms:.2f}",
                f"{row.ws_ms:.2f}",
                f"{row.ws_fraction:.1%}",
                f"{row.ws_speedup_pct:.1f}%",
                f"{row.ks_vs_eager:.3f}",
                f"{row.mwu_p_vs_eager:.2f}",
            ]
            for row in self.rows
        ]
        lines = [
            "Figure 4 extension — restore latency vs image size across "
            "restore modes (medians)",
            format_table(
                ["function", "image(MiB)", "eager(ms)", "lazy(ms)",
                 "lazy 1st-resp", "ws record", "ws(ms)", "ws set",
                 "ws speedup", "KS", "MWU p"],
                table_rows,
            ),
            "(lazy defers paging debt to the first request; ws = "
            "WORKING_SET prefetch of the recorded first-response set. "
            "KS/MWU compare post-restore service-time ECDFs, ws vs eager.)",
            "",
            "Registry dedup — one content-addressed store, ready+warm "
            "snapshots of all functions:",
            f"  logical {self.logical_mib:.1f} MiB  physical "
            f"{self.physical_mib:.1f} MiB  dedup ratio "
            f"{self.dedup_ratio:.2f}x  ({self.chunk_count} chunks, "
            f"{self.dedup_hits} dedup hits)",
            "",
            "Image diffs, ready -> warm (repro.criu.imgdiff):",
        ]
        lines += [f"  {s}" for s in self.imgdiff_summaries]
        lines += ["", "Registry growth (cumulative, shared runtime base):"]
        for point in self.growth:
            lines.append(
                f"  {int(point['functions'])} function(s): logical "
                f"{point['logical_mib']:7.1f} MiB  physical "
                f"{point['physical_mib']:7.1f} MiB  ratio "
                f"{point['dedup_ratio']:.2f}x"
            )
        return "\n".join(lines)


def _measure_mode(manager: PrebakeManager, name: str, mode: RestoreMode,
                  repetitions: int):
    """Restore ``repetitions`` replicas; return per-restore timings."""
    from repro.runtime.base import Request
    startups: List[float] = []
    first_responses: List[float] = []
    services: List[float] = []
    starter = manager.starter("prebake", policy=AfterWarmup(1),
                              restore_mode=mode, version=1)
    for _ in range(repetitions):
        app = make_app(name)
        handle = starter.start(app)
        startups.append(handle.startup_ms("ready"))
        response = handle.invoke(Request())
        services.append(response.service_ms)
        first_responses.append(handle.startup_ms("first_response"))
        handle.kill()
    return startups, first_responses, services


def restore_sweep(repetitions: int = 40, seed: int = 42) -> RestoreSweepResult:
    """Run the dedup + restore-mode experiment."""
    world = make_world(seed=_derive_seed(seed, "restore-sweep"))
    manager = PrebakeManager(world.kernel)
    result = RestoreSweepResult()

    # Bake ready + warm snapshots of every function into ONE store so
    # cross-snapshot dedup is visible; the warm image's delta layer
    # diffs against its ready sibling.
    for name in REAL_FUNCTIONS:
        ready = manager.prebaker.bake(make_app(name), policy=AfterReady())
        warm = manager.prebaker.bake(make_app(name), policy=AfterWarmup(1))
        manager.sync_version(name, 1)
        result.imgdiff_summaries.append(
            diff_images(ready.image, warm.image).summary().splitlines()[0]
        )

    store = manager.store
    result.logical_mib = store.logical_bytes / (1024 * 1024)
    result.physical_mib = store.physical_bytes / (1024 * 1024)
    result.dedup_ratio = store.dedup_ratio
    result.chunk_count = store.pages.chunk_count
    result.dedup_hits = store.pages.dedup_hits

    for name in REAL_FUNCTIONS:
        app = make_app(name)
        image = store.peek(
            SnapshotKey(name, app.runtime_kind, AfterWarmup(1).key, 1))
        eager, _, eager_services = _measure_mode(
            manager, name, RestoreMode.EAGER, repetitions)
        lazy, lazy_first, _ = _measure_mode(
            manager, name, RestoreMode.LAZY, repetitions)
        # The first WORKING_SET restore records; the rest prefetch.
        ws_record, _, _ = _measure_mode(
            manager, name, RestoreMode.WORKING_SET, 1)
        ws, _, ws_services = _measure_mode(
            manager, name, RestoreMode.WORKING_SET, repetitions)
        tracker = world.kernel.working_sets
        record = tracker.record_for(image) if tracker is not None else None
        test = mann_whitney_u(eager_services, ws_services)
        result.rows.append(ModeRow(
            function=name,
            image_mib=image.total_mib,
            eager_ms=median(eager),
            lazy_ms=median(lazy),
            lazy_first_response_ms=median(lazy_first),
            ws_record_ms=ws_record[0],
            ws_ms=median(ws),
            ws_fraction=record.fraction if record is not None else 1.0,
            ks_vs_eager=ks_distance(eager_services, ws_services),
            mwu_p_vs_eager=test.p_value,
        ))

    result.growth = registry_growth_curve(list(GROWTH_FUNCTIONS), seed=seed)
    return result


# ---------------------------------------------------------------------------
# Experiment X8 — restore-pipeline sweep (workers × cache policy × function)
# ---------------------------------------------------------------------------

NO_CACHE = "none"
DEFAULT_WORKERS_GRID = (1, 2, 4)
DEFAULT_CACHE_POLICIES = (NO_CACHE, "freq-over-size", "lru")


@dataclass
class PipelineCell:
    """One (function, workers, cache policy) treatment."""

    function: str
    image_mib: float
    workers: int
    cache_policy: str
    p50_ms: float                   # median restore-path start-up
    cold_ms: float                  # first restore (cache still cold)
    hit_ratio: float                # chunk-cache lookup hit ratio
    improvement_pct: float          # vs the function's serial/no-cache cell


@dataclass
class RestorePipelineResult:
    rows: List[PipelineCell] = field(default_factory=list)

    def cell(self, function: str, workers: int,
             cache_policy: str) -> PipelineCell:
        for row in self.rows:
            if (row.function == function and row.workers == workers
                    and row.cache_policy == cache_policy):
                return row
        raise KeyError((function, workers, cache_policy))

    def render(self) -> str:
        table_rows = [
            [
                row.function,
                f"{row.image_mib:.1f}",
                str(row.workers),
                row.cache_policy,
                f"{row.p50_ms:.2f}",
                f"{row.cold_ms:.2f}",
                f"{row.hit_ratio:.1%}",
                f"{row.improvement_pct:+.1f}%",
            ]
            for row in self.rows
        ]
        return "\n".join([
            "Experiment X8 — pipelined restore: workers × cache policy "
            "(median start-up, EAGER restores in one world)",
            format_table(
                ["function", "image(MiB)", "workers", "cache", "p50(ms)",
                 "cold(ms)", "hit ratio", "vs serial"],
                table_rows,
            ),
            "(cold = first restore on the node, cache empty; later "
            "restores hit the node-local hot-chunk cache. 'vs serial' "
            "compares each cell's p50 to the workers=1/no-cache cell.)",
        ])


def _measure_pipeline_cell(name: str, workers: int, cache_policy: str,
                           repetitions: int, seed: int):
    """One hermetic world per cell: bake once, restore ``repetitions``
    replicas through a pipeline/cache-configured starter."""
    from repro.criu.chunkcache import make_cache

    world = make_world(
        seed=_derive_seed(seed, f"pipeline/{name}/w{workers}/{cache_policy}"))
    manager = PrebakeManager(world.kernel)
    manager.prebaker.bake(make_app(name), policy=AfterWarmup(1))
    manager.sync_version(name, 1)
    cache = make_cache(None if cache_policy == NO_CACHE else cache_policy)
    starter = manager.starter(
        "prebake", policy=AfterWarmup(1), restore_mode=RestoreMode.EAGER,
        version=1, pipeline_workers=workers, chunk_cache=cache)
    app = make_app(name)
    image = manager.store.peek(
        SnapshotKey(name, app.runtime_kind, AfterWarmup(1).key, 1))
    latencies: List[float] = []
    for _ in range(repetitions):
        handle = starter.start(make_app(name))
        latencies.append(handle.startup_ms("ready"))
        handle.kill()
    hit_ratio = cache.stats.hit_ratio if cache is not None else 0.0
    return image.total_mib, latencies, hit_ratio


def restore_pipeline_sweep(
    repetitions: int = 12,
    seed: int = 42,
    workers_grid=DEFAULT_WORKERS_GRID,
    cache_policies=DEFAULT_CACHE_POLICIES,
    functions=REAL_FUNCTIONS,
) -> RestorePipelineResult:
    """Sweep the restore-pipeline knobs over the paper's function set.

    Each cell runs in its own seeded world so cache state never bleeds
    between treatments; within a cell restores share one world so the
    node-local cache can warm up, exactly like repeated cold starts
    landing on one node.
    """
    result = RestorePipelineResult()
    for name in functions:
        baseline_p50 = None
        for workers in workers_grid:
            for policy in cache_policies:
                image_mib, latencies, hit_ratio = _measure_pipeline_cell(
                    name, workers, policy, repetitions, seed)
                p50 = median(latencies)
                if (baseline_p50 is None and workers == 1
                        and policy == NO_CACHE):
                    baseline_p50 = p50
                improvement = (
                    100.0 * (1 - p50 / baseline_p50)
                    if baseline_p50 else 0.0)
                result.rows.append(PipelineCell(
                    function=name,
                    image_mib=image_mib,
                    workers=workers,
                    cache_policy=policy,
                    p50_ms=p50,
                    cold_ms=latencies[0],
                    hit_ratio=hit_ratio,
                    improvement_pct=improvement,
                ))
    return result
