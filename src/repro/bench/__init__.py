"""Experiment harness: the paper's §4 methodology as a library.

* :mod:`repro.bench.stats` — bootstrap median CIs [6], Shapiro–Wilk
  normality [24], Wilcoxon–Mann–Whitney median comparison, ECDFs;
* :mod:`repro.bench.tracer` — bpftrace-style phase measurement
  (CLONE/EXEC/RTS/APPINIT, §4.2.1);
* :mod:`repro.bench.workload` — the load generator (hold the first
  request until ready, then constant-rate sequential load, §4.1);
* :mod:`repro.bench.harness` — the 200-repetition factorial runner;
* :mod:`repro.bench.figures` — one entry point per paper table/figure.
"""

from repro.bench.stats import (
    bootstrap_median_ci,
    ecdf,
    ks_distance,
    mann_whitney_u,
    median,
    median_difference_ci,
    shapiro_wilk,
)
from repro.bench.tracer import PhaseBreakdown, PhaseTracer
from repro.bench.workload import LoadGenerator, LoadResult
from repro.bench.harness import (
    StartupSample,
    StartupSummary,
    run_service_experiment,
    run_startup_experiment,
)

__all__ = [
    "bootstrap_median_ci",
    "ecdf",
    "ks_distance",
    "mann_whitney_u",
    "median",
    "median_difference_ci",
    "shapiro_wilk",
    "PhaseBreakdown",
    "PhaseTracer",
    "LoadGenerator",
    "LoadResult",
    "StartupSample",
    "StartupSummary",
    "run_startup_experiment",
    "run_service_experiment",
]
