"""X12 — trace-driven fleet study on the fleet observability plane.

The paper's numbers are per-function; ROADMAP item 1's open remainder
is the *fleet* question: with the PR7 sharded store and chunk-locality
routing in place, what do cold-start p99, chunk-cache hit rates, and
cross-node traffic look like under production-shaped traces — Zipf
popularity over hundreds of functions, diurnal + bursty arrivals,
millions of requests?

The study is a discrete-event pass over a synthesized fleet trace
(:func:`repro.bench.traces.synthesize_fleet_workload`): one
chronological sweep across C compute nodes and S storage nodes whose
chunk placement comes from the real :class:`~repro.criu.shardstore`
consistent-hash ring and whose latency decomposition comes from the
calibrated :class:`~repro.sim.costmodel.CostModel` constants — the
same clone/spawn/restore/fetch/hop prices the request-level simulator
charges. Every aggregate flows through :mod:`repro.obs.fleet`:
per-node registries federated under ``node=`` labels, merged
histograms for the fleet quantiles, Space-Saving sketches for hot
functions/chunks, windowed rollups, and exact per-request cold-start
attribution — **no per-request sample list is ever retained**, which
is what lets one rep stream ≥1M requests in bounded memory.

A deterministic mid-trace storage-node outage produces the degraded
slice of the attribution table, and one *real* platform cold start
(2 compute nodes, 4 storage nodes, RF=2, fully observed) rides along
as the trace exemplar: its stitched span tree — deployer provision on
a ``node-*`` identity, shard fetches on ``store-*`` identities, one
connected trace — is embedded in the artifact and asserted by CI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import make_world
from repro.bench.report import format_table
from repro.bench.traces import synthesize_fleet_workload
from repro.criu.shardstore import HashRing
from repro.faas.platform import FaaSPlatform, PlatformConfig
from repro.functions.base import make_app
from repro.obs.flight import REPLICA_PROVISIONED, RESTORE_DEGRADED, FlightRecorder
from repro.obs.fleet import (
    OUTCOME_DEGRADED,
    OUTCOME_LOCAL_HIT,
    OUTCOME_REMOTE_FETCH,
    ColdStartAttribution,
    FleetRegistry,
    FleetWindowSeries,
    SpaceSavingSketch,
)
from repro.sim.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.sim.rng import _derive_seed

MIB = 1024 * 1024
CHUNK_BYTES = 256 * 1024          # one pagestore window (64 pages x 4 KiB)
CHUNKS_PER_MIB = MIB // CHUNK_BYTES

# Shared runtime bases: functions of the same runtime share these
# chunks, which is what gives cross-function locality its teeth.
RUNTIME_BASE_MIB = (6, 8, 12)

CONTROLLER_NODE = "controller"    # control-plane registry in the fleet


@dataclass(frozen=True)
class FleetStudyConfig:
    """Shape of one X12 run (defaults = the sealed baseline)."""

    functions: int = 200
    requests: int = 1_000_000
    duration_ms: float = 7_200_000.0      # 2 simulated hours
    compute_nodes: int = 8
    storage_nodes: int = 6
    replication_factor: int = 2
    # Deliberately smaller than the ~425 MiB/node working set so the
    # steady state keeps churning remote fetches instead of converging
    # to an all-local fleet.
    node_cache_mib: int = 256
    keepalive_ms: float = 60_000.0
    max_replicas: int = 8
    pipeline_workers: int = 1
    window_ms: float = 60_000.0
    flight_capacity: int = 2048
    # Deterministic storage outage: one store is down for the middle
    # [40%, 60%) slice of the trace, producing the degraded bucket.
    outage_start_frac: float = 0.40
    outage_end_frac: float = 0.60


class _StudyClock:
    """Minimal ``.now`` clock shim driving the flight recorder."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0.0


@dataclass
class FleetRepResult:
    """Aggregates of one repetition (already fleet-merged)."""

    rep: int
    seed: int
    requests: int = 0
    cold_starts: int = 0
    degraded_cold_starts: int = 0
    cold_p50_ms: float = 0.0
    cold_p99_ms: float = 0.0
    cache_hit_rate: float = 0.0            # fleet chunk-bytes hit rate
    locality_hit_rate: float = 0.0         # placements covering >=50%
    cross_node_bytes: int = 0
    flight_dropped: int = 0
    per_node_rows: List[Dict[str, object]] = field(default_factory=list)
    hot_functions: List[Tuple[str, float, float]] = field(default_factory=list)
    hot_chunks: List[Tuple[str, float, float]] = field(default_factory=list)
    window_points: List[Dict[str, float]] = field(default_factory=list)
    attribution: Optional[ColdStartAttribution] = None

    @property
    def cross_node_kib_per_restore(self) -> float:
        if not self.cold_starts:
            return 0.0
        return self.cross_node_bytes / 1024.0 / self.cold_starts


@dataclass
class FleetStudyResult:
    """The X12 report: per-rep aggregates + the stitched exemplar."""

    config: FleetStudyConfig
    seed: int
    reps: List[FleetRepResult] = field(default_factory=list)
    exemplar_spans: List[Dict[str, object]] = field(default_factory=list)

    @property
    def headline(self) -> FleetRepResult:
        return self.reps[0]

    def stitched_nodes(self) -> List[str]:
        return stitched_trace_nodes(self.exemplar_spans)

    def as_dict(self) -> Dict[str, object]:
        return {
            "experiment": "fleet-study",
            "seed": self.seed,
            "config": {
                "functions": self.config.functions,
                "requests": self.config.requests,
                "duration_ms": self.config.duration_ms,
                "compute_nodes": self.config.compute_nodes,
                "storage_nodes": self.config.storage_nodes,
                "replication_factor": self.config.replication_factor,
                "node_cache_mib": self.config.node_cache_mib,
                "pipeline_workers": self.config.pipeline_workers,
            },
            "reps": [
                {
                    "rep": r.rep,
                    "seed": r.seed,
                    "requests": r.requests,
                    "cold_starts": r.cold_starts,
                    "degraded_cold_starts": r.degraded_cold_starts,
                    "cold_p50_ms": r.cold_p50_ms,
                    "cold_p99_ms": r.cold_p99_ms,
                    "cache_hit_rate": r.cache_hit_rate,
                    "locality_hit_rate": r.locality_hit_rate,
                    "cross_node_bytes": r.cross_node_bytes,
                    "cross_node_kib_per_restore": r.cross_node_kib_per_restore,
                    "flight_dropped": r.flight_dropped,
                    "per_node": r.per_node_rows,
                    "hot_functions": [
                        {"key": k, "count": c, "error": e}
                        for k, c, e in r.hot_functions],
                    "hot_chunks": [
                        {"key": k, "count": c, "error": e}
                        for k, c, e in r.hot_chunks],
                    "windows": r.window_points,
                    "attribution": (r.attribution.as_dict()
                                    if r.attribution else []),
                    "folded": (r.attribution.folded_lines()
                               if r.attribution else []),
                }
                for r in self.reps
            ],
            "exemplar_spans": self.exemplar_spans,
            "stitched_nodes": self.stitched_nodes(),
        }

    def render(self) -> str:
        return render_fleet_report(self.as_dict())


# ---------------------------------------------------------------------------
# Stitching check (shared by tests, the report, and the CI assertion)
# ---------------------------------------------------------------------------


def stitched_trace_nodes(spans: Sequence[Dict[str, object]]) -> List[str]:
    """Node identities of the best stitched trace in ``spans``.

    Looks for a single connected span tree (every non-root span's
    parent is inside the same trace) that carries ``node_id``
    attributes from at least two distinct identities — a provision on
    a compute node plus shard fetches on storage nodes. Returns the
    sorted node ids of the best such trace, or ``[]`` if none
    qualifies (the CI gate greps for >= 2).
    """
    by_trace: Dict[str, List[Dict[str, object]]] = {}
    for span in spans:
        by_trace.setdefault(str(span.get("trace")), []).append(span)
    best: List[str] = []
    for members in by_trace.values():
        ids = {span.get("span") for span in members}
        connected = all(
            span.get("parent") is None or span.get("parent") in ids
            for span in members)
        if not connected:
            continue
        nodes: Set[str] = set()
        for span in members:
            attrs = span.get("attrs") or {}
            node_id = attrs.get("node_id") if isinstance(attrs, dict) else None
            if node_id and node_id != "unavailable":
                nodes.add(str(node_id))
        if len(nodes) > len(best):
            best = sorted(nodes)
    return best


def _trace_exemplar(seed: int) -> List[Dict[str, object]]:
    """One fully observed platform cold start through the sharded store.

    A 2-compute-node, 4-storage-node RF=2 cluster serving a single
    prebake invoke: the restore's quorum fetches are all remote (the
    node chunk cache starts cold), so the resulting trace is exactly
    the multi-node stitched tree the acceptance criteria describe.
    """
    world = make_world(seed=_derive_seed(seed, "fleet-exemplar"),
                       observe=True)
    kernel = world.kernel
    platform = FaaSPlatform(kernel, PlatformConfig(
        nodes=2, storage_nodes=4, replication_factor=2))
    platform.register_function(lambda: make_app("markdown"),
                               start_technique="prebake")
    platform.invoke("markdown")
    return [span.as_dict() for span in kernel.obs.tracer.spans]


# ---------------------------------------------------------------------------
# The fleet simulator
# ---------------------------------------------------------------------------


class _Fleet:
    """One repetition's fleet state: placement, caches, pools, plane."""

    def __init__(self, config: FleetStudyConfig, seed: int,
                 costs: CostModel) -> None:
        self.config = config
        self.costs = costs
        self.rng = np.random.Generator(np.random.PCG64(seed))
        self.clock = _StudyClock()
        c = config

        # -- image catalog ------------------------------------------------
        # Chunk ids are dense ints; placement comes from the real
        # consistent-hash ring over their digest-like string form.
        setup = np.random.Generator(np.random.PCG64(
            _derive_seed(seed, "fleet-images")))
        base_chunks: List[np.ndarray] = []
        next_cid = 0
        for mib in RUNTIME_BASE_MIB:
            count = mib * CHUNKS_PER_MIB
            base_chunks.append(np.arange(next_cid, next_cid + count,
                                         dtype=np.int64))
            next_cid += count
        self.func_chunks: List[np.ndarray] = []
        priv_mib = setup.integers(4, 25, size=c.functions)
        for fid in range(c.functions):
            count = int(priv_mib[fid]) * CHUNKS_PER_MIB
            priv = np.arange(next_cid, next_cid + count, dtype=np.int64)
            next_cid += count
            base = base_chunks[fid % len(RUNTIME_BASE_MIB)]
            self.func_chunks.append(np.concatenate([base, priv]))
        self.total_chunks = next_cid
        self.image_bytes = np.array(
            [chunks.size * CHUNK_BYTES for chunks in self.func_chunks],
            dtype=np.float64)

        # Reverse index chunk -> functions (coverage bookkeeping).
        owners: List[List[int]] = [[] for _ in range(next_cid)]
        for fid, chunks in enumerate(self.func_chunks):
            for cid in chunks.tolist():
                owners[cid].append(fid)
        self.chunk_funcs = [np.asarray(fns, dtype=np.int64)
                            for fns in owners]

        # Storage placement via the real shardstore ring.
        ring = HashRing([f"store-{i}" for i in range(c.storage_nodes)])
        store_index = {f"store-{i}": i for i in range(c.storage_nodes)}
        self.chunk_homes = np.empty(
            (next_cid, c.replication_factor), dtype=np.int8)
        for cid in range(next_cid):
            homes = ring.nodes_for(f"chunk-{cid:08d}", c.replication_factor)
            for slot, name in enumerate(homes):
                self.chunk_homes[cid, slot] = store_index[name]

        # -- per-node state -----------------------------------------------
        self.cache_capacity = c.node_cache_mib * MIB
        self.caches: List[Dict[int, None]] = [
            {} for _ in range(c.compute_nodes)]
        self.cache_bytes = [0] * c.compute_nodes
        # coverage[node, fid]: bytes of fid's image in node's cache.
        self.coverage = np.zeros((c.compute_nodes, c.functions))
        # Warm pools: per function, [node, busy_until, last_used].
        self.pools: List[List[List[float]]] = [
            [] for _ in range(c.functions)]
        # Live replicas per compute node — the load term of placement.
        self.node_load = np.zeros(c.compute_nodes)

        # -- observability plane ------------------------------------------
        self.fleet = FleetRegistry()
        self.node_regs = [self.fleet.node(f"node-{i}")
                          for i in range(c.compute_nodes)]
        self.store_regs = [self.fleet.node(f"store-{i}")
                           for i in range(c.storage_nodes)]
        self.ctl_reg = self.fleet.node(CONTROLLER_NODE)
        self.flight = FlightRecorder(self.clock,
                                     capacity=c.flight_capacity,
                                     metrics=self.ctl_reg)
        self.windows = FleetWindowSeries(window_ms=c.window_ms)
        self.attribution = ColdStartAttribution()
        self.hot_functions = SpaceSavingSketch(capacity=64)
        self.hot_chunks = SpaceSavingSketch(capacity=256)

        # Pre-resolved counter handles (the PR8 fast path).
        self.h_requests = [r.counter("fleet_requests_total")
                           for r in self.node_regs]
        self.h_warm = [r.counter("fleet_warm_total")
                       for r in self.node_regs]
        self.h_cold = [r.counter("fleet_cold_total")
                       for r in self.node_regs]
        self.h_hit_bytes = [r.counter("chunk_cache_hit_bytes_total")
                            for r in self.node_regs]
        self.h_miss_bytes = [r.counter("chunk_cache_miss_bytes_total")
                             for r in self.node_regs]
        self.h_placement = [r.counter("deployer_cold_placement_total")
                            for r in self.node_regs]
        self.h_loc_miss = [r.counter("deployer_locality_miss_total")
                           for r in self.node_regs]
        self.h_served = [r.counter("shard_served_bytes_total")
                         for r in self.store_regs]
        self.h_hops = [r.counter("shard_retry_hops_total")
                       for r in self.store_regs]
        self.cold_hists = [r.histogram_series("fleet_cold_start_ms")
                           for r in self.node_regs]

        self.outage_node = -1
        self.outage_window = (c.duration_ms * c.outage_start_frac,
                              c.duration_ms * c.outage_end_frac)
        self.cross_node_bytes = 0
        self.degraded_cold_starts = 0

    # -- cache mechanics -----------------------------------------------------

    def _admit(self, node: int, cid: int) -> None:
        cache = self.caches[node]
        cache[cid] = None
        self.cache_bytes[node] += CHUNK_BYTES
        self.coverage[node, self.chunk_funcs[cid]] += CHUNK_BYTES
        while self.cache_bytes[node] > self.cache_capacity:
            victim = next(iter(cache))
            del cache[victim]
            self.cache_bytes[node] -= CHUNK_BYTES
            self.coverage[node, self.chunk_funcs[victim]] -= CHUNK_BYTES

    def _storage_down(self, store: int, t: float) -> bool:
        lo, hi = self.outage_window
        return store == self.outage_node and lo <= t < hi

    # -- the cold-start path -------------------------------------------------

    def cold_start(self, t: float, fid: int) -> Tuple[int, float]:
        """Provision one replica; returns (node, ready latency ms)."""
        c = self.config
        # Locality-aware, load-balanced placement: score each node by
        # the fraction of this image its chunk cache already covers,
        # minus a penalty for its share of live replicas (0.5 at a
        # perfectly balanced fleet). Full local coverage beats an empty
        # node unless the covering node already runs well over its fair
        # share; deterministic argmax, first max wins.
        total_bytes = self.image_bytes[fid]
        load_total = self.node_load.sum()
        score = self.coverage[:, fid] / total_bytes
        if load_total > 0.0:
            score = score - (0.5 * c.compute_nodes / load_total) \
                * self.node_load
        node = int(np.argmax(score))
        covered = self.coverage[node, fid]
        self.node_load[node] += 1.0
        self.h_placement[node].inc()
        if covered * 2 < total_bytes:
            self.h_loc_miss[node].inc()

        local_bytes = 0
        remote_bytes = 0
        hops = 0
        cache = self.caches[node]
        for cid in self.func_chunks[fid].tolist():
            if cid in cache:
                # dict move-to-end LRU bump
                del cache[cid]
                cache[cid] = None
                local_bytes += CHUNK_BYTES
                continue
            homes = self.chunk_homes[cid]
            serving = int(homes[0])
            if self._storage_down(serving, t):
                hops += 1
                if len(homes) > 1:
                    serving = int(homes[1])
                    if self._storage_down(serving, t):
                        hops += 1
            remote_bytes += CHUNK_BYTES
            self.h_served[serving].inc(float(CHUNK_BYTES))
            self.hot_chunks.offer(f"chunk-{cid:08d}", float(CHUNK_BYTES))
            self._admit(node, cid)
        if hops:
            self.h_hops[int(self.chunk_homes
                            [self.func_chunks[fid][0]][0])].inc(float(hops))
        self.cross_node_bytes += remote_bytes
        self.h_hit_bytes[node].inc(float(local_bytes))
        self.h_miss_bytes[node].inc(float(remote_bytes))

        # -- latency decomposition (calibrated CostModel constants) ------
        costs = self.costs
        cf = local_bytes / total_bytes if total_bytes else 0.0
        pages_ms = costs.restore_per_mib_ms * (total_bytes / MIB)
        fetch_ms = pages_ms * costs.restore_fetch_fraction * (
            (1.0 - cf) + cf * costs.restore_cache_hit_factor)
        map_ms = pages_ms * (1.0 - costs.restore_fetch_fraction)
        shard_ms = costs.shard_fetch_overhead_ms(
            hops, workers=c.pipeline_workers)
        restore_ms = costs.restore_base_ms + fetch_ms + map_ms + shard_ms
        # One multiplicative log-normal jitter per cold start, applied
        # to every phase, so the phase sums reproduce the total exactly.
        factor = math.exp(costs.noise_sigma * self.rng.standard_normal())
        phases = {
            "clone": costs.clone_ms * factor,
            "spawn": costs.criu_spawn_ms * factor,
            "restore": restore_ms * factor,
        }
        total_ms = 0.0
        for value in phases.values():
            total_ms += value

        if hops:
            outcome = OUTCOME_DEGRADED
            self.degraded_cold_starts += 1
        elif cf >= 0.5:
            outcome = OUTCOME_LOCAL_HIT
        else:
            outcome = OUTCOME_REMOTE_FETCH
        fname = f"fn-{fid:03d}"
        node_name = f"node-{node}"
        self.attribution.record(fname, node_name, outcome, phases, total_ms)
        self.h_cold[node].inc()
        self.cold_hists[node].observe(total_ms)
        self.windows.observe(node_name, t, total_ms)
        self.flight.record(REPLICA_PROVISIONED, function=fname,
                           node=node_name, outcome=outcome)
        if outcome == OUTCOME_DEGRADED:
            self.flight.record(RESTORE_DEGRADED, function=fname,
                               node=node_name, retry_hops=hops)
        return node, total_ms

    # -- the request loop ----------------------------------------------------

    def run(self, times: np.ndarray, fids: np.ndarray) -> None:
        c = self.config
        costs = self.costs
        keepalive = c.keepalive_ms
        service_ms = costs.exec_ms
        pools = self.pools
        clock = self.clock
        for t, fid in zip(times.tolist(), fids.tolist()):
            clock.now = t
            pool = pools[fid]
            self.hot_functions.offer(f"fn-{fid:03d}")
            if pool:
                live = [r for r in pool if r[2] + keepalive >= t]
                if len(live) != len(pool):
                    for r in pool:
                        if r[2] + keepalive < t:
                            self.node_load[int(r[0])] -= 1.0
                    pool[:] = live
            replica = None
            for r in pool:
                if r[1] <= t:
                    replica = r
                    break
            if replica is not None:
                replica[1] = t + service_ms
                replica[2] = t
                node = int(replica[0])
                self.h_requests[node].inc()
                self.h_warm[node].inc()
            elif len(pool) < c.max_replicas:
                node, latency = self.cold_start(t, fid)
                pool.append([float(node), t + latency + service_ms, t])
                self.h_requests[node].inc()
            else:
                # Pool at capacity and every replica busy: queue on the
                # earliest-free replica (still a warm service).
                replica = min(pool, key=lambda r: r[1])
                replica[1] += service_ms
                replica[2] = t
                node = int(replica[0])
                self.h_requests[node].inc()
                self.h_warm[node].inc()
        self.windows.flush()


def _run_repetition(config: FleetStudyConfig, seed: int,
                    rep: int) -> FleetRepResult:
    rep_seed = _derive_seed(seed, f"fleet-{rep}")
    costs = DEFAULT_COST_MODEL
    fleet = _Fleet(config, rep_seed, costs)
    fleet.outage_node = rep % config.storage_nodes
    times, fids = synthesize_fleet_workload(
        function_count=config.functions,
        duration_ms=config.duration_ms,
        requests=config.requests,
        seed=_derive_seed(rep_seed, "fleet-trace"),
    )
    fleet.run(times, fids)

    reg = fleet.fleet
    requests = int(reg.fleet_value("fleet_requests_total"))
    cold = int(reg.fleet_value("fleet_cold_total"))
    hit_bytes = reg.fleet_value("chunk_cache_hit_bytes_total")
    miss_bytes = reg.fleet_value("chunk_cache_miss_bytes_total")
    placements = reg.fleet_value("deployer_cold_placement_total")
    loc_misses = reg.fleet_value("deployer_locality_miss_total")

    result = FleetRepResult(rep=rep, seed=rep_seed)
    result.requests = requests
    result.cold_starts = cold
    result.degraded_cold_starts = fleet.degraded_cold_starts
    result.cold_p50_ms = reg.fleet_quantile("fleet_cold_start_ms", 0.5)
    result.cold_p99_ms = reg.fleet_quantile("fleet_cold_start_ms", 0.99)
    denominator = hit_bytes + miss_bytes
    result.cache_hit_rate = hit_bytes / denominator if denominator else 0.0
    result.locality_hit_rate = (
        1.0 - loc_misses / placements if placements else 0.0)
    result.cross_node_bytes = fleet.cross_node_bytes
    result.flight_dropped = int(
        reg.fleet_value("flight_dropped_total"))
    assert result.flight_dropped == fleet.flight.dropped

    for i in range(config.compute_nodes):
        node = f"node-{i}"
        node_hit = reg.per_node_value("chunk_cache_hit_bytes_total")[node]
        node_miss = reg.per_node_value("chunk_cache_miss_bytes_total")[node]
        node_total = node_hit + node_miss
        histogram = fleet.node_regs[i].histogram("fleet_cold_start_ms")
        result.per_node_rows.append({
            "node": node,
            "requests": int(reg.per_node_value("fleet_requests_total")[node]),
            "cold": int(reg.per_node_value("fleet_cold_total")[node]),
            "cache_hit_rate": (node_hit / node_total) if node_total else 0.0,
            "cold_p99_ms": histogram.quantile(0.99) if histogram else 0.0,
        })
    for i in range(config.storage_nodes):
        store = f"store-{i}"
        result.per_node_rows.append({
            "node": store,
            "requests": 0,
            "cold": 0,
            "served_mib": reg.per_node_value(
                "shard_served_bytes_total")[store] / MIB,
        })
    result.hot_functions = fleet.hot_functions.top(10)
    result.hot_chunks = fleet.hot_chunks.top(10)
    result.window_points = [p.as_dict() for p in fleet.windows.points]
    result.attribution = fleet.attribution
    return result


def fleet_study(repetitions: int = 1, seed: int = 42,
                requests: int = 1_000_000, functions: int = 200,
                compute_nodes: int = 8, storage_nodes: int = 6,
                replication_factor: int = 2,
                workers: int = 1,
                duration_ms: float = 7_200_000.0) -> FleetStudyResult:
    """Run X12: ``repetitions`` independent fleet passes + the exemplar."""
    config = FleetStudyConfig(
        functions=functions, requests=requests, duration_ms=duration_ms,
        compute_nodes=compute_nodes, storage_nodes=storage_nodes,
        replication_factor=replication_factor, pipeline_workers=workers)
    result = FleetStudyResult(config=config, seed=seed)
    for rep in range(repetitions):
        result.reps.append(_run_repetition(config, seed, rep))
    result.exemplar_spans = _trace_exemplar(seed)
    return result


# ---------------------------------------------------------------------------
# Rendering (shared with prebake-bench fleet-report / repro.obs.cli fleet)
# ---------------------------------------------------------------------------


def render_fleet_report(artifact: Dict[str, object]) -> str:
    """Human-readable fleet report from a ``--fleet-out`` artifact."""
    lines: List[str] = []
    config = artifact.get("config", {})
    lines.append("X12 — trace-driven fleet study")
    lines.append(
        f"functions: {config.get('functions')}  "
        f"compute nodes: {config.get('compute_nodes')}  "
        f"storage nodes: {config.get('storage_nodes')} "
        f"(RF={config.get('replication_factor')})")
    for rep in artifact.get("reps", []):  # type: ignore[union-attr]
        lines.append("")
        lines.append(
            f"rep {rep['rep']}: requests {rep['requests']}  "
            f"cold starts {rep['cold_starts']} "
            f"({rep['degraded_cold_starts']} degraded)")
        lines.append(
            f"  fleet cold-start p50 {rep['cold_p50_ms']:.2f} ms  "
            f"p99 {rep['cold_p99_ms']:.2f} ms")
        lines.append(
            f"  chunk-cache hit rate {rep['cache_hit_rate']:.3f}  "
            f"locality hit rate {rep['locality_hit_rate']:.3f}  "
            f"cross-node {rep['cross_node_kib_per_restore']:.1f} KiB/restore")
        lines.append(
            f"  flight events dropped: {rep['flight_dropped']}")
        rows = []
        for row in rep.get("per_node", []):
            if str(row["node"]).startswith("node-"):
                rows.append([
                    row["node"], row["requests"], row["cold"],
                    f"{row['cache_hit_rate']:.3f}",
                    f"{row['cold_p99_ms']:.2f}"])
        if rows:
            lines.append("")
            lines.append(format_table(
                ["node", "requests", "cold", "cache-hit", "p99(ms)"], rows))
        store_rows = [
            [row["node"], f"{row['served_mib']:.1f}"]
            for row in rep.get("per_node", [])
            if str(row["node"]).startswith("store-")]
        if store_rows:
            lines.append("")
            lines.append(format_table(["store", "served(MiB)"], store_rows))
        hot = rep.get("hot_functions", [])
        if hot:
            lines.append("")
            lines.append("hot functions (Space-Saving top-k):")
            for entry in hot[:5]:
                lines.append(
                    f"  {entry['key']}: {entry['count']:.0f} "
                    f"(+/- {entry['error']:.0f})")
        attribution = rep.get("attribution", [])
        if attribution:
            lines.append("")
            lines.append("cold-start blame table (top cells by total ms):")
            lines.append(
                ColdStartAttribution.from_dict(attribution).blame_table())
    stitched = artifact.get("stitched_nodes", [])
    lines.append("")
    if len(stitched) >= 2:  # type: ignore[arg-type]
        lines.append("stitched multi-node trace: yes "
                     f"({','.join(stitched)})")  # type: ignore[arg-type]
    else:
        lines.append("stitched multi-node trace: NO")
    return "\n".join(lines)
