"""Arrival-process generators for platform-level workload studies.

The paper measures a single replica under sequential constant-rate
load; platform-level questions — how often does a cold start actually
happen, and what does the idle-timeout / keep-alive policy cost — need
arrival traces. Three canonical shapes:

* Poisson (memoryless steady traffic);
* bursty on/off (Markov-modulated: quiet, then request trains — the
  worst case for keep-alive policies);
* diurnal (sinusoidal rate, the classic daily cycle).

All generators are seeded and yield absolute arrival timestamps in ms.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, List


def _rng(seed: int) -> random.Random:
    return random.Random(seed)


def poisson_arrivals(rate_per_s: float, duration_ms: float,
                     seed: int = 0) -> List[float]:
    """Homogeneous Poisson process: exponential inter-arrivals."""
    if rate_per_s <= 0:
        raise ValueError(f"rate must be positive, got {rate_per_s}")
    if duration_ms <= 0:
        raise ValueError(f"duration must be positive, got {duration_ms}")
    rng = _rng(seed)
    mean_gap_ms = 1000.0 / rate_per_s
    arrivals = []
    t = rng.expovariate(1.0 / mean_gap_ms)
    while t < duration_ms:
        arrivals.append(t)
        t += rng.expovariate(1.0 / mean_gap_ms)
    return arrivals


def bursty_arrivals(
    burst_rate_per_s: float,
    duration_ms: float,
    mean_on_ms: float = 2_000.0,
    mean_off_ms: float = 30_000.0,
    seed: int = 0,
) -> List[float]:
    """On/off (interrupted Poisson) process.

    During ON periods requests arrive at ``burst_rate_per_s``; OFF
    periods are silent. Period lengths are exponential. This is the
    trace shape that defeats idle-timeout keep-alive: the pool drains
    during OFF and every burst reopens with a cold start.
    """
    if burst_rate_per_s <= 0 or duration_ms <= 0:
        raise ValueError("rate and duration must be positive")
    if mean_on_ms <= 0 or mean_off_ms <= 0:
        raise ValueError("period means must be positive")
    rng = _rng(seed)
    mean_gap_ms = 1000.0 / burst_rate_per_s
    arrivals = []
    t = 0.0
    on = False
    while t < duration_ms:
        period = rng.expovariate(1.0 / (mean_on_ms if on else mean_off_ms))
        if on:
            mark = t + rng.expovariate(1.0 / mean_gap_ms)
            end = min(t + period, duration_ms)
            while mark < end:
                arrivals.append(mark)
                mark += rng.expovariate(1.0 / mean_gap_ms)
        t += period
        on = not on
    return arrivals


def diurnal_arrivals(
    peak_rate_per_s: float,
    duration_ms: float,
    period_ms: float = 86_400_000.0,
    floor_fraction: float = 0.1,
    seed: int = 0,
) -> List[float]:
    """Sinusoidal-rate Poisson process (thinning method).

    Rate oscillates between ``floor_fraction * peak`` and ``peak`` with
    the given period (default: one day).
    """
    if peak_rate_per_s <= 0 or duration_ms <= 0:
        raise ValueError("rate and duration must be positive")
    if not 0.0 <= floor_fraction <= 1.0:
        raise ValueError(f"floor_fraction must be in [0, 1], got {floor_fraction}")
    rng = _rng(seed)
    mean_gap_ms = 1000.0 / peak_rate_per_s

    def rate_fraction(t_ms: float) -> float:
        phase = math.sin(2 * math.pi * t_ms / period_ms - math.pi / 2)
        return floor_fraction + (1 - floor_fraction) * (phase + 1) / 2

    arrivals = []
    t = rng.expovariate(1.0 / mean_gap_ms)
    while t < duration_ms:
        if rng.random() < rate_fraction(t):
            arrivals.append(t)
        t += rng.expovariate(1.0 / mean_gap_ms)
    return arrivals


def inter_arrival_gaps(arrivals: List[float]) -> Iterator[float]:
    """Successive gaps of a trace (first gap is from t=0)."""
    prev = 0.0
    for t in arrivals:
        yield t - prev
        prev = t
