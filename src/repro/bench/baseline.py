"""Continuous-performance gate: recorded baselines + noise-aware compare.

The paper's reproduced numbers (fig3 start-up medians, restore-sweep
latencies, chaos recovery percentiles) are this repo's contract; the
gate turns them into a ratchet. ``record`` runs a smoke-sized bench
and writes a ``BENCH_<name>.json`` baseline — p50/p99/mean plus a
bootstrap CI per metric, together with the seed and repetition count
that produced them. ``compare`` re-runs the bench *at the baseline's
recorded seed and size* and flags any metric that moved beyond a
noise-aware threshold, exiting nonzero so CI fails the build.

Everything here is deterministic: an identical-seed re-run reproduces
the baseline bit-for-bit, so the tolerance only absorbs *intentional*
model drift (cost-model recalibration) — silent regressions of 20% or
more always trip.

    PYTHONPATH=src python -m repro.bench.baseline record            # all benches
    PYTHONPATH=src python -m repro.bench.baseline compare fig3      # gate one

Exit codes: 0 clean, 2 regression detected, 3 usage/missing baseline.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.report import format_table
from repro.bench.stats import bootstrap_median_ci, quantile

SCHEMA_VERSION = 1
DEFAULT_DIR = "benchmarks/baselines"

# Relative drift allowed before a metric counts as regressed. The
# effective threshold per metric is max(tolerance, the baseline's own
# relative CI half-width) capped at TOLERANCE_CAP — so noisy metrics
# get headroom proportional to their measured noise, while nothing can
# drift 20% without tripping the gate.
DEFAULT_TOLERANCE = 0.10
TOLERANCE_CAP = 0.15
P99_TOLERANCE_FACTOR = 2.0  # tails are noisier than medians

LOWER = "lower"    # smaller is better (latencies)
HIGHER = "higher"  # bigger is better (success rates, dedup ratios)


@dataclass
class MetricBaseline:
    """Recorded summary of one metric's distribution (or scalar)."""

    p50: float
    p99: float
    mean: float
    n: int
    direction: str = LOWER
    ci_low: Optional[float] = None
    ci_high: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "p50": self.p50, "p99": self.p99, "mean": self.mean,
            "n": self.n, "direction": self.direction,
            "ci_low": self.ci_low, "ci_high": self.ci_high,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "MetricBaseline":
        return cls(
            p50=float(record["p50"]), p99=float(record["p99"]),
            mean=float(record["mean"]), n=int(record["n"]),
            direction=str(record.get("direction", LOWER)),
            ci_low=(None if record.get("ci_low") is None
                    else float(record["ci_low"])),
            ci_high=(None if record.get("ci_high") is None
                     else float(record["ci_high"])),
        )


def metric_from_values(values: List[float],
                       direction: str = LOWER) -> MetricBaseline:
    """Distribution metric: quantiles plus a bootstrap CI on the median."""
    ci = bootstrap_median_ci(values, seed=0)
    return MetricBaseline(
        p50=quantile(values, 0.5),
        p99=quantile(values, 0.99),
        mean=sum(values) / len(values),
        n=len(values),
        direction=direction,
        ci_low=ci.low,
        ci_high=ci.high,
    )


def scalar_metric(value: float, direction: str = LOWER) -> MetricBaseline:
    """Point metric (already-aggregated bench output): p50 == value."""
    return MetricBaseline(p50=value, p99=value, mean=value, n=1,
                          direction=direction)


# ---------------------------------------------------------------------------
# Bench collectors — smoke-sized versions of the repo's contract benches
# ---------------------------------------------------------------------------

Metrics = Dict[str, MetricBaseline]


def collect_fig3(repetitions: int, seed: int) -> Metrics:
    """Start-up distributions per function/technique (Figure 3)."""
    from repro.bench.figures import figure3
    metrics: Metrics = {}
    result = figure3(repetitions=repetitions, seed=seed)
    for row in result.rows:
        metrics[f"{row.function}/vanilla/startup_ms"] = \
            metric_from_values(row.vanilla.values)
        metrics[f"{row.function}/prebake/startup_ms"] = \
            metric_from_values(row.prebake.values)
        metrics[f"{row.function}/improvement_pct"] = \
            scalar_metric(row.improvement_pct, direction=HIGHER)
    return metrics


def collect_restore_sweep(repetitions: int, seed: int) -> Metrics:
    """Restore-mode latencies and registry dedup (Figure 4 extension)."""
    from repro.bench.restore_sweep import restore_sweep
    metrics: Metrics = {}
    result = restore_sweep(repetitions=repetitions, seed=seed)
    for row in result.rows:
        prefix = row.function
        metrics[f"{prefix}/eager_ms"] = scalar_metric(row.eager_ms)
        metrics[f"{prefix}/lazy_ms"] = scalar_metric(row.lazy_ms)
        metrics[f"{prefix}/lazy_first_response_ms"] = \
            scalar_metric(row.lazy_first_response_ms)
        metrics[f"{prefix}/ws_ms"] = scalar_metric(row.ws_ms)
        metrics[f"{prefix}/ws_speedup_pct"] = \
            scalar_metric(row.ws_speedup_pct, direction=HIGHER)
    metrics["registry/dedup_ratio"] = \
        scalar_metric(result.dedup_ratio, direction=HIGHER)
    return metrics


def collect_restore_pipeline(repetitions: int, seed: int) -> Metrics:
    """Pipelined-restore sweep: overlap + hot-chunk cache win (X8)."""
    from repro.bench.restore_sweep import restore_pipeline_sweep
    metrics: Metrics = {}
    result = restore_pipeline_sweep(
        repetitions=repetitions, seed=seed,
        workers_grid=(1, 4), cache_policies=("none", "freq-over-size"))
    for row in result.rows:
        prefix = f"{row.function}/w{row.workers}/{row.cache_policy}"
        metrics[f"{prefix}/p50_ms"] = scalar_metric(row.p50_ms)
        if row.workers > 1 and row.cache_policy != "none":
            metrics[f"{row.function}/pipeline_improvement_pct"] = \
                scalar_metric(row.improvement_pct, direction=HIGHER)
            metrics[f"{row.function}/cache_hit_ratio"] = \
                scalar_metric(row.hit_ratio, direction=HIGHER)
    return metrics


def collect_chaos(repetitions: int, seed: int) -> Metrics:
    """Cold-start percentiles and success rates under faults."""
    from repro.bench.chaos import chaos_experiment
    metrics: Metrics = {}
    result = chaos_experiment(repetitions=repetitions, seed=seed)
    for t in result.treatments:
        prefix = f"rate{t.fault_rate:g}/{t.technique}"
        if t.cold_waits_ms:
            metrics[f"{prefix}/cold_wait_ms"] = \
                metric_from_values(t.cold_waits_ms)
        metrics[f"{prefix}/success_rate"] = \
            scalar_metric(t.success_rate, direction=HIGHER)
    return metrics


def collect_kernel_throughput(repetitions: int, seed: int) -> Metrics:
    """Kernel events/sec: vectorized backend vs per-page reference (X11).

    Both passes run back to back on the same machine, so the *ratio*
    travels across machines while raw events/sec does not. Two things
    are gated:

    * ``kernel/events_total`` — the deterministic event count of one
      workload pass; identical on every machine and every backend, so
      any drift means the simulated workload itself changed.
    * ``kernel/speedup_vs_floor`` — best-of-N speedup clamped at the
      hard floor (``min(speedup / SPEEDUP_HARD_FLOOR, 1.0)``). Records
      1.0 while the vectorized kernel clears the floor with margin;
      only an actual drop toward/below ~4x moves the metric, so normal
      wall-clock noise (the raw ratio swings +/-20% run to run) cannot
      trip the gate. The unclamped ratio lands in the profile artifact
      the CI job uploads, not in the baseline.
    """
    from repro.bench.kernelbench import SPEEDUP_HARD_FLOOR, kernel_bench
    best_speedup = 0.0
    events_total = 0
    for _ in range(repetitions):
        result = kernel_bench(seed=seed)
        best_speedup = max(best_speedup, result.speedup_vs_reference)
        events_total = result.events_total
    metrics: Metrics = {}
    metrics["kernel/events_total"] = \
        scalar_metric(float(events_total), direction=HIGHER)
    metrics["kernel/speedup_vs_floor"] = scalar_metric(
        min(best_speedup / SPEEDUP_HARD_FLOOR, 1.0), direction=HIGHER)
    return metrics


def collect_fleet(repetitions: int, seed: int) -> Metrics:
    """X12 fleet study: 1M-request trace over the sharded fleet.

    Everything recorded here is a deterministic function of the seed
    (numpy PCG64 streams, no wall clocks), so a same-seed re-run
    reproduces every value exactly; tolerance only absorbs legitimate
    model recalibration. ``fleet/requests_total`` and
    ``fleet/stitched_nodes`` double as structural guards: the request
    count pins the synthesized trace and the stitched-node count pins
    the cross-node span tree of the embedded exemplar.
    """
    from repro.bench.fleet_study import fleet_study

    result = fleet_study(repetitions=repetitions, seed=seed)
    rep = result.headline
    metrics: Metrics = {}
    metrics["fleet/requests_total"] = \
        scalar_metric(float(rep.requests), direction=HIGHER)
    metrics["fleet/cold_p50_ms"] = scalar_metric(rep.cold_p50_ms)
    metrics["fleet/cold_p99_ms"] = scalar_metric(rep.cold_p99_ms)
    metrics["fleet/cold_start_rate"] = scalar_metric(
        rep.cold_starts / rep.requests if rep.requests else 0.0)
    metrics["fleet/cache_hit_rate"] = \
        scalar_metric(rep.cache_hit_rate, direction=HIGHER)
    metrics["fleet/locality_hit_rate"] = \
        scalar_metric(rep.locality_hit_rate, direction=HIGHER)
    metrics["fleet/cross_node_kib_per_restore"] = \
        scalar_metric(rep.cross_node_kib_per_restore)
    metrics["fleet/stitched_nodes"] = scalar_metric(
        float(len(result.stitched_nodes())), direction=HIGHER)
    return metrics


def collect_prewarm(repetitions: int, seed: int) -> Metrics:
    """X13 prewarm study: forecast-driven prebaking vs fixed keep-alive.

    Besides the learned policy's own cold-start metrics, two 0/1
    structural verdicts are gated with direction HIGHER so any drop
    from 1.0 trips immediately:

    * ``prewarm/learned_beats_fixed`` — the learned policy cut both
      cold-start count and cold p99 at no higher wasted warm-seconds
      than the fixed keep-alive on every repetition;
    * ``prewarm/oracle_bound`` — the clairvoyant oracle's cold-start
      rate lower-bounds the learned policy's on every repetition.
    """
    from repro.bench.prewarm_study import prewarm_study

    result = prewarm_study(repetitions=repetitions, seed=seed)
    rep = result.headline
    learned = rep.outcomes["learned"]
    fixed = rep.outcomes["fixed"]
    oracle = rep.outcomes["oracle"]
    metrics: Metrics = {}
    metrics["prewarm/learned_beats_fixed"] = scalar_metric(
        1.0 if all(r.learned_beats_fixed for r in result.reps) else 0.0,
        direction=HIGHER)
    metrics["prewarm/oracle_bound"] = scalar_metric(
        1.0 if all(r.oracle_bounds_gap for r in result.reps) else 0.0,
        direction=HIGHER)
    metrics["prewarm/requests_total"] = \
        scalar_metric(float(learned.requests), direction=HIGHER)
    metrics["prewarm/learned_cold_rate"] = \
        scalar_metric(learned.cold_start_rate)
    metrics["prewarm/learned_cold_p99_ms"] = \
        scalar_metric(learned.cold_p99_ms)
    metrics["prewarm/learned_wasted_warm_s"] = \
        scalar_metric(learned.wasted_warm_s)
    metrics["prewarm/fixed_cold_rate"] = scalar_metric(fixed.cold_start_rate)
    metrics["prewarm/oracle_cold_rate"] = scalar_metric(oracle.cold_start_rate)
    metrics["prewarm/learned_timer_cold_starts"] = \
        scalar_metric(float(learned.timer_cold_starts))
    return metrics


@dataclass(frozen=True)
class Bench:
    """One gated bench: a collector plus its smoke-sized defaults."""

    name: str
    collect: Callable[[int, int], Metrics]
    default_repetitions: int
    default_seed: int = 42


BENCHES: Dict[str, Bench] = {
    "fig3": Bench("fig3", collect_fig3, default_repetitions=20),
    "restore-sweep": Bench("restore-sweep", collect_restore_sweep,
                           default_repetitions=20),
    "restore-pipeline": Bench("restore-pipeline", collect_restore_pipeline,
                              default_repetitions=10),
    "chaos": Bench("chaos", collect_chaos, default_repetitions=10),
    "kernel-throughput": Bench("kernel-throughput", collect_kernel_throughput,
                               default_repetitions=3),
    "fleet": Bench("fleet", collect_fleet, default_repetitions=1),
    "prewarm": Bench("prewarm", collect_prewarm, default_repetitions=1),
}


# ---------------------------------------------------------------------------
# Record / load / compare
# ---------------------------------------------------------------------------


def baseline_path(directory: str, name: str) -> pathlib.Path:
    return pathlib.Path(directory) / f"BENCH_{name.replace('-', '_')}.json"


def record(name: str, directory: str = DEFAULT_DIR,
           repetitions: Optional[int] = None,
           seed: Optional[int] = None) -> pathlib.Path:
    """Run one bench and write (or overwrite) its baseline file."""
    bench = BENCHES[name]
    repetitions = repetitions or bench.default_repetitions
    seed = seed if seed is not None else bench.default_seed
    metrics = bench.collect(repetitions, seed)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "bench": name,
        "seed": seed,
        "repetitions": repetitions,
        "metrics": {key: metrics[key].to_dict() for key in sorted(metrics)},
    }
    path = baseline_path(directory, name)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_baseline(path: pathlib.Path) -> Tuple[Dict[str, object], Metrics]:
    payload = json.loads(path.read_text(encoding="utf-8"))
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: baseline schema v{version}, expected v{SCHEMA_VERSION} "
            "— regenerate with `python -m repro.bench.baseline record`"
        )
    metrics = {key: MetricBaseline.from_dict(record)
               for key, record in payload["metrics"].items()}
    return payload, metrics


@dataclass
class Regression:
    """One metric that moved beyond its allowed envelope."""

    metric: str
    statistic: str          # "p50" or "p99"
    baseline: float
    current: float
    change_pct: float       # signed, positive = worse
    allowed_pct: float


def _allowed_fraction(base: MetricBaseline, tolerance: float) -> float:
    rel_ci = 0.0
    if base.ci_low is not None and base.ci_high is not None and base.p50 > 0:
        rel_ci = (base.ci_high - base.ci_low) / 2.0 / base.p50
    return min(TOLERANCE_CAP, max(tolerance, rel_ci))


def _check(metric: str, statistic: str, direction: str, base_value: float,
           cur_value: float, allowed: float) -> Optional[Regression]:
    if base_value <= 0:
        return None  # no meaningful relative comparison
    change = (cur_value - base_value) / base_value
    worse = change if direction == LOWER else -change
    if worse > allowed:
        return Regression(
            metric=metric, statistic=statistic,
            baseline=base_value, current=cur_value,
            change_pct=100.0 * worse, allowed_pct=100.0 * allowed,
        )
    return None


def compare_metrics(baseline: Metrics, current: Metrics,
                    tolerance: float = DEFAULT_TOLERANCE,
                    ) -> Tuple[List[Regression], List[str]]:
    """Regressions plus baseline metrics missing from the current run.

    Metrics new in ``current`` are ignored (a growing bench is not a
    regression); metrics that *disappeared* are reported as missing —
    a gate must never pass because the measurement vanished.
    """
    regressions: List[Regression] = []
    missing: List[str] = []
    for key in sorted(baseline):
        base = baseline[key]
        cur = current.get(key)
        if cur is None:
            missing.append(key)
            continue
        allowed = _allowed_fraction(base, tolerance)
        hit = _check(key, "p50", base.direction, base.p50, cur.p50, allowed)
        if hit:
            regressions.append(hit)
        if base.n > 1:
            hit = _check(key, "p99", base.direction, base.p99, cur.p99,
                         min(TOLERANCE_CAP * P99_TOLERANCE_FACTOR,
                             allowed * P99_TOLERANCE_FACTOR))
            if hit:
                regressions.append(hit)
    return regressions, missing


def compare(name: str, directory: str = DEFAULT_DIR,
            tolerance: float = DEFAULT_TOLERANCE,
            ) -> Tuple[List[Regression], List[str], Metrics]:
    """Re-run one bench at its baseline's seed/size and diff."""
    path = baseline_path(directory, name)
    if not path.exists():
        raise FileNotFoundError(
            f"no baseline at {path} — record it first with "
            f"`python -m repro.bench.baseline record {name}`"
        )
    payload, baseline = load_baseline(path)
    bench = BENCHES[name]
    current = bench.collect(int(payload["repetitions"]), int(payload["seed"]))
    regressions, missing = compare_metrics(baseline, current, tolerance)
    return regressions, missing, current


def render_regressions(name: str, regressions: List[Regression],
                       missing: List[str]) -> str:
    lines = []
    if regressions:
        lines.append(f"{name}: {len(regressions)} regression(s)")
        lines.append(format_table(
            ["metric", "stat", "baseline", "current", "worse by", "allowed"],
            [[r.metric, r.statistic, f"{r.baseline:.3f}", f"{r.current:.3f}",
              f"{r.change_pct:+.1f}%", f"{r.allowed_pct:.1f}%"]
             for r in regressions],
        ))
    for key in missing:
        lines.append(f"{name}: metric {key!r} missing from current run")
    if not lines:
        lines.append(f"{name}: OK")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.baseline",
        description="Record or gate on performance baselines.",
    )
    parser.add_argument("mode", choices=("record", "compare"))
    parser.add_argument("benches", nargs="*", metavar="bench",
                        help=f"subset of {sorted(BENCHES)} (default: all)")
    parser.add_argument("--dir", default=DEFAULT_DIR,
                        help=f"baseline directory (default {DEFAULT_DIR})")
    parser.add_argument("--repetitions", "-r", type=int, default=None,
                        help="override repetitions when recording")
    parser.add_argument("--seed", "-s", type=int, default=None,
                        help="override seed when recording")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="relative drift allowed before failing "
                             f"(default {DEFAULT_TOLERANCE})")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    # Same up-front sanity check as prebake-bench: a typo'd override
    # should be a clear exit-2 message, not a downstream traceback.
    for flag, value in (("--repetitions", args.repetitions),
                        ("--seed", args.seed)):
        if value is not None and value < 1:
            print(f"{flag} must be a positive integer, got {value}",
                  file=sys.stderr)
            return 2
    names = args.benches or sorted(BENCHES)
    unknown = [n for n in names if n not in BENCHES]
    if unknown:
        print(f"unknown bench(es): {', '.join(unknown)}; "
              f"known: {', '.join(sorted(BENCHES))}", file=sys.stderr)
        return 3
    if args.mode == "record":
        for name in names:
            path = record(name, directory=args.dir,
                          repetitions=args.repetitions, seed=args.seed)
            print(f"recorded {name} -> {path}")
        return 0
    failed = False
    for name in names:
        try:
            regressions, missing, _ = compare(
                name, directory=args.dir, tolerance=args.tolerance)
        except (FileNotFoundError, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return 3
        print(render_regressions(name, regressions, missing))
        if regressions or missing:
            failed = True
    return 2 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
