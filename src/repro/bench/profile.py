"""Phase-profile experiment: Figure 4's question, answered per request.

Runs instrumented start-up episodes for both techniques with the
:mod:`repro.obs.profile` profiler installed, checks the accounting
invariant (the four top-level phases sum to the measured start-up
time, restore sub-phases partition the restore charge), and renders

* a folded-stack flamegraph (``technique;function;PHASE[;sub] <µs>``,
  the format ``flamegraph.pl``/speedscope ingest directly), and
* a per-technique critical-path table in the paper's CLONE / EXEC /
  RTS / APPINIT taxonomy, restore sub-phases indented under APPINIT.

The profiler is installed *after* deploy/bake so samples cover only
the measured episode — the same window ``startup_ms`` measures.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro import make_world
from repro.bench.report import format_table
from repro.bench.stats import median
from repro.core.manager import PrebakeManager
from repro.core.policy import AfterReady, SnapshotPolicy
from repro.criu.restore import RestoreMode
from repro.functions.base import make_app
from repro.obs import profile as prof
from repro.obs.profile import PhaseSample
from repro.sim.rng import _derive_seed

PROFILE_SCHEMA_VERSION = 1

# Float-exact phase recording means the per-episode accounting error is
# pure summation round-off; anything past this bound is a real leak.
ACCOUNTING_TOLERANCE_MS = 1e-6


class ProfileAccountingError(AssertionError):
    """Phase totals failed to sum to the measured start-up time."""


@dataclass
class ProfileRun:
    """One profiled start-up episode."""

    technique: str
    function: str
    rep: int
    startup_ms: float
    samples: List[PhaseSample] = field(default_factory=list)

    def phase_totals(self) -> Dict[str, float]:
        """Figure-4 accounting: restore.* folded into APPINIT."""
        out = {phase: 0.0 for phase in prof.STARTUP_PHASES}
        for sample in self.samples:
            top = prof.phase_stack(sample.phase)[0]
            out[top] = out.get(top, 0.0) + sample.duration_ms
        return out

    def accounting_error_ms(self) -> float:
        return abs(sum(s.duration_ms for s in self.samples) - self.startup_ms)

    def verify(self) -> None:
        error = self.accounting_error_ms()
        if error > ACCOUNTING_TOLERANCE_MS:
            raise ProfileAccountingError(
                f"{self.technique}/{self.function} rep {self.rep}: phases "
                f"sum to {sum(s.duration_ms for s in self.samples):.6f} ms "
                f"but start-up measured {self.startup_ms:.6f} ms "
                f"(error {error:.2e} ms)"
            )

    def as_dict(self) -> Dict[str, object]:
        return {
            "technique": self.technique,
            "function": self.function,
            "rep": self.rep,
            "startup_ms": self.startup_ms,
            "samples": [s.as_dict() for s in self.samples],
        }


@dataclass
class ProfileResult:
    """All profiled episodes of one function, both techniques."""

    function: str
    repetitions: int
    seed: int
    runs: List[ProfileRun] = field(default_factory=list)

    def verify(self) -> None:
        for run in self.runs:
            run.verify()

    def technique_runs(self, technique: str) -> List[ProfileRun]:
        return [r for r in self.runs if r.technique == technique]

    def folded(self) -> List[str]:
        """Folded-stack lines aggregated over every profiled episode."""
        lines: List[str] = []
        by_prefix: Dict[str, List[PhaseSample]] = {}
        for run in self.runs:
            key = f"{run.technique};{run.function}"
            by_prefix.setdefault(key, []).extend(run.samples)
        for prefix in sorted(by_prefix):
            lines.extend(prof.folded_lines(by_prefix[prefix], prefix=prefix))
        return lines

    def critical_path_table(self, technique: str) -> str:
        """Mean-per-episode phase table; top-level rows sum to start-up."""
        runs = self.technique_runs(technique)
        if not runs:
            raise ValueError(f"no runs for technique {technique!r}")
        samples: List[PhaseSample] = []
        for run in runs:
            samples.extend(run.samples)
        table_rows = []
        for phase, ms, share in prof.critical_path_rows(samples):
            table_rows.append([phase, f"{ms / len(runs):.3f}",
                               f"{100.0 * share:.1f}%"])
        return format_table(["phase", "mean ms/episode", "share"], table_rows)

    def render(self) -> str:
        lines = [
            f"Phase profile — {self.function}, "
            f"{self.repetitions} rep(s)/technique, seed {self.seed}",
        ]
        for technique in ("vanilla", "prebake"):
            runs = self.technique_runs(technique)
            if not runs:
                continue
            startup = median([r.startup_ms for r in runs])
            worst = max(r.accounting_error_ms() for r in runs)
            lines.append("")
            lines.append(f"[{technique}] start-up median "
                         f"{startup:.2f} ms — phase sums match start-up "
                         f"in every episode (max error {worst:.1e} ms)")
            lines.append(self.critical_path_table(technique))
        lines.append("")
        lines.append("Folded stacks (flamegraph.pl / speedscope):")
        lines.extend(self.folded())
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema_version": PROFILE_SCHEMA_VERSION,
            "function": self.function,
            "repetitions": self.repetitions,
            "seed": self.seed,
            "runs": [run.as_dict() for run in self.runs],
        }


def result_from_dict(payload: Dict[str, object]) -> ProfileResult:
    """Rebuild a :class:`ProfileResult` from its JSON dump."""
    version = payload.get("schema_version")
    if version != PROFILE_SCHEMA_VERSION:
        raise ValueError(f"profile dump schema v{version}, "
                         f"expected v{PROFILE_SCHEMA_VERSION}")
    result = ProfileResult(
        function=str(payload["function"]),
        repetitions=int(payload["repetitions"]),
        seed=int(payload["seed"]),
    )
    for record in payload["runs"]:  # type: ignore[union-attr]
        run = ProfileRun(
            technique=str(record["technique"]),
            function=str(record["function"]),
            rep=int(record["rep"]),
            startup_ms=float(record["startup_ms"]),
        )
        for s in record["samples"]:
            run.samples.append(PhaseSample(
                phase=str(s["phase"]),
                duration_ms=float(s["duration_ms"]),
                at_ms=float(s["at_ms"]),
                pid=s.get("pid"),
                attrs=dict(s.get("attrs") or {}),
            ))
        result.runs.append(run)
    return result


def run_profile_experiment(
    function: str = "image-resizer",
    repetitions: int = 5,
    seed: int = 42,
    techniques: Sequence[str] = ("vanilla", "prebake"),
    policy: SnapshotPolicy = AfterReady(),
    restore_mode: RestoreMode = RestoreMode.EAGER,
    metrics_sink=None,
) -> ProfileResult:
    """Profile ``repetitions`` fresh-world start-ups per technique.

    Every episode runs in its own world (harness protocol); the
    profiler is installed after deploy so the sample window equals the
    measured start-up window, and each run is verified against the
    accounting invariant before being returned.

    ``metrics_sink``, when given a :class:`MetricsRegistry`, receives
    every episode world's metrics merged in (for ``--metrics-out``).
    """
    result = ProfileResult(function=function, repetitions=repetitions,
                           seed=seed)
    for technique in techniques:
        for rep in range(repetitions):
            world = make_world(
                seed=_derive_seed(seed, f"profile-{technique}-{rep}"),
                observe=True,
            )
            kernel = world.kernel
            manager = PrebakeManager(kernel)
            app = make_app(function)
            if technique == "prebake":
                manager.deploy(app, policy=policy)
                starter = manager.starter(
                    technique, policy=policy, restore_mode=restore_mode,
                    version=manager.current_version(app.name),
                )
            else:
                starter = manager.starter(technique)
            profiler = prof.install(kernel)
            handle = starter.start(app)
            run = ProfileRun(
                technique=technique,
                function=app.name,
                rep=rep,
                # "ready" is the window the taxonomy partitions
                # (DESIGN.md §7/§10); first-response metrics would add
                # serve time the phases deliberately exclude.
                startup_ms=handle.startup_ms("ready"),
                samples=profiler.reset(),
            )
            run.verify()
            result.runs.append(run)
            prof.uninstall(kernel)
            if metrics_sink is not None and kernel.obs is not None:
                metrics_sink.merge(kernel.obs.metrics)
    return result


def write_profile_json(path, result: ProfileResult) -> None:
    pathlib.Path(path).write_text(
        json.dumps(result.as_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_profile_json(path) -> ProfileResult:
    return result_from_dict(
        json.loads(pathlib.Path(path).read_text(encoding="utf-8")))


def write_folded(path, result: ProfileResult) -> None:
    pathlib.Path(path).write_text(
        "\n".join(result.folded()) + "\n", encoding="utf-8")
