"""Incident experiment (X9): chaos with anomaly-triggered postmortems.

The chaos sweep answers "how much does resilience cost on average"
with fresh worlds per repetition; this experiment answers "does the
*incident pipeline* work": one long-lived world serves a clean warmup
phase (establishing the online detectors' baselines), then an armed
fault window (``restore.fail`` by default) degrades cold starts, the
anomaly monitor flags the window, and the postmortem collector seals
bundles that carry a replay recipe.

Everything is deterministic on ``(seed, parameters)``:

* the fault schedule is drawn from per-site seeded streams, digested
  over every decision;
* the detectors read only simulated time and metric values;
* sealing a bundle reads live state without advancing the clock.

So :func:`replay_recipe` — re-running the experiment from a bundle's
recipe — reproduces the identical schedule digest and the identical
flagged windows, which is the property the acceptance test pins.

The replica pool is configured so every request cold-starts (a tiny
idle timeout plus think time and a GC tick between requests): each
request exercises the full restore path, giving the latency detector
one sample per request and the rate detectors steady window traffic.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro import faults, make_world, obs
from repro.bench.report import format_table
from repro.faas.platform import FaaSPlatform, PlatformConfig
from repro.faults.errors import PlatformError
from repro.faults.model import FaultPlan, FaultSpec
from repro.functions.base import make_app
from repro.obs.anomaly import AnomalyEvent
from repro.obs.log import bound_trace_provider, get_logger
from repro.obs.postmortem import PostmortemBundle, PostmortemCollector
from repro.sim.rng import _derive_seed

_log = get_logger("bench")

# Recipe keys that parameterize the run (everything else in a bundle's
# replay dict — e.g. the schedule digest — is provenance, not input).
RECIPE_KEYS = ("function", "technique", "seed", "warmup_requests",
               "fault_requests", "cooldown_requests", "fault_site",
               "fault_rate", "think_ms", "idle_timeout_ms", "window_ms",
               "z_threshold")


@dataclass
class IncidentResult:
    """One incident run: what was flagged, sealed, and injected."""

    function: str
    technique: str
    seed: int
    fault_site: str
    fault_rate: float
    warmup_requests: int
    fault_requests: int
    cooldown_requests: int
    requests: int = 0
    errors: int = 0
    faults_fired: int = 0
    fault_window_start_ms: float = 0.0
    fault_window_end_ms: float = 0.0
    schedule_digest: str = ""
    anomalies: List[AnomalyEvent] = field(default_factory=list)
    bundles: List[PostmortemBundle] = field(default_factory=list)
    bundle_paths: List[pathlib.Path] = field(default_factory=list)
    flight_events: List[Dict[str, object]] = field(default_factory=list)

    def anomalies_in_fault_window(self) -> List[AnomalyEvent]:
        """Flags whose window overlaps the injected-fault interval."""
        return [
            e for e in self.anomalies
            if (e.window_end_ms > self.fault_window_start_ms
                and e.window_start_ms < self.fault_window_end_ms)
        ]

    def anomaly_signature(self) -> List[tuple]:
        """Order-stable fingerprint for determinism assertions."""
        return [(e.detector, e.metric, round(e.at_ms, 6),
                 round(e.value, 9), round(e.score, 6))
                for e in self.anomalies]

    def render(self) -> str:
        header = (
            f"Incident run — {self.function} ({self.technique}), seed "
            f"{self.seed}: {self.warmup_requests} warmup + "
            f"{self.fault_requests} faulted ({self.fault_site}@"
            f"{self.fault_rate:g}) + {self.cooldown_requests} cooldown"
        )
        lines = [header]
        lines.append(
            f"requests={self.requests} errors={self.errors} "
            f"faults_fired={self.faults_fired} "
            f"fault_window=[{self.fault_window_start_ms:.1f}, "
            f"{self.fault_window_end_ms:.1f}) ms"
        )
        if self.anomalies:
            rows = [[e.detector, f"{e.at_ms:.1f}", f"{e.value:.3f}",
                     f"{e.score:.1f}",
                     f"[{e.window_start_ms:.0f}, {e.window_end_ms:.0f})",
                     e.trace_id or "-"]
                    for e in self.anomalies]
            lines.append(format_table(
                ["detector", "at ms", "value", "z", "window", "trace"],
                rows))
        else:
            lines.append("no anomalies flagged")
        lines.append(f"postmortem bundles sealed: {len(self.bundles)}")
        lines.append(f"fault schedule digest: {self.schedule_digest}")
        return "\n".join(lines)


def incident_experiment(
    function: str = "markdown",
    technique: str = "prebake",
    seed: int = 42,
    warmup_requests: int = 12,
    fault_requests: int = 4,
    cooldown_requests: int = 2,
    fault_site: str = faults.RESTORE_FAIL,
    fault_rate: float = 1.0,
    think_ms: float = 100.0,
    idle_timeout_ms: float = 50.0,
    window_ms: float = 500.0,
    z_threshold: float = 6.0,
    postmortem_dir: Optional[Union[str, pathlib.Path]] = None,
    flight_capacity: int = obs.flight.DEFAULT_CAPACITY,
    max_bundles: int = 4,
) -> IncidentResult:
    """Run the X9 chaos-with-postmortem experiment."""
    recipe: Dict[str, object] = {
        "experiment": "incident",
        "function": function,
        "technique": technique,
        "seed": seed,
        "warmup_requests": warmup_requests,
        "fault_requests": fault_requests,
        "cooldown_requests": cooldown_requests,
        "fault_site": fault_site,
        "fault_rate": fault_rate,
        "think_ms": think_ms,
        "idle_timeout_ms": idle_timeout_ms,
        "window_ms": window_ms,
        "z_threshold": z_threshold,
    }
    world = make_world(seed=_derive_seed(seed, "incident"), observe=True)
    kernel = world.kernel
    obs.install_flight(kernel, capacity=flight_capacity)
    obs.enable_timeseries(kernel, window_ms=window_ms)
    monitor = obs.enable_anomaly(kernel, window_ms=window_ms,
                                 z_threshold=z_threshold)
    collector = PostmortemCollector(
        kernel, seed=seed, label=f"incident-{function}-{technique}",
        recipe=recipe, out_dir=postmortem_dir, max_bundles=max_bundles)
    monitor.subscribe(collector.on_anomaly)

    result = IncidentResult(
        function=function, technique=technique, seed=seed,
        fault_site=fault_site, fault_rate=fault_rate,
        warmup_requests=warmup_requests, fault_requests=fault_requests,
        cooldown_requests=cooldown_requests,
    )

    platform = FaaSPlatform(kernel, PlatformConfig(nodes=2))
    platform.register_function(lambda: make_app(function),
                               start_technique=technique,
                               idle_timeout_ms=idle_timeout_ms)
    # One injector lives across all three phases (so the schedule
    # digest covers the whole run); arming/disarming the fault window
    # swaps the plan, not the injector.
    injector = platform.install_faults(FaultPlan())
    armed_plan = FaultPlan().with_spec(
        FaultSpec(site=fault_site, probability=fault_rate))

    def drive(n: int) -> None:
        for _ in range(n):
            result.requests += 1
            try:
                platform.invoke(function)
            except PlatformError as exc:
                result.errors += 1
                collector.on_error(exc, trace_id=_last_route_trace(kernel))
            # Idle out the replica and GC it so the next request
            # cold-starts through the full restore path again.
            kernel.clock.advance(think_ms)
            platform.gc_tick()

    with bound_trace_provider(kernel.obs.tracer.current_trace_id):
        try:
            drive(warmup_requests)
            result.fault_window_start_ms = kernel.clock.now
            injector.plan = armed_plan
            _log.info("incident.fault_armed", site=fault_site,
                      rate=fault_rate, at_ms=round(kernel.clock.now, 3))
            drive(fault_requests)
            injector.plan = FaultPlan()
            result.fault_window_end_ms = kernel.clock.now
            _log.info("incident.fault_disarmed",
                      at_ms=round(kernel.clock.now, 3))
            drive(cooldown_requests)
        finally:
            monitor.flush(kernel.clock.now)
            faults.uninstall(kernel)

    leaked = kernel.obs.tracer.open_spans()
    if leaked:
        raise obs.SpanError(
            "span leak after incident run: "
            + ", ".join(s.name for s in leaked))

    result.faults_fired = injector.fired_count()
    result.schedule_digest = injector.schedule_digest()
    result.anomalies = list(monitor.events)
    result.bundles = list(collector.bundles)
    result.bundle_paths = list(collector.paths)
    result.flight_events = [e.as_dict() for e in kernel.flight.events()]
    return result


def _last_route_trace(kernel) -> Optional[str]:
    """Trace id of the most recent router.route span (error recovery:
    the offending span already closed while the error unwound)."""
    for span in reversed(kernel.obs.tracer.spans):
        if span.name == "router.route":
            return span.trace_id
    return None


def replay_recipe(recipe: Dict[str, object],
                  postmortem_dir: Optional[Union[str, pathlib.Path]] = None
                  ) -> IncidentResult:
    """Re-run the experiment a postmortem bundle describes.

    Accepts a bundle's ``replay`` dict (extra provenance keys like
    ``fault_schedule_digest`` are ignored). Determinism of the stack
    makes the rerun's schedule digest and anomaly set identical to the
    original's — compare against the bundle to verify a reproduction.
    """
    kwargs = {key: recipe[key] for key in RECIPE_KEYS if key in recipe}
    return incident_experiment(postmortem_dir=postmortem_dir, **kwargs)
