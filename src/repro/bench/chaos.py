"""Chaos experiment: cold-start resilience under injected faults.

Sweeps a fault-probability knob across both start techniques and
reports what a user of the platform actually experiences: cold-start
wait percentiles, request success rate, and how often each resilience
mechanism (retry, fallback, quarantine/rebake, crash re-dispatch,
re-queue, reap) had to engage.

Every repetition runs in a fresh simulated world with faults drawn
from dedicated per-site RNG streams, so the whole sweep — including
the rendered report — is a pure function of ``(seed, parameters)``.
The report ends with a schedule digest over every fault decision
taken, which CI uses to assert seeded determinism.
"""

from __future__ import annotations

import hashlib
import pathlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro import faults, make_world, obs
from repro.bench.report import format_table
from repro.obs.postmortem import PostmortemCollector
from repro.bench.stats import quantile
from repro.faas.platform import FaaSPlatform, PlatformConfig
from repro.faults.errors import PlatformError
from repro.faults.model import (
    IMAGE_CORRUPT,
    IO_SLOW,
    OOM_KILL,
    REPLICA_CRASH,
    RESTORE_FAIL,
    RESTORE_HANG,
    FaultPlan,
    FaultSpec,
)
from repro.functions.base import make_app
from repro.sim.rng import _derive_seed

# How the single chaos knob fans out over the named fault sites.
# Restore-path faults get the full rate — they are what the prebake
# retry/fallback machinery exists to absorb. Serve-path faults run at
# a fraction so a request (which survives at most ``max_crash_retries``
# consecutive crashes) still demonstrably completes at knob = 1.0.
SITE_RATE_SCALE = {
    RESTORE_FAIL: 1.0,
    RESTORE_HANG: 0.25,
    IMAGE_CORRUPT: 0.25,
    IO_SLOW: 0.5,
    REPLICA_CRASH: 0.1,
    OOM_KILL: 0.1,
}

# Shorter hang than the model default: the point is that hangs are
# detected and retried, not to dominate the latency table.
CHAOS_HANG_MS = 200.0


def chaos_plan(rate: float) -> FaultPlan:
    """The fault plan armed at one sweep point of the chaos knob."""
    plan = FaultPlan()
    for site, scale in SITE_RATE_SCALE.items():
        probability = min(1.0, rate * scale)
        if probability <= 0.0:
            continue
        delay = CHAOS_HANG_MS if site == RESTORE_HANG else None
        plan = plan.with_spec(FaultSpec(site, probability, delay_ms=delay))
    return plan


@dataclass
class ChaosTreatment:
    """One (fault rate, technique) cell of the sweep."""

    fault_rate: float
    technique: str
    requests: int = 0
    successes: int = 0
    cold_waits_ms: List[float] = field(default_factory=list)
    faults_fired: int = 0
    fallbacks: int = 0
    retries: int = 0
    quarantines: int = 0
    rebakes: int = 0
    crash_retries: int = 0
    requeues: int = 0
    reaped: int = 0
    postmortems: int = 0
    schedule_digests: List[str] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        return self.successes / self.requests if self.requests else 0.0

    def cold_p50(self) -> float:
        return quantile(self.cold_waits_ms, 0.5) if self.cold_waits_ms else 0.0

    def cold_p99(self) -> float:
        return quantile(self.cold_waits_ms, 0.99) if self.cold_waits_ms else 0.0


@dataclass
class ChaosResult:
    """The full sweep, renderable as a stdout-diffable report."""

    function: str
    repetitions: int
    requests_per_rep: int
    seed: int
    treatments: List[ChaosTreatment] = field(default_factory=list)

    def treatment(self, rate: float, technique: str) -> ChaosTreatment:
        for t in self.treatments:
            if t.fault_rate == rate and t.technique == technique:
                return t
        raise KeyError(f"no treatment rate={rate} technique={technique}")

    def sweep_digest(self) -> str:
        """Digest over every fault decision of the whole sweep."""
        hasher = hashlib.sha256()
        for t in self.treatments:
            for digest in t.schedule_digests:
                hasher.update(digest.encode("ascii"))
        return hasher.hexdigest()

    def render(self) -> str:
        rows = []
        for t in self.treatments:
            rows.append([
                f"{t.fault_rate:.2f}",
                t.technique,
                f"{t.cold_p50():.2f}",
                f"{t.cold_p99():.2f}",
                f"{100.0 * t.success_rate:.1f}%",
                t.faults_fired,
                t.fallbacks,
                t.retries,
                t.quarantines,
                t.crash_retries,
                t.reaped,
            ])
        table = format_table(
            ["rate", "technique", "cold p50 ms", "cold p99 ms", "success",
             "faults", "fallback", "retry", "quarantine", "crash-retry",
             "reaped"],
            rows,
        )
        header = (
            f"Chaos recovery — {self.function}, "
            f"{self.repetitions} reps x {self.requests_per_rep} requests, "
            f"seed {self.seed}"
        )
        return (header + "\n" + table
                + f"\nfault schedule digest: {self.sweep_digest()}")


def _run_repetition(treatment: ChaosTreatment, function: str,
                    technique: str, rate: float, rep: int, seed: int,
                    requests_per_rep: int, think_ms: float,
                    postmortem_dir: Optional[pathlib.Path] = None) -> None:
    world = make_world(
        seed=_derive_seed(seed, f"chaos-{technique}-{rate}-{rep}"),
        observe=True,
    )
    kernel = world.kernel
    collector = None
    if postmortem_dir is not None:
        # Chaos reps are too short for the anomaly detectors to warm
        # up, so bundles here come from *unrecovered* PlatformErrors —
        # the requests the resilience machinery failed to absorb.
        obs.install_flight(kernel)
        collector = PostmortemCollector(
            kernel, seed=seed,
            label=f"chaos-{technique}-r{rate:g}-rep{rep}",
            recipe={"experiment": "chaos", "function": function,
                    "technique": technique, "fault_rate": rate,
                    "rep": rep, "seed": seed,
                    "requests_per_rep": requests_per_rep,
                    "think_ms": think_ms},
            out_dir=postmortem_dir,
        )
    platform = FaaSPlatform(kernel, PlatformConfig(nodes=2))
    platform.register_function(lambda: make_app(function),
                               start_technique=technique)
    injector = platform.install_faults(chaos_plan(rate))
    try:
        for _ in range(requests_per_rep):
            treatment.requests += 1
            try:
                platform.invoke(function)
                treatment.successes += 1
            except PlatformError as exc:
                if collector is not None:
                    from repro.bench.incident import _last_route_trace
                    collector.on_error(
                        exc, trace_id=_last_route_trace(kernel))
            kernel.clock.advance(think_ms)
            platform.gc_tick()
    finally:
        faults.uninstall(kernel)
    # Tracer self-check (chaos worlds are always observed): every
    # request — including those whose error unwound through the fault
    # machinery — must leave the span stack empty.
    leaked = kernel.obs.tracer.open_spans()
    if leaked:
        raise obs.SpanError(
            f"span leak after chaos rep {rep} "
            f"({technique}, rate={rate:g}): "
            + ", ".join(s.name for s in leaked))
    if collector is not None:
        treatment.postmortems += len(collector.bundles)
    metrics = kernel.obs.metrics
    treatment.cold_waits_ms.extend(platform.cold_start_latencies(function))
    treatment.faults_fired += injector.fired_count()
    treatment.fallbacks += int(metrics.value("prebake_fallback_total"))
    treatment.retries += int(metrics.value("prebake_restore_retries_total"))
    treatment.quarantines += int(
        metrics.value("prebake_snapshot_quarantined_total"))
    treatment.rebakes += int(metrics.value("prebake_rebake_total"))
    treatment.crash_retries += int(metrics.value("router_crash_retries_total"))
    treatment.requeues += int(metrics.value("router_requeued_total"))
    treatment.reaped += int(metrics.value("deployer_reaped_total")
                            + metrics.value("pool_reaped_total"))
    treatment.schedule_digests.append(injector.schedule_digest())


def chaos_experiment(
    function: str = "markdown",
    fault_rates: Sequence[float] = (0.0, 0.25, 1.0),
    repetitions: int = 20,
    requests_per_rep: int = 4,
    seed: int = 42,
    think_ms: float = 100.0,
    postmortem_dir: Optional[Union[str, pathlib.Path]] = None,
) -> ChaosResult:
    """Sweep the chaos knob over both techniques.

    Each repetition is a fresh world: register the function, arm the
    fault plan, issue ``requests_per_rep`` sequential requests (with
    ``think_ms`` of idle time and one autoscaler tick between them, so
    crashed replicas get reaped and follow-up requests cold-start
    again), and account per-world metrics into the treatment.

    ``postmortem_dir``, when given, additionally installs a flight
    recorder per repetition and seals a postmortem bundle into that
    directory for every request the resilience machinery failed to
    absorb (an unrecovered :class:`PlatformError`). The recorder and
    collector read world state without advancing the clock or drawing
    randomness, so the rendered table — digest included — is
    byte-identical with or without them.
    """
    out_dir = pathlib.Path(postmortem_dir) if postmortem_dir else None
    result = ChaosResult(
        function=function,
        repetitions=repetitions,
        requests_per_rep=requests_per_rep,
        seed=seed,
    )
    for rate in fault_rates:
        for technique in ("vanilla", "prebake"):
            treatment = ChaosTreatment(fault_rate=rate, technique=technique)
            for rep in range(repetitions):
                _run_repetition(treatment, function, technique, rate, rep,
                                seed, requests_per_rep, think_ms,
                                postmortem_dir=out_dir)
            result.treatments.append(treatment)
    return result
