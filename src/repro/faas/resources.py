"""Resource Orchestration layer: nodes and the Resource Manager.

"The Resource Manager ... ensures that the state of the computing
cluster is always in the desired states" (§2). Nodes have memory
capacity; containers (function replicas) reserve it. The paper's
experiments deliberately exclude container orchestration overhead
(§4.1), so provisioning cost defaults to zero and only the §5
integration demos turn it on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class ResourceError(Exception):
    """Capacity or placement failure."""


_allocation_ids = itertools.count(1)


@dataclass
class Allocation:
    """One container's reservation on a node."""

    allocation_id: int
    node: "ComputeNode"
    function: str
    memory_mib: float
    privileged: bool = False
    released: bool = False

    def release(self) -> None:
        if self.released:
            return
        self.node._release(self)
        self.released = True


@dataclass
class ComputeNode:
    """A worker node with finite memory."""

    name: str
    memory_mib: float = 8192.0
    allow_privileged: bool = True
    _allocations: List[Allocation] = field(default_factory=list)

    @property
    def used_mib(self) -> float:
        return sum(a.memory_mib for a in self._allocations)

    @property
    def free_mib(self) -> float:
        return self.memory_mib - self.used_mib

    def allocate(self, function: str, memory_mib: float,
                 privileged: bool = False) -> Allocation:
        if privileged and not self.allow_privileged:
            raise ResourceError(
                f"node {self.name!r} does not allow privileged containers"
            )
        if memory_mib > self.free_mib:
            raise ResourceError(
                f"node {self.name!r} has {self.free_mib:.0f} MiB free, "
                f"needs {memory_mib:.0f}"
            )
        allocation = Allocation(
            allocation_id=next(_allocation_ids),
            node=self,
            function=function,
            memory_mib=memory_mib,
            privileged=privileged,
        )
        self._allocations.append(allocation)
        return allocation

    def _release(self, allocation: Allocation) -> None:
        try:
            self._allocations.remove(allocation)
        except ValueError:
            raise ResourceError(
                f"allocation {allocation.allocation_id} not on node {self.name!r}"
            )


class ResourceManager:
    """Places replicas onto nodes (worst-fit: most free memory first)."""

    def __init__(self, nodes: Optional[List[ComputeNode]] = None) -> None:
        self.nodes: List[ComputeNode] = nodes or [ComputeNode(name="node-0")]

    def add_node(self, node: ComputeNode) -> None:
        if any(n.name == node.name for n in self.nodes):
            raise ResourceError(f"duplicate node name {node.name!r}")
        self.nodes.append(node)

    def place(self, function: str, memory_mib: float,
              privileged: bool = False,
              prefer: Optional[str] = None) -> Allocation:
        """Worst-fit placement, with an optional locality hint.

        ``prefer`` names a node to favor when it can host the replica
        (the router/deployer's chunk-locality hint: land where the
        snapshot's layers are already cached); when the preferred node
        is full or absent, placement falls back to worst-fit unchanged.
        """
        candidates = [
            n for n in self.nodes
            if n.free_mib >= memory_mib and (n.allow_privileged or not privileged)
        ]
        if not candidates:
            raise ResourceError(
                f"no node can host {function!r} ({memory_mib:.0f} MiB, "
                f"privileged={privileged})"
            )
        if prefer is not None:
            for node in candidates:
                if node.name == prefer:
                    return node.allocate(function, memory_mib,
                                         privileged=privileged)
        best = max(candidates, key=lambda n: n.free_mib)
        return best.allocate(function, memory_mib, privileged=privileged)

    @property
    def total_free_mib(self) -> float:
        return sum(n.free_mib for n in self.nodes)

    def utilization(self) -> Dict[str, float]:
        return {n.name: (n.used_mib / n.memory_mib if n.memory_mib else 0.0)
                for n in self.nodes}
