"""Function Replica: one running instance of a function.

The paper's concurrency model (§4.1): "each function replica handles
one request at a time. If a replica is busy and a new request arrives,
the platform starts another replica ... if a replica is inactive for a
certain period, the platform garbage collects the function replica".
"""

from __future__ import annotations

import itertools
import weakref
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro import faults, obs
from repro.core.starters import ReplicaHandle
from repro.faas.resources import Allocation
from repro.faults.errors import ReplicaCrashed, ReplicaUnavailable
from repro.osproc.cgroups import MemoryCgroup, OomEvent
from repro.runtime.base import Request, Response


class ReplicaState(Enum):
    PROVISIONING = "provisioning"
    IDLE = "idle"
    BUSY = "busy"
    TERMINATED = "terminated"


# Replica IDs are allocated per simulated world (keyed weakly on the
# kernel), not from a module global: a fresh world always numbers its
# replicas from 1, so traces and logs are deterministic across runs
# and tests cannot leak IDs into each other.
_replica_counters: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def next_replica_id(kernel) -> int:
    counter = _replica_counters.get(kernel)
    if counter is None:
        counter = itertools.count(1)
        _replica_counters[kernel] = counter
    return next(counter)


def reset_replica_ids(kernel=None) -> None:
    """Restart numbering for one kernel (or every tracked kernel)."""
    if kernel is None:
        _replica_counters.clear()
    else:
        _replica_counters.pop(kernel, None)


class FunctionReplica:
    """Wraps a started replica with platform-level lifecycle state."""

    def __init__(self, function: str, handle: ReplicaHandle,
                 allocation: Optional[Allocation] = None,
                 cgroup: Optional[MemoryCgroup] = None) -> None:
        self.replica_id = next_replica_id(handle.runtime.kernel)
        self.function = function
        self.handle = handle
        self.allocation = allocation
        self.cgroup = cgroup
        self.state = ReplicaState.IDLE
        self.last_active_ms = handle.ready_at_ms
        self.requests_served = 0
        self.cold_start_ms = handle.startup_ms("ready")
        # Set by the router per dispatch: did this request's dispatch
        # provision the replica (i.e. was it a cold start)?
        self.provisioned_cold = False

    @property
    def technique(self) -> str:
        return self.handle.technique

    @property
    def healthy(self) -> bool:
        """Is the backing process alive and the replica servable?"""
        return (self.state is not ReplicaState.TERMINATED
                and self.handle.process.alive)

    def serve(self, request: Request) -> Response:
        """Process one request (the replica is busy for its duration)."""
        if self.state is not ReplicaState.IDLE:
            raise ReplicaUnavailable(
                f"replica {self.replica_id} cannot serve in state {self.state.value}"
            )
        kernel = self.handle.runtime.kernel
        if faults.should_fire(kernel, faults.REPLICA_CRASH,
                              detail=f"{self.function}/r{self.replica_id}"):
            # The replica dies with the request in flight; the router
            # owns re-dispatching it to a healthy replica.
            self.terminate()
            obs.count(kernel, "replica_crashes_total",
                      labels={"function": self.function,
                              "technique": self.technique})
            raise ReplicaCrashed(
                f"replica {self.replica_id} of {self.function!r} crashed "
                f"serving request {request.request_id}",
                function=self.function, replica_id=self.replica_id,
            )
        self.state = ReplicaState.BUSY
        try:
            with obs.span(kernel, "replica.request", context=request.trace,
                          function=self.function,
                          replica_id=self.replica_id,
                          technique=self.technique):
                response = self.handle.invoke(request)
        finally:
            if self.state is ReplicaState.BUSY:
                self.state = ReplicaState.IDLE
        self.requests_served += 1
        self.last_active_ms = response.finished_ms
        obs.count(kernel, "replica_requests_total",
                  labels={"function": self.function,
                          "technique": self.technique})
        # The request may have grown the heap past the container's
        # memory limit — the cgroup OOM killer fires here, as it would
        # asynchronously in production. The fault site models the same
        # post-request kill without needing real memory growth.
        oom_injected = (self.cgroup is not None and faults.should_fire(
            kernel, faults.OOM_KILL,
            detail=f"{self.function}/r{self.replica_id}"))
        if oom_injected:
            self.cgroup.oom_events.append(OomEvent(
                cgroup=self.cgroup.name,
                pid=self.handle.process.pid,
                comm=self.handle.process.comm,
                rss_mib=self.handle.process.rss_mib,
                limit_mib=self.cgroup.limit_mib or 0.0,
                at_ms=kernel.clock.now,
            ))
            obs.count(kernel, "replica_oom_kills_total",
                      labels={"function": self.function})
        if oom_injected or (self.cgroup is not None and self.cgroup.enforce()):
            self.terminate()
        return response

    def idle_for_ms(self, now_ms: float) -> float:
        return now_ms - self.last_active_ms

    def terminate(self) -> None:
        if self.state is ReplicaState.TERMINATED:
            return
        self.handle.kill()
        if self.cgroup is not None:
            self.cgroup.detach(self.handle.process)
        if self.allocation is not None:
            self.allocation.release()
        self.state = ReplicaState.TERMINATED
