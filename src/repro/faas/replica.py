"""Function Replica: one running instance of a function.

The paper's concurrency model (§4.1): "each function replica handles
one request at a time. If a replica is busy and a new request arrives,
the platform starts another replica ... if a replica is inactive for a
certain period, the platform garbage collects the function replica".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.core.starters import ReplicaHandle
from repro.faas.resources import Allocation
from repro.osproc.cgroups import MemoryCgroup
from repro.runtime.base import Request, Response


class ReplicaState(Enum):
    PROVISIONING = "provisioning"
    IDLE = "idle"
    BUSY = "busy"
    TERMINATED = "terminated"


_replica_ids = itertools.count(1)


class FunctionReplica:
    """Wraps a started replica with platform-level lifecycle state."""

    def __init__(self, function: str, handle: ReplicaHandle,
                 allocation: Optional[Allocation] = None,
                 cgroup: Optional[MemoryCgroup] = None) -> None:
        self.replica_id = next(_replica_ids)
        self.function = function
        self.handle = handle
        self.allocation = allocation
        self.cgroup = cgroup
        self.state = ReplicaState.IDLE
        self.last_active_ms = handle.ready_at_ms
        self.requests_served = 0
        self.cold_start_ms = handle.startup_ms("ready")

    @property
    def technique(self) -> str:
        return self.handle.technique

    def serve(self, request: Request) -> Response:
        """Process one request (the replica is busy for its duration)."""
        if self.state is not ReplicaState.IDLE:
            raise RuntimeError(
                f"replica {self.replica_id} cannot serve in state {self.state.value}"
            )
        self.state = ReplicaState.BUSY
        try:
            response = self.handle.invoke(request)
        finally:
            self.state = ReplicaState.IDLE
        self.requests_served += 1
        self.last_active_ms = response.finished_ms
        # The request may have grown the heap past the container's
        # memory limit — the cgroup OOM killer fires here, as it would
        # asynchronously in production.
        if self.cgroup is not None and self.cgroup.enforce():
            self.state = ReplicaState.TERMINATED
            if self.allocation is not None:
                self.allocation.release()
        return response

    def idle_for_ms(self, now_ms: float) -> float:
        return now_ms - self.last_active_ms

    def terminate(self) -> None:
        if self.state is ReplicaState.TERMINATED:
            return
        self.handle.kill()
        if self.cgroup is not None:
            self.cgroup.detach(self.handle.process)
        if self.allocation is not None:
            self.allocation.release()
        self.state = ReplicaState.TERMINATED
