"""Function Replica: one running instance of a function.

The paper's concurrency model (§4.1): "each function replica handles
one request at a time. If a replica is busy and a new request arrives,
the platform starts another replica ... if a replica is inactive for a
certain period, the platform garbage collects the function replica".
"""

from __future__ import annotations

import itertools
import weakref
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro import obs
from repro.core.starters import ReplicaHandle
from repro.faas.resources import Allocation
from repro.osproc.cgroups import MemoryCgroup
from repro.runtime.base import Request, Response


class ReplicaState(Enum):
    PROVISIONING = "provisioning"
    IDLE = "idle"
    BUSY = "busy"
    TERMINATED = "terminated"


# Replica IDs are allocated per simulated world (keyed weakly on the
# kernel), not from a module global: a fresh world always numbers its
# replicas from 1, so traces and logs are deterministic across runs
# and tests cannot leak IDs into each other.
_replica_counters: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def next_replica_id(kernel) -> int:
    counter = _replica_counters.get(kernel)
    if counter is None:
        counter = itertools.count(1)
        _replica_counters[kernel] = counter
    return next(counter)


def reset_replica_ids(kernel=None) -> None:
    """Restart numbering for one kernel (or every tracked kernel)."""
    if kernel is None:
        _replica_counters.clear()
    else:
        _replica_counters.pop(kernel, None)


class FunctionReplica:
    """Wraps a started replica with platform-level lifecycle state."""

    def __init__(self, function: str, handle: ReplicaHandle,
                 allocation: Optional[Allocation] = None,
                 cgroup: Optional[MemoryCgroup] = None) -> None:
        self.replica_id = next_replica_id(handle.runtime.kernel)
        self.function = function
        self.handle = handle
        self.allocation = allocation
        self.cgroup = cgroup
        self.state = ReplicaState.IDLE
        self.last_active_ms = handle.ready_at_ms
        self.requests_served = 0
        self.cold_start_ms = handle.startup_ms("ready")

    @property
    def technique(self) -> str:
        return self.handle.technique

    def serve(self, request: Request) -> Response:
        """Process one request (the replica is busy for its duration)."""
        if self.state is not ReplicaState.IDLE:
            raise RuntimeError(
                f"replica {self.replica_id} cannot serve in state {self.state.value}"
            )
        kernel = self.handle.runtime.kernel
        self.state = ReplicaState.BUSY
        try:
            with obs.span(kernel, "replica.request", function=self.function,
                          replica_id=self.replica_id,
                          technique=self.technique):
                response = self.handle.invoke(request)
        finally:
            self.state = ReplicaState.IDLE
        self.requests_served += 1
        self.last_active_ms = response.finished_ms
        obs.count(kernel, "replica_requests_total",
                  labels={"function": self.function,
                          "technique": self.technique})
        # The request may have grown the heap past the container's
        # memory limit — the cgroup OOM killer fires here, as it would
        # asynchronously in production.
        if self.cgroup is not None and self.cgroup.enforce():
            self.state = ReplicaState.TERMINATED
            if self.allocation is not None:
                self.allocation.release()
        return response

    def idle_for_ms(self, now_ms: float) -> float:
        return now_ms - self.last_active_ms

    def terminate(self) -> None:
        if self.state is ReplicaState.TERMINATED:
            return
        self.handle.kill()
        if self.cgroup is not None:
            self.cgroup.detach(self.handle.process)
        if self.allocation is not None:
            self.allocation.release()
        self.state = ReplicaState.TERMINATED
