"""Function Builder: source → deployable artifact (+ snapshot).

"The Function Builder transforms the function representations ... into
a deployable form" (§2). With prebaking, "the Function Builder [should]
trigger the function snapshot since this component is responsible for
transforming the function into deployable artifacts" (§3.1) — so the
bake runs here, at build time, off the request path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.bake import BakeReport, Prebaker
from repro.core.policy import SnapshotPolicy
from repro.faas.registry import FunctionMetadata
from repro.osproc.kernel import Kernel


@dataclass
class BuildResult:
    """Outcome of one build."""

    function: str
    version: int
    artifact_path: str
    artifact_bytes: int
    build_duration_ms: float
    bake_report: Optional[BakeReport] = None

    @property
    def prebaked(self) -> bool:
        return self.bake_report is not None


class FunctionBuilder:
    """Builds artifacts and (for prebaked functions) snapshots."""

    # Modeled toolchain throughput: compile + package.
    BUILD_BASE_MS = 350.0
    BUILD_PER_MIB_MS = 120.0

    def __init__(self, kernel: Kernel, prebaker: Prebaker) -> None:
        self.kernel = kernel
        self.prebaker = prebaker

    def build(self, metadata: FunctionMetadata) -> BuildResult:
        """Produce the deployable artifact; bake if the function opts in."""
        kernel = self.kernel
        started = kernel.clock.now
        app = metadata.make_app()
        artifact_path = app.ensure_artifacts(kernel)
        artifact_bytes = kernel.fs.lookup(artifact_path).size

        # Compile/package time scales with artifact size.
        build_cost = self.BUILD_BASE_MS + self.BUILD_PER_MIB_MS * (
            artifact_bytes / (1024 * 1024)
        )
        kernel.clock.advance(
            kernel.costs.jitter(build_cost, kernel.streams, "builder.package")
        )

        bake_report = None
        if metadata.start_technique == "prebake":
            bake_report = self.prebaker.bake(
                app, policy=metadata.snapshot_policy, version=metadata.version
            )

        metadata.artifact_path = artifact_path
        metadata.artifact_bytes = artifact_bytes
        return BuildResult(
            function=metadata.name,
            version=metadata.version,
            artifact_path=artifact_path,
            artifact_bytes=artifact_bytes,
            build_duration_ms=kernel.clock.now - started,
            bake_report=bake_report,
        )
