"""SPEC-RG-style FaaS platform (paper §2) + OpenFaaS integration (§5).

The platform implements the reference architecture's Function
Management layer — Function Router, Function Registry, Function
Builder, Function Deployer, Function Replica — on top of a Resource
Orchestration layer (Resource Manager and compute nodes), wired to the
prebaking technique exactly where the paper puts it: the Builder bakes
at build time, replicas restore at start time.
"""

from repro.faas.registry import FunctionMetadata, FunctionRegistry, RegistryError
from repro.faas.builder import BuildResult, FunctionBuilder
from repro.faas.resources import ComputeNode, ResourceError, ResourceManager
from repro.faas.replica import FunctionReplica, ReplicaState
from repro.faas.deployer import FunctionDeployer
from repro.faas.router import FunctionRouter, RouterStats
from repro.faas.autoscaler import Autoscaler, AutoscalerConfig
from repro.faas.platform import FaaSPlatform, PlatformConfig

__all__ = [
    "FunctionMetadata",
    "FunctionRegistry",
    "RegistryError",
    "BuildResult",
    "FunctionBuilder",
    "ComputeNode",
    "ResourceError",
    "ResourceManager",
    "FunctionReplica",
    "ReplicaState",
    "FunctionDeployer",
    "FunctionRouter",
    "RouterStats",
    "Autoscaler",
    "AutoscalerConfig",
    "FaaSPlatform",
    "PlatformConfig",
]
