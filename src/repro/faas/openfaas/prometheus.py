"""PrometheusLite: the alerting layer for the OpenFaaS autoscaler.

"The platform auto-scaling functionality is shared between the Gateway
API and the Prometheus tool, which continuously monitors metrics and
fires alerts. All alerts fired by Prometheus are processed by Gateway
API, which decides when to scale down/up" (§5.1).

Metric storage lives in the shared :class:`repro.obs.metrics.MetricsRegistry`
(one per world when telemetry is installed); this class adds the
threshold rules and alert delivery on top. ``inc``/``set_gauge``/
``observe``/``value`` delegate straight to the registry, so gateway
metrics and experiment-harness metrics land in the same series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLO

LabelSet = Tuple[Tuple[str, str], ...]


@dataclass
class AlertRule:
    """Fire when ``metric`` (summed over matching labels) crosses ``threshold``."""

    name: str
    metric: str
    threshold: float
    comparison: str = ">"        # ">" or "<"
    labels: Dict[str, str] = field(default_factory=dict)

    def evaluate(self, value: float) -> bool:
        if self.comparison == ">":
            return value > self.threshold
        if self.comparison == "<":
            return value < self.threshold
        raise ValueError(f"unsupported comparison {self.comparison!r}")


@dataclass
class Alert:
    """A fired alert delivered to subscribers (the Gateway)."""

    rule: AlertRule
    value: float
    at_ms: float


class PrometheusLite:
    """Alert rules over a (possibly shared) metrics registry."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._rules: List[AlertRule] = []
        self._slos: List[Tuple[SLO, float]] = []  # (slo, burn threshold)
        self._subscribers: List[Callable[[Alert], None]] = []
        self.fired: List[Alert] = []

    # -- metrics (delegates to the shared registry) ------------------------------

    def inc(self, metric: str, value: float = 1.0,
            labels: Optional[Dict[str, str]] = None) -> None:
        if value < 0:
            raise ValueError("counters only go up")
        self.registry.inc(metric, value, labels)

    def set_gauge(self, metric: str, value: float,
                  labels: Optional[Dict[str, str]] = None) -> None:
        self.registry.set_gauge(metric, value, labels)

    def observe(self, metric: str, value: float,
                labels: Optional[Dict[str, str]] = None) -> None:
        self.registry.observe(metric, value, labels)

    def value(self, metric: str, labels: Optional[Dict[str, str]] = None) -> float:
        """Sum of the metric across series matching the label subset."""
        return self.registry.value(metric, labels)

    # -- alerting ----------------------------------------------------------------

    def add_rule(self, rule: AlertRule) -> None:
        self._rules.append(rule)

    def add_slo(self, slo: SLO, burn_threshold: float = 1.0) -> None:
        """Register an SLO; :meth:`evaluate` fires an alert whenever
        its burn rate exceeds ``burn_threshold`` (1.0 = the error
        budget is being spent exactly as fast as allowed)."""
        if burn_threshold <= 0:
            raise ValueError("burn threshold must be positive")
        self._slos.append((slo, burn_threshold))

    def subscribe(self, callback: Callable[[Alert], None]) -> None:
        self._subscribers.append(callback)

    def attach_anomaly_monitor(self, monitor) -> None:
        """Route online :class:`~repro.obs.anomaly.AnomalyEvent`s into
        the alert path: each flagged window fires immediately as a
        synthetic ``anomaly:<detector>`` alert — no polling
        :meth:`evaluate` pass needed — and is delivered to the same
        subscribers as threshold and SLO-burn alerts."""
        def deliver(event) -> None:
            rule = AlertRule(
                name=f"anomaly:{event.detector}",
                metric=event.metric,
                threshold=event.threshold,
            )
            self._fire(rule, event.score, event.at_ms)

        monitor.subscribe(deliver)

    def _fire(self, rule: AlertRule, value: float, now_ms: float) -> Alert:
        alert = Alert(rule=rule, value=value, at_ms=now_ms)
        self.fired.append(alert)
        for subscriber in self._subscribers:
            subscriber(alert)
        return alert

    def evaluate(self, now_ms: float = 0.0) -> List[Alert]:
        """Evaluate every rule and SLO; fire and deliver alerts that trip."""
        alerts = []
        for rule in self._rules:
            value = self.value(rule.metric, rule.labels)
            if rule.evaluate(value):
                alerts.append(self._fire(rule, value, now_ms))
        for slo, burn_threshold in self._slos:
            burn = slo.burn_rate(self.registry)
            if burn is not None and burn > burn_threshold:
                # A synthetic rule describes the burn-rate condition so
                # subscribers handle SLO alerts like any threshold alert.
                rule = AlertRule(
                    name=f"slo:{slo.name}",
                    metric=f"burn_rate({slo.metric})",
                    threshold=burn_threshold,
                    labels=dict(slo.labels),
                )
                alerts.append(self._fire(rule, burn, now_ms))
        return alerts
