"""PrometheusLite: metrics + alerting for the OpenFaaS autoscaler.

"The platform auto-scaling functionality is shared between the Gateway
API and the Prometheus tool, which continuously monitors metrics and
fires alerts. All alerts fired by Prometheus are processed by Gateway
API, which decides when to scale down/up" (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

LabelSet = Tuple[Tuple[str, str], ...]


def _labels(labels: Optional[Dict[str, str]]) -> LabelSet:
    return tuple(sorted((labels or {}).items()))


@dataclass
class AlertRule:
    """Fire when ``metric`` (summed over matching labels) crosses ``threshold``."""

    name: str
    metric: str
    threshold: float
    comparison: str = ">"        # ">" or "<"
    labels: Dict[str, str] = field(default_factory=dict)

    def evaluate(self, value: float) -> bool:
        if self.comparison == ">":
            return value > self.threshold
        if self.comparison == "<":
            return value < self.threshold
        raise ValueError(f"unsupported comparison {self.comparison!r}")


@dataclass
class Alert:
    """A fired alert delivered to subscribers (the Gateway)."""

    rule: AlertRule
    value: float
    at_ms: float


class PrometheusLite:
    """Counters/gauges with threshold alert rules."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelSet], float] = {}
        self._gauges: Dict[Tuple[str, LabelSet], float] = {}
        self._rules: List[AlertRule] = []
        self._subscribers: List[Callable[[Alert], None]] = []
        self.fired: List[Alert] = []

    # -- metrics ---------------------------------------------------------------

    def inc(self, metric: str, value: float = 1.0,
            labels: Optional[Dict[str, str]] = None) -> None:
        if value < 0:
            raise ValueError("counters only go up")
        key = (metric, _labels(labels))
        self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, metric: str, value: float,
                  labels: Optional[Dict[str, str]] = None) -> None:
        self._gauges[(metric, _labels(labels))] = value

    def value(self, metric: str, labels: Optional[Dict[str, str]] = None) -> float:
        """Sum of the metric across series matching the label subset."""
        want = dict(labels or {})
        total = 0.0
        for store in (self._counters, self._gauges):
            for (name, series_labels), v in store.items():
                if name != metric:
                    continue
                series = dict(series_labels)
                if all(series.get(k) == val for k, val in want.items()):
                    total += v
        return total

    # -- alerting ----------------------------------------------------------------

    def add_rule(self, rule: AlertRule) -> None:
        self._rules.append(rule)

    def subscribe(self, callback: Callable[[Alert], None]) -> None:
        self._subscribers.append(callback)

    def evaluate(self, now_ms: float = 0.0) -> List[Alert]:
        """Evaluate every rule; fire and deliver alerts that trip."""
        alerts = []
        for rule in self._rules:
            value = self.value(rule.metric, rule.labels)
            if rule.evaluate(value):
                alert = Alert(rule=rule, value=value, at_ms=now_ms)
                alerts.append(alert)
                self.fired.append(alert)
                for subscriber in self._subscribers:
                    subscriber(alert)
        return alerts
