"""Container images and containers.

"Prebaking templates start the function runtime and run an optional
post-processing script (e.g., warm-up requests), and checkpoint the
function process into the container image" (§5.2) — so an image here
is a list of layers, one of which may be a CRIU snapshot, and a
container is an image instance that may need ``--privileged`` to
restore it.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.store import SnapshotKey


@dataclass(frozen=True)
class ImageLayer:
    """One layer of a container image."""

    name: str
    size_bytes: int
    media_type: str = "application/vnd.oci.image.layer.v1.tar"
    digest: str = ""  # content digest; derived from (name, size) if unset

    @property
    def blob_digest(self) -> str:
        """Registry blob identity — equal digests share one stored blob."""
        if self.digest:
            return self.digest
        raw = f"{self.name}:{self.size_bytes}:{self.media_type}"
        return "sha256:" + hashlib.sha256(raw.encode("utf-8")).hexdigest()


@dataclass
class ContainerImage:
    """An OCI-style image: base + function + (optional) snapshot layer."""

    repository: str
    tag: str
    layers: List[ImageLayer] = field(default_factory=list)
    snapshot_key: Optional[SnapshotKey] = None
    requires_privileged: bool = False

    @property
    def reference(self) -> str:
        return f"{self.repository}:{self.tag}"

    @property
    def total_bytes(self) -> int:
        return sum(layer.size_bytes for layer in self.layers)

    @property
    def has_snapshot(self) -> bool:
        return self.snapshot_key is not None

    def snapshot_layer(self) -> Optional[ImageLayer]:
        for layer in self.layers:
            if layer.name == "criu-snapshot":
                return layer
        return None


_container_ids = itertools.count(1)


@dataclass
class Container:
    """A running container instance."""

    image: ContainerImage
    privileged: bool
    container_id: int = field(default_factory=lambda: next(_container_ids))
    running: bool = True

    def stop(self) -> None:
        self.running = False
