"""OpenFaaS integration (paper §5).

Models the OpenFaaS components the paper integrated prebaking with:
faas-cli (new/build/push/deploy), the template store (including the
CRIU templates the authors published), the container image repository,
the API gateway with Prometheus-driven autoscaling, the per-replica
watchdog, and pluggable FaaS providers (Kubernetes / Docker Swarm)
with ``--privileged`` support for the restore operation.
"""

from repro.faas.openfaas.containers import Container, ContainerImage, ImageLayer
from repro.faas.openfaas.templates import Template, TemplateStore
from repro.faas.openfaas.imagerepo import ImageRepository, ImageNotFound
from repro.faas.openfaas.prometheus import AlertRule, PrometheusLite
from repro.faas.openfaas.providers import (
    DockerSwarmProvider,
    FaasProvider,
    KubernetesProvider,
    ProviderError,
)
from repro.faas.openfaas.watchdog import Watchdog
from repro.faas.openfaas.gateway import Gateway
from repro.faas.openfaas.cli import FaasCli, FaasCliError
from repro.faas.openfaas.exposition import parse_exposition, render_exposition

__all__ = [
    "render_exposition",
    "parse_exposition",
    "Container",
    "ContainerImage",
    "ImageLayer",
    "Template",
    "TemplateStore",
    "ImageRepository",
    "ImageNotFound",
    "AlertRule",
    "PrometheusLite",
    "FaasProvider",
    "KubernetesProvider",
    "DockerSwarmProvider",
    "ProviderError",
    "Watchdog",
    "Gateway",
    "FaasCli",
    "FaasCliError",
]
