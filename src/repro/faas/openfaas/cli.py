"""faas-cli: the developer workflow (§5.1/§5.2).

Implements the four operations the paper lists — ``new`` (copy a
template), ``build`` (artifact + build-time checkpoint for CRIU
templates), ``push`` (to the image repository) and ``deploy`` (to the
gateway) — including the Docker Buildx wrinkle: "Since usual docker
build does not allow the execution of privileged operations, it was
necessary to install the Docker Buildx CLI plugin".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.bake import Prebaker
from repro.faas.openfaas.containers import ContainerImage, ImageLayer
from repro.faas.openfaas.gateway import DeployedService, Gateway
from repro.faas.openfaas.imagerepo import ImageRepository
from repro.faas.openfaas.templates import Template, TemplateStore
from repro.functions.base import FunctionApp
from repro.osproc.kernel import Kernel


class FaasCliError(Exception):
    """faas-cli operation failure."""


@dataclass
class FunctionProject:
    """A function project created by ``faas-cli new``."""

    name: str
    template: Template
    app_factory: Callable[[], FunctionApp]
    image: Optional[ContainerImage] = None
    version: int = 1

    @property
    def image_reference(self) -> str:
        return f"registry.local/{self.name}:{self.version}"


class FaasCli:
    """The developer-facing command set."""

    BASE_LAYER_BYTES = 85 * 1024 * 1024   # of-watchdog + runtime base image
    CRIU_LAYER_BYTES = 9 * 1024 * 1024    # criu + its dependencies
    PACKAGE_BASE_MS = 350.0               # compile + docker-build baseline
    PACKAGE_PER_MIB_MS = 120.0

    def __init__(
        self,
        kernel: Kernel,
        templates: TemplateStore,
        prebaker: Prebaker,
        image_repo: ImageRepository,
        gateway: Gateway,
        buildx_installed: bool = True,
    ) -> None:
        self.kernel = kernel
        self.templates = templates
        self.prebaker = prebaker
        self.image_repo = image_repo
        self.gateway = gateway
        self.buildx_installed = buildx_installed
        self._projects: Dict[str, FunctionProject] = {}

    # -- operations ---------------------------------------------------------------

    def new(self, name: str, template_name: str,
            app_factory: Callable[[], FunctionApp]) -> FunctionProject:
        """``faas-cli new``: create a project from a template."""
        if name in self._projects:
            raise FaasCliError(f"project {name!r} already exists")
        template = self.templates.get(template_name)
        sample = app_factory()
        if sample.runtime_kind != template.runtime_kind:
            raise FaasCliError(
                f"function {sample.name!r} targets runtime "
                f"{sample.runtime_kind!r} but template {template_name!r} "
                f"provides {template.runtime_kind!r}"
            )
        project = FunctionProject(name=name, template=template,
                                  app_factory=app_factory)
        self._projects[name] = project
        return project

    def build(self, name: str) -> ContainerImage:
        """``faas-cli build``: artifact → container image (± snapshot).

        For CRIU templates the build "start[s] the function runtime and
        run[s] an optional post-processing script (e.g., warm-up
        requests), and checkpoint[s] the function process into the
        container image" (§5.2).
        """
        project = self._require_project(name)
        template = project.template
        app = project.app_factory()
        artifact_path = app.ensure_artifacts(self.kernel)
        artifact_bytes = self.kernel.fs.lookup(artifact_path).size
        package_ms = (self.PACKAGE_BASE_MS
                      + self.PACKAGE_PER_MIB_MS * artifact_bytes / (1024 * 1024))
        self.kernel.clock.advance(self.kernel.costs.jitter(
            package_ms, self.kernel.streams, "faascli.build"))
        layers = [
            ImageLayer("base", self.BASE_LAYER_BYTES),
            ImageLayer("function", artifact_bytes),
        ]
        snapshot_key = None
        requires_privileged = False
        if template.criu_enabled:
            if not self.buildx_installed:
                raise FaasCliError(
                    "usual docker build does not allow privileged operations; "
                    "install the Docker Buildx CLI plugin to build CRIU templates"
                )
            report = self.prebaker.bake(
                app, policy=template.snapshot_policy(), version=project.version
            )
            layers.append(ImageLayer("criu-deps", self.CRIU_LAYER_BYTES))
            # The snapshot layer's digest is the checkpoint's sealed
            # content digest: identical snapshots share a registry
            # blob, distinct ones never collide on (name, size).
            layers.append(ImageLayer(
                "criu-snapshot", report.image.total_bytes,
                digest=(f"sha256:{report.image.digest}"
                        if report.image.digest else ""),
            ))
            snapshot_key = report.key
            requires_privileged = True
        image = ContainerImage(
            repository=f"registry.local/{name}",
            tag=str(project.version),
            layers=layers,
            snapshot_key=snapshot_key,
            requires_privileged=requires_privileged,
        )
        project.image = image
        return image

    def push(self, name: str) -> str:
        """``faas-cli push``: upload the built image."""
        project = self._require_project(name)
        if project.image is None:
            raise FaasCliError(f"project {name!r} has not been built")
        self.image_repo.push(project.image)
        return project.image.reference

    def deploy(self, name: str, memory_mib: float = 256.0,
               initial_replicas: int = 0) -> DeployedService:
        """``faas-cli deploy``: make the function invokable."""
        project = self._require_project(name)
        if project.image is None or not self.image_repo.contains(
                project.image.reference):
            raise FaasCliError(
                f"project {name!r} must be built and pushed before deploy"
            )
        return self.gateway.deploy(
            service=name,
            image_reference=project.image.reference,
            app_factory=project.app_factory,
            memory_mib=memory_mib,
            initial_replicas=initial_replicas,
        )

    def up(self, name: str, **deploy_kwargs) -> DeployedService:
        """``faas-cli up`` = build + push + deploy."""
        self.build(name)
        self.push(name)
        return self.deploy(name, **deploy_kwargs)

    def list(self) -> List[Dict[str, object]]:
        """``faas-cli list``: deployed services with replica counts."""
        rows = []
        for service in self.gateway.services():
            deployed = self.gateway._services[service]
            rows.append({
                "name": service,
                "image": deployed.image.reference,
                "replicas": len(deployed.live_replicas()),
                "prebaked": deployed.image.has_snapshot,
            })
        return rows

    def describe(self, name: str) -> Dict[str, object]:
        """``faas-cli describe``: one project's full lifecycle state."""
        project = self._require_project(name)
        deployed = self.gateway._services.get(name)
        info: Dict[str, object] = {
            "name": name,
            "template": project.template.name,
            "version": project.version,
            "built": project.image is not None,
            "pushed": bool(project.image and self.image_repo.contains(
                project.image.reference)),
            "deployed": deployed is not None,
        }
        if project.image is not None:
            info["image"] = project.image.reference
            info["image_bytes"] = project.image.total_bytes
            info["snapshot_key"] = (str(project.image.snapshot_key)
                                    if project.image.snapshot_key else None)
        if deployed is not None:
            info["replicas"] = len(deployed.live_replicas())
        return info

    # -- helpers ---------------------------------------------------------------------

    def _require_project(self, name: str) -> FunctionProject:
        project = self._projects.get(name)
        if project is None:
            raise FaasCliError(
                f"no project {name!r}; create it with `faas-cli new` first"
            )
        return project

    def bump_version(self, name: str) -> int:
        """Start a new version of the project (next build re-bakes)."""
        project = self._require_project(name)
        project.version += 1
        project.image = None
        return project.version
