"""The OpenFaaS API Gateway (§5.1).

"Every request that comes through the platform hits the Gateway API,
which is the OpenFaaS platform entry point. It provides APIs to deploy,
invoke, scale, gather information, and metrics about the instances of
the function." Scale-up decisions come from Prometheus alerts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro import obs
from repro.core.policy import policy_from_key
from repro.core.starters import PrebakeStarter, VanillaStarter
from repro.core.store import SnapshotStore
from repro.faas.openfaas.containers import ContainerImage
from repro.faas.openfaas.imagerepo import ImageRepository
from repro.faas.openfaas.prometheus import Alert, AlertRule, PrometheusLite
from repro.faas.openfaas.providers import FaasProvider, ScheduledContainer
from repro.faas.openfaas.watchdog import Watchdog
from repro.functions.base import FunctionApp
from repro.osproc.kernel import Kernel
from repro.runtime.base import Request, Response


class GatewayError(Exception):
    """Deploy/invoke failure at the gateway."""


@dataclass
class DeployedService:
    """One deployed function service and its replica set."""

    name: str
    image: ContainerImage
    app_factory: Callable[[], FunctionApp]
    memory_mib: float
    privileged: bool
    replicas: List["GatewayReplica"] = field(default_factory=list)

    def live_replicas(self) -> List["GatewayReplica"]:
        self.replicas = [r for r in self.replicas if r.watchdog.healthy()]
        return self.replicas


@dataclass
class GatewayReplica:
    """A scheduled container plus the watchdog supervising it."""

    scheduled: ScheduledContainer
    watchdog: Watchdog
    cold_start_ms: float


class Gateway:
    """OpenFaaS entry point: deploy / invoke / scale / metrics."""

    def __init__(
        self,
        kernel: Kernel,
        provider: FaasProvider,
        image_repo: ImageRepository,
        snapshot_store: SnapshotStore,
        prometheus: Optional[PrometheusLite] = None,
    ) -> None:
        self.kernel = kernel
        self.provider = provider
        self.image_repo = image_repo
        self.snapshot_store = snapshot_store
        if prometheus is None:
            # Share the world's metrics registry when telemetry is
            # installed, so gateway series and harness series merge.
            registry = kernel.obs.metrics if kernel.obs is not None else None
            prometheus = PrometheusLite(registry=registry)
        self.prometheus = prometheus
        self._services: Dict[str, DeployedService] = {}
        self._latency: Dict[str, "LatencyDigest"] = {}
        self.prometheus.subscribe(self._on_alert)

    # -- deploy -------------------------------------------------------------------

    def deploy(
        self,
        service: str,
        image_reference: str,
        app_factory: Callable[[], FunctionApp],
        memory_mib: float = 256.0,
        initial_replicas: int = 0,
    ) -> DeployedService:
        """Deploy (or update) a service from an image in the repository."""
        image = self.image_repo.pull(image_reference)
        # Snapshot images need --privileged unless the provider's
        # kernel grants CAP_CHECKPOINT_RESTORE (unprivileged criu).
        unprivileged_cr = getattr(self.provider, "allow_unprivileged_cr", False)
        privileged = image.requires_privileged and not unprivileged_cr
        deployed = DeployedService(
            name=service,
            image=image,
            app_factory=app_factory,
            memory_mib=memory_mib,
            privileged=privileged,
        )
        if service in self._services:
            self.provider.remove_service(service)
        self._services[service] = deployed
        # Default scale-from-zero alert for this service.
        self.prometheus.add_rule(AlertRule(
            name=f"{service}-backpressure",
            metric="gateway_pending_requests",
            threshold=0.0,
            labels={"function": service},
        ))
        for _ in range(initial_replicas):
            self._add_replica(deployed)
        return deployed

    def remove(self, service: str) -> None:
        deployed = self._services.pop(service, None)
        if deployed is None:
            raise GatewayError(f"service {service!r} is not deployed")
        for replica in deployed.replicas:
            replica.watchdog.shutdown()
        self.provider.remove_service(service)

    # -- invoke --------------------------------------------------------------------

    def invoke(self, service: str, request: Optional[Request] = None) -> Response:
        """Invoke a function, cold-starting a replica when none exists."""
        deployed = self._services.get(service)
        if deployed is None:
            raise GatewayError(f"service {service!r} is not deployed")
        request = request or Request()
        with obs.span(self.kernel, "gateway.invoke", function=service,
                      request_id=request.request_id,
                      context=request.trace) as invoke_span:
            # The gateway is the platform entry point: mint the causal
            # trace here so provisioning, restore, and serving all
            # attach to this request's tree. (NullSpan.context is None,
            # so unobserved worlds stay bare.)
            if request.trace is None:
                request.trace = invoke_span.context
            self.prometheus.inc("gateway_function_invocation_total",
                                labels={"function": service})
            replicas = deployed.live_replicas()
            if not replicas:
                self.prometheus.set_gauge("gateway_pending_requests", 1.0,
                                          labels={"function": service})
                replica = self._add_replica(deployed)
                self.prometheus.set_gauge("gateway_pending_requests", 0.0,
                                          labels={"function": service})
                self.prometheus.inc("gateway_cold_start_total",
                                    labels={"function": service})
                invoke_span.set(cold_start=True)
            else:
                replica = replicas[0]
            response = replica.watchdog.forward(request)
        self._record_latency(service, response.service_ms)
        self.prometheus.observe("gateway_service_duration_ms",
                                response.service_ms,
                                labels={"function": service})
        return response

    def _record_latency(self, service: str, service_ms: float) -> None:
        from repro.bench.digest import LatencyDigest
        digest = self._latency.get(service)
        if digest is None:
            digest = LatencyDigest()
            self._latency[service] = digest
        digest.observe(service_ms)

    def latency_summary(self, service: str) -> Dict[str, float]:
        """Streaming latency percentiles for one service (P² digest)."""
        digest = self._latency.get(service)
        if digest is None:
            raise GatewayError(f"no latency recorded for {service!r}")
        return digest.summary()

    def invoke_http(self, service: str, wire: bytes) -> bytes:
        """Wire-level entry point: HTTP request bytes in, response out.

        Malformed requests produce proper HTTP error responses instead
        of exceptions — this is the gateway's public surface.
        """
        from repro.faas.http import (
            HttpError,
            HttpResponse,
            compose_response,
            from_runtime_response,
            parse_request,
            to_runtime_request,
        )
        try:
            http_request = parse_request(wire)
        except HttpError as exc:
            return compose_response(HttpResponse(
                status=exc.status, body=str(exc).encode("utf-8")))
        try:
            response = self.invoke(service, to_runtime_request(http_request))
        except GatewayError as exc:
            return compose_response(HttpResponse(
                status=404, body=str(exc).encode("utf-8")))
        return compose_response(from_runtime_response(response))

    # -- scale ----------------------------------------------------------------------

    def scale(self, service: str, replicas: int) -> int:
        """Set the replica count (scale up only adds; down removes)."""
        deployed = self._services.get(service)
        if deployed is None:
            raise GatewayError(f"service {service!r} is not deployed")
        current = deployed.live_replicas()
        added = 0
        while len(deployed.replicas) < replicas:
            self._add_replica(deployed)
            added += 1
        while len(deployed.replicas) > replicas:
            victim = deployed.replicas.pop()
            victim.watchdog.shutdown()
            victim.scheduled.remove()
        self.prometheus.set_gauge("gateway_service_count",
                                  len(deployed.replicas),
                                  labels={"function": service})
        return added

    def replica_count(self, service: str) -> int:
        deployed = self._services.get(service)
        return len(deployed.live_replicas()) if deployed else 0

    def services(self) -> List[str]:
        return sorted(self._services)

    # -- internals ----------------------------------------------------------------------

    def _add_replica(self, deployed: DeployedService) -> GatewayReplica:
        scheduled = self.provider.run_container(
            deployed.name, deployed.image, deployed.memory_mib,
            privileged=deployed.privileged,
        )
        unprivileged_cr = getattr(self.provider, "allow_unprivileged_cr", False)
        watchdog = Watchdog(
            self.kernel,
            privileged=scheduled.container.privileged,
            checkpoint_restore=deployed.image.has_snapshot and unprivileged_cr,
        )
        app = deployed.app_factory()
        started = self.kernel.clock.now
        if deployed.image.has_snapshot:
            key = deployed.image.snapshot_key
            starter = PrebakeStarter(
                self.kernel,
                self.snapshot_store,
                policy=policy_from_key(key.policy),
                version=key.version,
            )
        else:
            starter = VanillaStarter(self.kernel)
        try:
            watchdog.start_function(starter, app)
        except Exception:
            watchdog.shutdown()
            scheduled.remove()
            raise
        replica = GatewayReplica(
            scheduled=scheduled,
            watchdog=watchdog,
            cold_start_ms=self.kernel.clock.now - started,
        )
        deployed.replicas.append(replica)
        self.prometheus.set_gauge("gateway_service_count",
                                  len(deployed.replicas),
                                  labels={"function": deployed.name})
        return replica

    def _on_alert(self, alert: Alert) -> None:
        """Prometheus alert → scale-up decision (the OpenFaaS loop)."""
        function = alert.rule.labels.get("function")
        if not function or function not in self._services:
            return
        deployed = self._services[function]
        if not deployed.live_replicas():
            self._add_replica(deployed)
