"""Prometheus text exposition format for the gateway's metrics.

Real OpenFaaS gateways expose ``/metrics`` for Prometheus to scrape;
this renders the registry behind
:class:`~repro.faas.openfaas.prometheus.PrometheusLite` in the
exposition format (v0.0.4 text), so the simulated platform's metrics
are inspectable with standard tooling expectations:

    gateway_function_invocation_total{function="markdown"} 42

The actual rendering/parsing lives in :mod:`repro.obs.export` (the
shared telemetry layer); these wrappers keep the historical OpenFaaS
entry points.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.faas.openfaas.prometheus import PrometheusLite
from repro.obs.export import parse_prometheus, render_prometheus


def render_exposition(prom: PrometheusLite) -> str:
    """Render every series in the registry: counters, gauges, then
    histogram summaries — grouped per metric with a ``# TYPE`` line,
    sorted for deterministic output."""
    return render_prometheus(prom.registry)


def parse_exposition(text: str) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Parse exposition text back into {metric: {labelset: value}}.

    Supports the subset :func:`render_exposition` emits (no escapes in
    label names, one series per line). Used by tests and by experiment
    tooling that scrapes the simulated gateway.
    """
    return parse_prometheus(text)
