"""Prometheus text exposition format for the metrics registry.

Real OpenFaaS gateways expose ``/metrics`` for Prometheus to scrape;
this renders :class:`~repro.faas.openfaas.prometheus.PrometheusLite`'s
registry in the exposition format (v0.0.4 text), so the simulated
platform's metrics are inspectable with standard tooling expectations:

    gateway_function_invocation_total{function="markdown"} 42
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.faas.openfaas.prometheus import PrometheusLite


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in labels
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def render_exposition(prom: PrometheusLite) -> str:
    """Render every series in the registry, counters then gauges.

    Series are grouped per metric with a ``# TYPE`` line, sorted for
    deterministic output.
    """
    sections: List[str] = []
    for store, metric_type in ((prom._counters, "counter"),
                               (prom._gauges, "gauge")):
        by_metric: Dict[str, List[str]] = {}
        for (name, labels), value in store.items():
            line = f"{name}{_format_labels(labels)} {_format_value(value)}"
            by_metric.setdefault(name, []).append(line)
        for name in sorted(by_metric):
            sections.append(f"# TYPE {name} {metric_type}")
            sections.extend(sorted(by_metric[name]))
    return "\n".join(sections) + ("\n" if sections else "")


def parse_exposition(text: str) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Parse exposition text back into {metric: {labelset: value}}.

    Supports the subset :func:`render_exposition` emits (no escapes in
    label names, one series per line). Used by tests and by experiment
    tooling that scrapes the simulated gateway.
    """
    out: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        series, _, value_text = line.rpartition(" ")
        if not series:
            raise ValueError(f"malformed exposition line {raw!r}")
        if "{" in series:
            name, _, label_blob = series.partition("{")
            if not label_blob.endswith("}"):
                raise ValueError(f"malformed label set in {raw!r}")
            labels = []
            blob = label_blob[:-1]
            if blob:
                for pair in blob.split(","):
                    key, _, quoted = pair.partition("=")
                    if not (quoted.startswith('"') and quoted.endswith('"')):
                        raise ValueError(f"malformed label value in {raw!r}")
                    labels.append((key, quoted[1:-1]
                                   .replace('\\"', '"')
                                   .replace("\\n", "\n")
                                   .replace("\\\\", "\\")))
            labelset = tuple(sorted(labels))
        else:
            name, labelset = series, ()
        try:
            value = float(value_text)
        except ValueError:
            raise ValueError(f"bad sample value in {raw!r}") from None
        out.setdefault(name, {})[labelset] = value
    return out
