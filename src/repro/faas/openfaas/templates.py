"""OpenFaaS templates, including the paper's CRIU variants (§5.2).

"A template hides setup complexity from users ... There are templates
for languages like Go, Python, Java, PHP, and C#. To spin off a
prebaked function, we need to create a template that adds all CRIU
dependencies and executes CRIU commands. As CRIU uses different
commands to start processes in different runtimes, we created a new
CRIU-version template for each language that we wanted to support."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.policy import AfterReady, AfterWarmup, SnapshotPolicy


class TemplateError(Exception):
    """Unknown template or invalid template definition."""


@dataclass(frozen=True)
class Template:
    """A function project template."""

    name: str
    language: str
    runtime_kind: str                # which ManagedRuntime hosts it
    criu_enabled: bool = False
    base_image: str = "openfaas/of-watchdog:0.8"
    # CRIU templates may carry a post-processing (warm-up) script.
    warmup_requests: int = 0
    extra_packages: tuple = ()

    def snapshot_policy(self) -> SnapshotPolicy:
        if not self.criu_enabled:
            raise TemplateError(f"template {self.name!r} is not a CRIU template")
        if self.warmup_requests > 0:
            return AfterWarmup(requests=self.warmup_requests)
        return AfterReady()


_BUILTIN = [
    Template(name="java8", language="java", runtime_kind="jvm"),
    Template(name="python3", language="python", runtime_kind="python"),
    Template(name="node12", language="javascript", runtime_kind="nodejs"),
    Template(name="java8-criu", language="java", runtime_kind="jvm",
             criu_enabled=True, extra_packages=("criu", "iproute2")),
    Template(name="java8-criu-warm", language="java", runtime_kind="jvm",
             criu_enabled=True, warmup_requests=1,
             extra_packages=("criu", "iproute2")),
    Template(name="python3-criu", language="python", runtime_kind="python",
             criu_enabled=True, extra_packages=("criu",)),
    Template(name="node12-criu", language="javascript", runtime_kind="nodejs",
             criu_enabled=True, extra_packages=("criu",)),
]


class TemplateStore:
    """The template repository ``faas-cli new`` copies from."""

    def __init__(self, templates: Optional[List[Template]] = None) -> None:
        self._templates: Dict[str, Template] = {}
        for template in templates if templates is not None else _BUILTIN:
            self.add(template)

    def add(self, template: Template) -> None:
        if template.name in self._templates:
            raise TemplateError(f"duplicate template {template.name!r}")
        self._templates[template.name] = template

    def get(self, name: str) -> Template:
        template = self._templates.get(name)
        if template is None:
            raise TemplateError(
                f"no template {name!r}; available: {sorted(self._templates)}"
            )
        return template

    def names(self) -> List[str]:
        return sorted(self._templates)

    def criu_templates(self) -> List[Template]:
        return [t for t in self._templates.values() if t.criu_enabled]
