"""One-call wiring of the full OpenFaaS stack (used by examples/tests)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bake import Prebaker
from repro.core.store import SnapshotStore
from repro.faas.openfaas.cli import FaasCli
from repro.faas.openfaas.gateway import Gateway
from repro.faas.openfaas.imagerepo import ImageRepository
from repro.faas.openfaas.prometheus import PrometheusLite
from repro.faas.openfaas.providers import (
    DockerSwarmProvider,
    FaasProvider,
    KubernetesProvider,
)
from repro.faas.openfaas.templates import TemplateStore
from repro.faas.resources import ComputeNode, ResourceManager
from repro.osproc.kernel import Kernel


@dataclass
class OpenFaasStack:
    """All the §5 components, wired."""

    kernel: Kernel
    resources: ResourceManager
    provider: FaasProvider
    templates: TemplateStore
    snapshot_store: SnapshotStore
    prebaker: Prebaker
    image_repo: ImageRepository
    prometheus: PrometheusLite
    gateway: Gateway
    cli: FaasCli


def make_openfaas_stack(
    kernel: Kernel,
    provider_name: str = "kubernetes",
    buildx_installed: bool = True,
    nodes: int = 2,
    node_memory_mib: float = 8192.0,
    allow_unprivileged_cr: bool = False,
) -> OpenFaasStack:
    """Build a complete OpenFaaS deployment on top of ``kernel``."""
    resources = ResourceManager(
        nodes=[ComputeNode(name=f"node-{i}", memory_mib=node_memory_mib)
               for i in range(nodes)]
    )
    if provider_name == "kubernetes":
        provider: FaasProvider = KubernetesProvider(resources)
    elif provider_name == "dockerswarm":
        provider = DockerSwarmProvider(resources,
                                       allow_unprivileged_cr=allow_unprivileged_cr)
    else:
        raise ValueError(f"unknown provider {provider_name!r}")
    templates = TemplateStore()
    snapshot_store = SnapshotStore()
    prebaker = Prebaker(kernel, snapshot_store)
    image_repo = ImageRepository()
    # When the world has a telemetry hub, Prometheus rules evaluate
    # against the same registry the obs instrumentation writes to.
    registry = kernel.obs.metrics if kernel.obs is not None else None
    prometheus = PrometheusLite(registry=registry)
    gateway = Gateway(kernel, provider, image_repo, snapshot_store,
                      prometheus=prometheus)
    cli = FaasCli(kernel, templates, prebaker, image_repo, gateway,
                  buildx_installed=buildx_installed)
    return OpenFaasStack(
        kernel=kernel,
        resources=resources,
        provider=provider,
        templates=templates,
        snapshot_store=snapshot_store,
        prebaker=prebaker,
        image_repo=image_repo,
        prometheus=prometheus,
        gateway=gateway,
        cli=cli,
    )
