"""Container Image Repository — OpenFaaS's Function Registry (§5.1).

"push: stores the function deployable artifacts into the Function
Registry which is a Container Image Repository."

Like a real OCI registry, blobs are content-addressed: a push uploads
only the layers whose digest the registry does not already hold, so
``physical_bytes`` (distinct blobs) grows sublinearly in image count
when images share layers — the base and criu-deps layers dedup across
every function, snapshot layers dedup only when byte-identical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.faas.openfaas.containers import ContainerImage, ImageLayer


class ImageNotFound(KeyError):
    """Pull of an unknown image reference."""


class ImageRepository:
    """A name:tag → image store with content-addressed blob accounting."""

    def __init__(self) -> None:
        self._images: Dict[str, ContainerImage] = {}
        self._pulls: Dict[str, int] = {}
        self._blobs: Dict[str, ImageLayer] = {}   # digest -> one stored copy
        self.pushed_bytes = 0      # bytes actually uploaded by pushes
        self.deduped_bytes = 0     # bytes skipped because the blob existed

    def push(self, image: ContainerImage) -> int:
        """Store an image; returns the bytes actually uploaded.

        Layers whose blob digest is already present are not re-sent —
        the registry-side "layer already exists" fast path.
        """
        uploaded = 0
        for layer in image.layers:
            digest = layer.blob_digest
            if digest in self._blobs:
                self.deduped_bytes += layer.size_bytes
            else:
                self._blobs[digest] = layer
                uploaded += layer.size_bytes
        self.pushed_bytes += uploaded
        self._images[image.reference] = image
        return uploaded

    def pull(self, reference: str,
             node_cache: Optional[Set[str]] = None) -> ContainerImage:
        """Fetch an image; with ``node_cache`` (a set of blob digests
        the puller already holds) only missing layers count as
        transferred, and the cache is updated in place."""
        image = self._images.get(reference)
        if image is None:
            raise ImageNotFound(
                f"no image {reference!r}; repository holds {sorted(self._images)}"
            )
        self._pulls[reference] = self._pulls.get(reference, 0) + 1
        if node_cache is not None:
            node_cache.update(l.blob_digest for l in image.layers)
        return image

    def pull_bytes(self, reference: str,
                   node_cache: Optional[Set[str]] = None) -> int:
        """Bytes a pull of ``reference`` would transfer for this cache."""
        image = self._images.get(reference)
        if image is None:
            raise ImageNotFound(f"no image {reference!r}")
        cache = node_cache or set()
        return sum(l.size_bytes for l in image.layers
                   if l.blob_digest not in cache)

    def contains(self, reference: str) -> bool:
        return reference in self._images

    def pull_count(self, reference: str) -> int:
        return self._pulls.get(reference, 0)

    def references(self) -> List[str]:
        return sorted(self._images)

    @property
    def total_bytes(self) -> int:
        """Logical bytes: every image's layers counted per image."""
        return sum(i.total_bytes for i in self._images.values())

    @property
    def physical_bytes(self) -> int:
        """Distinct blob bytes actually stored."""
        return sum(l.size_bytes for l in self._blobs.values())

    @property
    def dedup_ratio(self) -> float:
        physical = self.physical_bytes
        return self.total_bytes / physical if physical else 1.0

    @property
    def blob_count(self) -> int:
        return len(self._blobs)
