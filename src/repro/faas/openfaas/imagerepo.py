"""Container Image Repository — OpenFaaS's Function Registry (§5.1).

"push: stores the function deployable artifacts into the Function
Registry which is a Container Image Repository."
"""

from __future__ import annotations

from typing import Dict, List

from repro.faas.openfaas.containers import ContainerImage


class ImageNotFound(KeyError):
    """Pull of an unknown image reference."""


class ImageRepository:
    """A name:tag → image store with pull accounting."""

    def __init__(self) -> None:
        self._images: Dict[str, ContainerImage] = {}
        self._pulls: Dict[str, int] = {}

    def push(self, image: ContainerImage) -> None:
        self._images[image.reference] = image

    def pull(self, reference: str) -> ContainerImage:
        image = self._images.get(reference)
        if image is None:
            raise ImageNotFound(
                f"no image {reference!r}; repository holds {sorted(self._images)}"
            )
        self._pulls[reference] = self._pulls.get(reference, 0) + 1
        return image

    def contains(self, reference: str) -> bool:
        return reference in self._images

    def pull_count(self, reference: str) -> int:
        return self._pulls.get(reference, 0)

    def references(self) -> List[str]:
        return sorted(self._images)

    @property
    def total_bytes(self) -> int:
        return sum(i.total_bytes for i in self._images.values())
