"""The OpenFaaS watchdog (§5.1).

"The function Watchdog is the component responsible for managing and
monitoring the function replica lifecycle. Furthermore, it is a
communication interface between the platform API and the replica
process." One watchdog process runs per container; it starts the
function process (fork-exec, or CRIU restore for prebaked images) and
proxies requests to it.
"""

from __future__ import annotations

from typing import Optional

from repro.core.starters import ReplicaHandle, Starter
from repro.functions.base import FunctionApp
from repro.osproc.kernel import Kernel
from repro.osproc.process import Capability, Process
from repro.runtime.base import Request, Response


class WatchdogError(Exception):
    """Watchdog lifecycle failure."""


class Watchdog:
    """Per-container supervisor for one function process."""

    BINARY = "/usr/bin/fwatchdog"

    def __init__(self, kernel: Kernel, privileged: bool = False,
                 checkpoint_restore: bool = False) -> None:
        self.kernel = kernel
        kernel.fs.ensure(self.BINARY, size=6 * 1024 * 1024)
        # A container process starts with an empty capability set; the
        # runtime grants capabilities per the container's security
        # options.
        self.process = kernel.clone(kernel.init_process, comm="fwatchdog",
                                    inherit_capabilities=False)
        kernel.execve(self.process, self.BINARY, argv=["fwatchdog"])
        if privileged:
            # --privileged grants everything, including what criu
            # restore needs.
            self.process.capabilities.add(Capability.SYS_ADMIN)
        if checkpoint_restore:
            # Linux >= 5.9 CAP_CHECKPOINT_RESTORE [11]: restore without
            # full privilege.
            self.process.capabilities.add(Capability.CHECKPOINT_RESTORE)
        self.handle: Optional[ReplicaHandle] = None
        self.health_checks = 0

    def start_function(self, starter: Starter, app: FunctionApp) -> ReplicaHandle:
        """Launch the function process as a child of the watchdog."""
        if self.handle is not None:
            raise WatchdogError("watchdog already supervises a function process")
        self.handle = starter.start(app, parent=self.process)
        return self.handle

    def forward(self, request: Optional[Request] = None) -> Response:
        """Proxy one request to the supervised function process."""
        if self.handle is None:
            raise WatchdogError("no function process started")
        return self.handle.invoke(request)

    def healthy(self) -> bool:
        """The /_/health endpoint."""
        self.health_checks += 1
        return self.handle is not None and self.handle.process.alive

    def shutdown(self) -> None:
        if self.handle is not None:
            self.handle.kill()
            self.handle = None
        self.kernel.kill(self.process.pid)
