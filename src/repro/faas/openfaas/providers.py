"""FaaS providers: the orchestrator abstraction (§5.1).

"Instead of directly executing operations ... the API Gateway
delegates it to the FaaS-Provider. This indirection abstract details
about different container orchestration mechanisms and tools.
Currently, the FaaS-Provider has implementations for Kubernetes and
DockerSwarm integration."

Both providers here schedule containers onto the shared
:class:`~repro.faas.resources.ResourceManager` and honour the
``--privileged`` requirement the restore operation carries: "the
restore operation is privileged. The docker run command already
supports this functionality by starting the container using the
--privileged option. As Kubernetes already support this behavior, we
only needed to introduce it in the FaaS-Provider implementation" (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.faas.openfaas.containers import Container, ContainerImage
from repro.faas.resources import Allocation, ResourceManager


class ProviderError(Exception):
    """Scheduling / provider configuration failure."""


@dataclass
class ScheduledContainer:
    """A container plus its placement."""

    container: Container
    allocation: Allocation
    service: str

    def remove(self) -> None:
        self.container.stop()
        self.allocation.release()


class FaasProvider:
    """Provider interface the Gateway drives."""

    name = "abstract"
    supports_privileged = False

    def __init__(self, resources: ResourceManager) -> None:
        self.resources = resources
        self._services: Dict[str, List[ScheduledContainer]] = {}

    # -- operations -------------------------------------------------------------

    def run_container(self, service: str, image: ContainerImage,
                      memory_mib: float, privileged: bool = False) -> ScheduledContainer:
        if privileged and not self.supports_privileged:
            raise ProviderError(
                f"provider {self.name!r} cannot run privileged containers; "
                "prebaked (CRIU-restore) functions require --privileged"
            )
        if image.requires_privileged and not privileged:
            raise ProviderError(
                f"image {image.reference!r} carries a CRIU snapshot and must "
                "be run with privileged=True"
            )
        allocation = self.resources.place(service, memory_mib, privileged=privileged)
        scheduled = ScheduledContainer(
            container=Container(image=image, privileged=privileged),
            allocation=allocation,
            service=service,
        )
        self._services.setdefault(service, []).append(scheduled)
        return scheduled

    def remove_service(self, service: str) -> int:
        containers = self._services.pop(service, [])
        for scheduled in containers:
            scheduled.remove()
        return len(containers)

    def service_containers(self, service: str) -> List[ScheduledContainer]:
        live = [s for s in self._services.get(service, []) if s.container.running]
        self._services[service] = live
        return live

    def services(self) -> List[str]:
        return sorted(name for name, lst in self._services.items() if lst)


class KubernetesProvider(FaasProvider):
    """faas-netes-style provider (privileged via SecurityContext)."""

    name = "kubernetes"
    supports_privileged = True


class DockerSwarmProvider(FaasProvider):
    """Docker Swarm provider.

    Swarm services historically cannot run privileged containers, which
    is exactly the integration wrinkle the paper calls out — prebaked
    functions need the Kubernetes provider (or CRIU's unprivileged mode,
    see ``allow_unprivileged_cr``).
    """

    name = "dockerswarm"
    supports_privileged = False

    def __init__(self, resources: ResourceManager,
                 allow_unprivileged_cr: bool = False) -> None:
        super().__init__(resources)
        # Kernels with CAP_CHECKPOINT_RESTORE (Linux >= 5.9 [11]) let
        # criu restore without full privilege.
        self.supports_privileged = False
        self.allow_unprivileged_cr = allow_unprivileged_cr

    def run_container(self, service: str, image: ContainerImage,
                      memory_mib: float, privileged: bool = False) -> ScheduledContainer:
        if image.requires_privileged and self.allow_unprivileged_cr:
            # CAP_CHECKPOINT_RESTORE removes the --privileged requirement.
            image = ContainerImage(
                repository=image.repository,
                tag=image.tag,
                layers=image.layers,
                snapshot_key=image.snapshot_key,
                requires_privileged=False,
            )
        return super().run_container(service, image, memory_mib, privileged=privileged)
