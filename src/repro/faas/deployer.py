"""Function Deployer: provisions new Function Replicas (paper §2).

"The Function Deployer drives the actual deploy mechanisms,
implemented by the Resource Orchestration layer, to deploy new function
replicas into computing resources."
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro import obs
from repro.core.manager import PrebakeManager
from repro.core.store import SnapshotKey
from repro.criu.chunkcache import HotChunkCache, make_cache
from repro.faas.registry import FunctionMetadata, FunctionRegistry
from repro.faas.replica import FunctionReplica, ReplicaState
from repro.faas.resources import ResourceManager
from repro.faults.errors import CapacityExhausted
from repro.obs.fleet import SpaceSavingSketch
from repro.osproc.cgroups import CgroupManager
from repro.osproc.kernel import Kernel


class FunctionDeployer:
    """Creates and tracks replicas per function."""

    def __init__(
        self,
        kernel: Kernel,
        registry: FunctionRegistry,
        resources: ResourceManager,
        prebake_manager: PrebakeManager,
        shard_store=None,
    ) -> None:
        self.kernel = kernel
        self.registry = registry
        self.resources = resources
        self.prebake_manager = prebake_manager
        # Optional sharded snapshot store: restores fetch chunk
        # windows through quorum reads over its storage nodes, and
        # placement gains a chunk-locality hint (None = flat registry).
        self.shard_store = shard_store
        self.cgroups = CgroupManager(kernel)
        self._replicas: Dict[str, List[FunctionReplica]] = {}
        # Per-node hot-chunk cache: a replica landing on a node that
        # has the function's (or a sibling's) layers pulls only the
        # missing chunks, like any OCI runtime — but bounded, with a
        # real admission/eviction policy instead of an unbounded set.
        self._node_chunk_cache: Dict[str, HotChunkCache] = {}
        # Eviction count already exported per node, so the counter
        # below emits deltas rather than re-counting the total.
        self._evictions_exported: Dict[str, int] = {}
        # Cross-function chunk-heat ranking (Space-Saving heavy
        # hitters over every layer pull): predictive prefetch pushes
        # a function's hottest chunks first, so a tight budget still
        # lands the bytes most likely to be re-read.
        self.chunk_sketch = SpaceSavingSketch(capacity=512)

    # -- provisioning --------------------------------------------------------------

    def provision(self, function: str) -> FunctionReplica:
        """Create one new replica of ``function`` (the cold-start path)."""
        metadata = self.registry.lookup(function)
        live = self.replicas(function)
        if len(live) >= metadata.max_replicas:
            raise CapacityExhausted(
                f"function {function!r} at max_replicas={metadata.max_replicas}",
                function=function, max_replicas=metadata.max_replicas,
            )
        app = metadata.make_app()
        # Reserve node memory for the container hosting the replica.
        memory_mib = max(64.0, app.profile.snapshot_warm_mib * 2)
        privileged = metadata.start_technique == "prebake"
        with obs.span(self.kernel, "deployer.provision", function=function,
                      technique=metadata.start_technique,
                      memory_mib=memory_mib) as provision_span:
            allocation = self.resources.place(
                function, memory_mib, privileged=privileged,
                prefer=self._locality_hint(metadata))
            # Fleet stitching: the provision span carries the compute
            # node's identity, so a cross-node trace names every hop.
            provision_span.set(node_id=allocation.node.name)
            self._account_placement_locality(metadata, allocation.node.name)

            # Container/VM provisioning cost — zero in the paper's §4
            # experiments, configurable for the §5 integration demos.
            provision_ms = self.kernel.costs.container_provision_ms
            if provision_ms:
                self.kernel.clock.advance(
                    self.kernel.costs.jitter(provision_ms, self.kernel.streams,
                                             "deployer.provision")
                )
            if metadata.start_technique == "prebake" \
                    and self.shard_store is not None:
                self._ensure_sharded(metadata)
            try:
                starter = self.prebake_manager.starter(
                    metadata.start_technique,
                    policy=metadata.snapshot_policy,
                    restore_mode=metadata.restore_mode,
                    version=metadata.version,
                    pipeline_workers=metadata.pipeline_workers,
                    chunk_cache=self._restore_cache(allocation.node.name,
                                                    metadata),
                    shard_store=self.shard_store,
                )
                handle = starter.start(app)
            except Exception:
                allocation.release()
                raise
            if metadata.start_technique == "prebake":
                self._account_layer_pull(metadata, allocation.node.name)
            # Confine the replica to a memory cgroup sized like its
            # container reservation (the OOM boundary in production).
            cgroup = self.cgroups.create(
                f"{function}/alloc-{allocation.allocation_id}",
                limit_mib=memory_mib,
            )
            cgroup.attach(handle.process)
            replica = FunctionReplica(function, handle, allocation=allocation,
                                      cgroup=cgroup)
            provision_span.set(replica_id=replica.replica_id)
        self._replicas.setdefault(function, []).append(replica)
        obs.record(self.kernel, obs.flight.REPLICA_PROVISIONED,
                   function=function, replica_id=replica.replica_id,
                   technique=metadata.start_technique,
                   node=allocation.node.name)
        obs.count(self.kernel, "deployer_provision_total",
                  labels={"function": function,
                          "technique": metadata.start_technique})
        obs.gauge(self.kernel, "deployer_replicas",
                  float(len(self._replicas[function])),
                  labels={"function": function})
        return replica

    def node_cache(self, node_name: str) -> HotChunkCache:
        """The node's hot-chunk cache (created on first use)."""
        cache = self._node_chunk_cache.get(node_name)
        if cache is None:
            cache = HotChunkCache()
            self._node_chunk_cache[node_name] = cache
        return cache

    def _restore_cache(self, node_name: str,
                       metadata: FunctionMetadata) -> Optional[HotChunkCache]:
        """The cache the restore engine should consult, or None.

        Functions opt in per-deployment via ``metadata.cache_policy``;
        opted-in replicas share the node's cache, so a restore landing
        where a sibling recently restored skips the warm chunks. The
        first opt-in on a node fixes the node's policy.
        """
        if metadata.start_technique != "prebake":
            return None
        if make_cache(metadata.cache_policy) is None:
            return None
        cache = self._node_chunk_cache.get(node_name)
        if cache is None:
            cache = HotChunkCache(policy=metadata.cache_policy)
            self._node_chunk_cache[node_name] = cache
        return cache

    def _snapshot_key(self, metadata: FunctionMetadata) -> SnapshotKey:
        return SnapshotKey(
            function=metadata.name,
            runtime_kind=metadata.runtime_kind,
            policy=metadata.snapshot_policy.key,
            version=metadata.version,
        )

    def _ensure_sharded(self, metadata: FunctionMetadata) -> None:
        """Place the function's snapshot on the sharded store's nodes.

        Normally done at build time by the platform; this lazy check
        covers rebakes and externally baked versions, and is a cheap
        no-op once the image is registered.
        """
        layered = self.prebake_manager.store.layered(
            self._snapshot_key(metadata))
        if layered is None or self.shard_store.has_image(layered.image_id):
            return
        merkle = self.prebake_manager.store.merkle(
            self._snapshot_key(metadata))
        self.shard_store.register_image(layered, merkle=merkle)

    def _locality_hint(self, metadata: FunctionMetadata) -> Optional[str]:
        """Preferred node for chunk locality (sharded clusters only).

        The node whose hot-chunk cache holds the most bytes of the
        function's layer manifest — a restore landing there pulls the
        fewest cold windows. None (worst-fit unchanged) outside
        shard-store clusters, so legacy placement stays byte-identical.
        """
        if self.shard_store is None \
                or metadata.start_technique != "prebake" \
                or not self._node_chunk_cache:
            return None
        layered = self.prebake_manager.store.layered(
            self._snapshot_key(metadata))
        if layered is None:
            return None
        best_name: Optional[str] = None
        best_bytes = 0
        for node_name in sorted(self._node_chunk_cache):
            cache = self._node_chunk_cache[node_name]
            cached = sum(ref.size_bytes for ref in layered.chunk_refs
                         if cache.contains(ref.chunk_id))
            if cached > best_bytes:
                best_name, best_bytes = node_name, cached
        if best_name is not None:
            obs.count(self.kernel, "deployer_locality_hint_total",
                      labels={"function": metadata.name, "node": best_name})
        return best_name

    def _account_placement_locality(self, metadata: FunctionMetadata,
                                    node_name: str) -> None:
        """Score the placement the deployer just committed to.

        Measured against the chosen node's hot-chunk cache *before*
        the restore admits this image's chunks: a cold start landing
        on a node whose cache holds a minority (<50%) of the image's
        manifest bytes is a locality miss — the hint either lost to
        capacity pressure or had nothing warm to offer. Feeds the
        ``locality-miss-rate`` anomaly watch and the fleet report.
        Sharded prebake clusters only; legacy worlds emit nothing.
        """
        if self.shard_store is None or metadata.start_technique != "prebake":
            return
        layered = self.prebake_manager.store.layered(
            self._snapshot_key(metadata))
        if layered is None:
            return
        cache = self._node_chunk_cache.get(node_name)
        total = cached = 0
        for ref in layered.chunk_refs:
            total += ref.size_bytes
            if cache is not None and cache.contains(ref.chunk_id):
                cached += ref.size_bytes
        labels = {"function": metadata.name, "node": node_name}
        obs.count(self.kernel, "deployer_cold_placement_total",
                  labels=labels)
        if total and cached * 2 < total:
            obs.count(self.kernel, "deployer_locality_miss_total",
                      labels=labels)

    def _account_layer_pull(self, metadata: FunctionMetadata,
                            node_name: str) -> None:
        """Account the snapshot layer bytes this provision moved.

        Pure byte accounting (transfer time is part of the container
        provision cost): chunks the node's hot-chunk cache already
        holds — from a previous replica of this function or any
        function sharing its runtime base — are not re-pulled.
        """
        layered = self.prebake_manager.store.layered(
            self._snapshot_key(metadata))
        if layered is None:
            return
        cache = self.node_cache(node_name)
        pulled = cached = 0
        for ref in layered.chunk_refs:
            self.chunk_sketch.offer(ref.chunk_id)
            if cache.lookup(ref.chunk_id, ref.size_bytes):
                cached += ref.size_bytes
            else:
                pulled += ref.size_bytes
        labels = {"function": metadata.name}
        obs.count(self.kernel, "deployer_layer_bytes_pulled_total",
                  value=float(pulled), labels=labels)
        obs.count(self.kernel, "deployer_layer_bytes_cached_total",
                  value=float(cached), labels=labels)
        obs.gauge(self.kernel, "deployer_node_cache_used_bytes",
                  float(cache.used_bytes), labels={"node": node_name})
        obs.gauge(self.kernel, "deployer_node_cache_hit_ratio",
                  cache.stats.hit_ratio, labels={"node": node_name})
        # Counters are cumulative, the cache's eviction stat is too —
        # export only the evictions since the last pull on this node.
        evictions = cache.stats.evictions
        delta = evictions - self._evictions_exported.get(node_name, 0)
        if delta > 0:
            obs.count(self.kernel, "deployer_node_cache_eviction_total",
                      value=float(delta), labels={"node": node_name})
        self._evictions_exported[node_name] = evictions

    def prefetch_function(self, function: str,
                          node_name: Optional[str] = None,
                          budget_bytes: Optional[int] = None) -> int:
        """Push a function's hot working-set chunks into a node cache.

        The predictive prewarm path: when the forecaster expects a
        burst, pre-placing the image's chunks means even a mispredicted
        replica count still lands on a warm cache — the restore pays
        node-local reads instead of registry fetches. Chunks are
        ranked by the deployer-wide Space-Saving heat sketch (hottest
        first, chunk id as the deterministic tie-break) and admitted
        through the cache's normal policy under ``budget_bytes``.

        Returns the number of bytes newly admitted. No-op (0) for
        non-prebake functions, functions without a cache policy, and
        clusters with no nodes.
        """
        metadata = self.registry.lookup(function)
        if metadata.start_technique != "prebake":
            return 0
        layered = self.prebake_manager.store.layered(
            self._snapshot_key(metadata))
        if layered is None or not layered.chunk_refs:
            return 0
        if node_name is None:
            node_name = self._locality_hint(metadata)
        if node_name is None:
            if not self.resources.nodes:
                return 0
            node_name = self.resources.nodes[0].name
        cache = self._restore_cache(node_name, metadata)
        if cache is None:
            return 0
        heat = {key: count
                for key, count, _ in self.chunk_sketch.top(512)}
        ranked = sorted(
            layered.chunk_refs,
            key=lambda ref: (-heat.get(ref.chunk_id, 0.0), ref.chunk_id))
        budget = (budget_bytes if budget_bytes is not None
                  else cache.capacity_bytes)
        admitted_bytes = 0
        admitted_chunks = 0
        for ref in ranked:
            if cache.contains(ref.chunk_id):
                continue
            if admitted_bytes + ref.size_bytes > budget:
                continue
            if cache.prefetch(ref.chunk_id, ref.size_bytes):
                admitted_bytes += ref.size_bytes
                admitted_chunks += 1
        if admitted_chunks:
            obs.record(self.kernel, obs.flight.PREWARM_PREFETCH,
                       function=function, node=node_name,
                       chunks=admitted_chunks, bytes=admitted_bytes)
            obs.count(self.kernel, "deployer_prefetch_bytes_total",
                      value=float(admitted_bytes),
                      labels={"function": function})
            obs.count(self.kernel, "deployer_prefetch_chunks_total",
                      value=float(admitted_chunks),
                      labels={"function": function})
        return admitted_bytes

    # -- bookkeeping -----------------------------------------------------------------

    def replicas(self, function: str) -> List[FunctionReplica]:
        live = [r for r in self._replicas.get(function, [])
                if r.state is not ReplicaState.TERMINATED]
        self._replicas[function] = live
        return live

    def idle_replica(self, function: str) -> Optional[FunctionReplica]:
        for replica in self.replicas(function):
            if replica.state is ReplicaState.IDLE:
                return replica
        return None

    def health_check(self, function: Optional[str] = None) -> List[FunctionReplica]:
        """Reap replicas whose backing process died under the platform.

        Crashed replicas (injected ``replica.crash``/``oom.kill``
        faults, or anything else that killed the process without going
        through :meth:`FunctionReplica.terminate`) are detected by
        liveness, terminated for bookkeeping — releasing their node
        memory — and returned so callers can re-provision.
        """
        reaped: List[FunctionReplica] = []
        names = [function] if function is not None else list(self._replicas)
        for name in names:
            dead = [r for r in self._replicas.get(name, [])
                    if r.state is not ReplicaState.TERMINATED
                    and not r.handle.process.alive]
            for replica in dead:
                replica.terminate()
                reaped.append(replica)
                obs.record(self.kernel, obs.flight.REPLICA_REAPED,
                           function=name, replica_id=replica.replica_id)
                obs.count(self.kernel, "deployer_reaped_total",
                          labels={"function": name})
            if dead:
                # Prune terminated entries and republish the live gauge.
                obs.gauge(self.kernel, "deployer_replicas",
                          float(len(self.replicas(name))),
                          labels={"function": name})
        return reaped

    def scale_down(self, function: str, count: int = 1) -> int:
        """Terminate up to ``count`` idle replicas; return how many died."""
        killed = 0
        for replica in list(self.replicas(function)):
            if killed >= count:
                break
            if replica.state is ReplicaState.IDLE:
                replica.terminate()
                killed += 1
        return killed

    def terminate_all(self, function: Optional[str] = None) -> None:
        names = [function] if function else list(self._replicas)
        for name in names:
            for replica in self.replicas(name):
                replica.terminate()
