"""Concurrent cluster simulation on the discrete-event engine.

The sequential router (:mod:`repro.faas.router`) reproduces the paper's
single-replica measurements; scale-out behaviour — "if a replica is
busy and a new request arrives, the platform starts another replica to
do the job" (§4.1) — needs real concurrency: overlapping cold starts,
queueing at the replica cap, idle-timeout GC racing arrivals. This
module models that with coroutine processes over
:class:`~repro.sim.engine.Simulation`.

Start-up and service durations are drawn from the calibrated substrate
via :class:`LatencySampler` (each sample is measured in a scratch
world, so the distributions are exactly those of the paper
experiments), then replayed as event delays so any number can overlap
in virtual time.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.bench.harness import run_service_experiment, run_startup_experiment
from repro.core.policy import AfterReady, SnapshotPolicy
from repro.sim.engine import Simulation
from repro.sim.events import Signal
from repro.sim.rng import RandomStreams, _derive_seed


class LatencySampler:
    """Seeded pools of start-up/service durations for one treatment."""

    def __init__(
        self,
        function: str,
        technique: str,
        policy: Optional[SnapshotPolicy] = None,
        seed: int = 42,
        pool_size: int = 48,
    ) -> None:
        policy = policy or AfterReady()
        startup = run_startup_experiment(
            function, technique, policy=policy,
            repetitions=pool_size, seed=seed, metric="ready",
        )
        service = run_service_experiment(
            function, technique, policy=policy,
            requests=pool_size, seed=seed,
        )
        self.function = function
        self.technique = technique
        self._startups = startup.values
        self._services = service.service_times_ms
        self._rng = RandomStreams(_derive_seed(seed, f"sampler-{technique}"))

    def startup_ms(self) -> float:
        return self._rng.choice("startup", self._startups)

    def service_ms(self) -> float:
        return self._rng.choice("service", self._services)

    @property
    def median_startup_ms(self) -> float:
        ordered = sorted(self._startups)
        return ordered[len(ordered) // 2]


@dataclass
class RequestRecord:
    """Timeline of one request through the cluster."""

    request_id: int
    arrival_ms: float
    dispatched_ms: float = 0.0
    finished_ms: float = 0.0
    cold_start: bool = False
    queued_for_replica: bool = False

    @property
    def wait_ms(self) -> float:
        return self.dispatched_ms - self.arrival_ms

    @property
    def total_ms(self) -> float:
        return self.finished_ms - self.arrival_ms


@dataclass
class ClusterMetrics:
    """Aggregate telemetry of one simulation run."""

    records: List[RequestRecord] = field(default_factory=list)
    cold_starts: int = 0
    peak_replicas: int = 0
    gc_kills: int = 0

    def wait_quantile(self, q: float) -> float:
        from repro.bench.stats import quantile
        waits = [r.wait_ms for r in self.records]
        return quantile(waits, q) if waits else 0.0

    @property
    def makespan_ms(self) -> float:
        if not self.records:
            return 0.0
        return (max(r.finished_ms for r in self.records)
                - min(r.arrival_ms for r in self.records))


class _Replica:
    _ids = itertools.count(1)

    def __init__(self) -> None:
        self.replica_id = next(self._ids)
        self.busy = False
        self.last_used_ms = 0.0
        self.dead = False


class SimulatedCluster:
    """Concurrent replica pool driven by coroutine processes."""

    def __init__(
        self,
        sim: Simulation,
        sampler: LatencySampler,
        max_replicas: int = 16,
        idle_timeout_ms: float = 60_000.0,
    ) -> None:
        if max_replicas < 1:
            raise ValueError(f"max_replicas must be >= 1, got {max_replicas}")
        self.sim = sim
        self.sampler = sampler
        self.max_replicas = max_replicas
        self.idle_timeout_ms = idle_timeout_ms
        self.metrics = ClusterMetrics()
        self._idle: List[_Replica] = []
        self._replicas: List[_Replica] = []
        self._waiters: Deque[Signal] = deque()
        self._request_ids = itertools.count(1)

    # -- public API ---------------------------------------------------------------

    def submit_trace(self, arrivals: List[float]) -> None:
        """Schedule one request process per arrival timestamp.

        Bulk-scheduled: one heapify instead of a heap push per arrival,
        which matters for trace-driven studies injecting hundreds of
        thousands of requests up front.
        """
        start_request = self._start_request
        self.sim.schedule_many(
            ((arrival, start_request) for arrival in arrivals),
            label="cluster-arrival",
        )

    def run(self) -> ClusterMetrics:
        """Run the simulation to completion and return the telemetry."""
        self.sim.run()
        return self.metrics

    @property
    def live_replicas(self) -> int:
        return sum(1 for r in self._replicas if not r.dead)

    # -- internals -------------------------------------------------------------------

    def _start_request(self) -> None:
        record = RequestRecord(
            request_id=next(self._request_ids),
            arrival_ms=self.sim.now,
        )
        self.metrics.records.append(record)
        self.sim.spawn(self._request_proc(record),
                       name=f"request-{record.request_id}")

    def _request_proc(self, record: RequestRecord):
        replica = self._acquire_idle()
        if replica is None:
            if self.live_replicas < self.max_replicas:
                # Cold start: this request waits for its own replica.
                record.cold_start = True
                self.metrics.cold_starts += 1
                replica = self._provision_placeholder()
                yield self.sampler.startup_ms()
            else:
                # At the cap: queue until some replica frees up.
                record.queued_for_replica = True
                gate = Signal(f"wait-{record.request_id}")
                self._waiters.append(gate)
                replica = yield gate
        record.dispatched_ms = self.sim.now
        replica.busy = True
        yield self.sampler.service_ms()
        record.finished_ms = self.sim.now
        self._release(replica)

    def _acquire_idle(self) -> Optional[_Replica]:
        while self._idle:
            replica = self._idle.pop()
            if not replica.dead:
                return replica
        return None

    def _provision_placeholder(self) -> _Replica:
        replica = _Replica()
        self._replicas.append(replica)
        self.metrics.peak_replicas = max(self.metrics.peak_replicas,
                                         self.live_replicas)
        return replica

    def _release(self, replica: _Replica) -> None:
        replica.busy = False
        replica.last_used_ms = self.sim.now
        if self._waiters:
            # Hand the replica straight to the longest waiter.
            self._waiters.popleft().fire(replica)
            return
        self._idle.append(replica)
        self.sim.schedule_in(
            self.idle_timeout_ms,
            lambda r=replica, t=self.sim.now: self._gc_check(r, t),
            label="idle-gc",
        )

    def _gc_check(self, replica: _Replica, idle_since: float) -> None:
        if replica.dead or replica.busy:
            return
        if replica.last_used_ms > idle_since:
            return  # was reused since this timer was armed
        replica.dead = True
        if replica in self._idle:
            self._idle.remove(replica)
        self.metrics.gc_kills += 1


def run_burst_experiment(
    function: str,
    technique: str,
    burst_size: int,
    policy: Optional[SnapshotPolicy] = None,
    max_replicas: int = 16,
    seed: int = 42,
) -> ClusterMetrics:
    """N simultaneous arrivals against an empty (scaled-to-zero) pool.

    The scenario where cold-start latency hurts most: every request in
    the burst (up to the replica cap) pays a cold start, and the rest
    queue behind them.
    """
    sampler = LatencySampler(function, technique, policy=policy, seed=seed)
    sim = Simulation()
    cluster = SimulatedCluster(sim, sampler, max_replicas=max_replicas)
    cluster.submit_trace([0.0] * burst_size)
    return cluster.run()
