"""Minimal HTTP/1.1 message codec.

"Both functions were written in Java and used an HTTP server to handle
the requests, as usually employed in commercial FaaS providers" (§4.1).
The simulated data path carries :class:`~repro.runtime.base.Request`
objects; this codec gives them a faithful wire form — the gateway and
watchdog can serialize/parse actual HTTP bytes, and tests exercise
malformed-input handling the way a real front end must.

Supported: request line + status line, headers, Content-Length bodies,
and chunked transfer decoding. Deliberately not supported: HTTP/2,
trailers, multiline headers (obsolete folding).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

CRLF = b"\r\n"
SUPPORTED_METHODS = ("GET", "HEAD", "POST", "PUT", "DELETE", "PATCH", "OPTIONS")

REASON_PHRASES = {
    200: "OK", 201: "Created", 204: "No Content",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    408: "Request Timeout", 413: "Payload Too Large",
    500: "Internal Server Error", 502: "Bad Gateway",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


class HttpError(Exception):
    """Malformed HTTP message."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """A parsed HTTP request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return _get_header(self.headers, name, default)


def _get_header(headers: Dict[str, str], name: str,
                default: Optional[str]) -> Optional[str]:
    """Case-insensitive header lookup (composed messages keep their
    original casing; parsed ones are lowercased)."""
    wanted = name.lower()
    for key, value in headers.items():
        if key.lower() == wanted:
            return value
    return default


@dataclass
class HttpResponse:
    """A parsed/composed HTTP response."""

    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def reason(self) -> str:
        return REASON_PHRASES.get(self.status, "Unknown")

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return _get_header(self.headers, name, default)


# ---------------------------------------------------------------------------
# Composition
# ---------------------------------------------------------------------------

def _compose_headers(headers: Dict[str, str], body: bytes) -> List[bytes]:
    lines = []
    seen = {k.lower() for k in headers}
    if "content-length" not in seen and "transfer-encoding" not in seen:
        headers = {**headers, "Content-Length": str(len(body))}
    for name, value in headers.items():
        if "\r" in name + value or "\n" in name + value:
            raise HttpError(f"header {name!r} contains line breaks")
        lines.append(f"{name}: {value}".encode("latin-1"))
    return lines


def compose_request(request: HttpRequest) -> bytes:
    """Serialize a request to wire bytes."""
    if request.method not in SUPPORTED_METHODS:
        raise HttpError(f"unsupported method {request.method!r}", status=405)
    if not request.path.startswith("/"):
        raise HttpError(f"path must start with '/', got {request.path!r}")
    head = [f"{request.method} {request.path} {request.version}".encode("latin-1")]
    head += _compose_headers(request.headers, request.body)
    return CRLF.join(head) + CRLF + CRLF + request.body


def compose_response(response: HttpResponse) -> bytes:
    """Serialize a response to wire bytes."""
    head = [f"{response.version} {response.status} {response.reason}".encode("latin-1")]
    head += _compose_headers(response.headers, response.body)
    return CRLF.join(head) + CRLF + CRLF + response.body


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

def _split_head(data: bytes) -> Tuple[List[bytes], bytes]:
    sep = data.find(CRLF + CRLF)
    if sep == -1:
        raise HttpError("incomplete message: no header terminator")
    head = data[:sep].split(CRLF)
    return head, data[sep + 4:]


def _parse_headers(lines: List[bytes]) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    for line in lines:
        if not line:
            continue
        if b":" not in line:
            raise HttpError(f"malformed header line {line!r}")
        name, _, value = line.partition(b":")
        key = name.strip().decode("latin-1").lower()
        if not key:
            raise HttpError("empty header name")
        headers[key] = value.strip().decode("latin-1")
    return headers


def _decode_chunked(data: bytes) -> bytes:
    body = bytearray()
    offset = 0
    while True:
        line_end = data.find(CRLF, offset)
        if line_end == -1:
            raise HttpError("truncated chunked body (no size line)")
        size_token = data[offset:line_end].split(b";")[0].strip()
        try:
            size = int(size_token, 16)
        except ValueError:
            raise HttpError(f"bad chunk size {size_token!r}") from None
        offset = line_end + 2
        if size == 0:
            return bytes(body)
        chunk = data[offset:offset + size]
        if len(chunk) < size:
            raise HttpError("truncated chunk payload")
        body += chunk
        offset += size
        if data[offset:offset + 2] != CRLF:
            raise HttpError("chunk missing trailing CRLF")
        offset += 2


def _extract_body(headers: Dict[str, str], rest: bytes) -> bytes:
    if headers.get("transfer-encoding", "").lower() == "chunked":
        return _decode_chunked(rest)
    length_text = headers.get("content-length")
    if length_text is None:
        return b""
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(f"bad Content-Length {length_text!r}") from None
    if length < 0:
        raise HttpError(f"negative Content-Length {length}")
    if len(rest) < length:
        raise HttpError(
            f"truncated body: {len(rest)} of {length} bytes", status=400)
    return rest[:length]


def parse_request(data: bytes) -> HttpRequest:
    """Parse wire bytes into an :class:`HttpRequest`."""
    head, rest = _split_head(data)
    parts = head[0].split(b" ")
    if len(parts) != 3:
        raise HttpError(f"malformed request line {head[0]!r}")
    method = parts[0].decode("latin-1")
    if method not in SUPPORTED_METHODS:
        raise HttpError(f"unsupported method {method!r}", status=405)
    version = parts[2].decode("latin-1")
    if not version.startswith("HTTP/1."):
        raise HttpError(f"unsupported version {version!r}", status=400)
    headers = _parse_headers(head[1:])
    return HttpRequest(
        method=method,
        path=parts[1].decode("latin-1"),
        headers=headers,
        body=_extract_body(headers, rest),
        version=version,
    )


def parse_response(data: bytes) -> HttpResponse:
    """Parse wire bytes into an :class:`HttpResponse`."""
    head, rest = _split_head(data)
    parts = head[0].split(b" ", 2)
    if len(parts) < 2:
        raise HttpError(f"malformed status line {head[0]!r}")
    version = parts[0].decode("latin-1")
    if not version.startswith("HTTP/1."):
        raise HttpError(f"unsupported version {version!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise HttpError(f"bad status code {parts[1]!r}") from None
    if not 100 <= status <= 599:
        raise HttpError(f"status code {status} out of range")
    headers = _parse_headers(head[1:])
    return HttpResponse(
        status=status,
        headers=headers,
        body=_extract_body(headers, rest),
        version=version,
    )


# ---------------------------------------------------------------------------
# Bridges to the simulated data path
# ---------------------------------------------------------------------------

def to_runtime_request(http: HttpRequest):
    """Convert a wire request into the simulated platform's Request."""
    from repro.runtime.base import Request
    return Request(
        body=http.body.decode("utf-8", "replace") if http.body else None,
        path=http.path,
        method=http.method,
    )


def from_runtime_response(response) -> HttpResponse:
    """Convert a platform Response into a wire response."""
    if isinstance(response.body, bytes):
        body = response.body
    elif response.body is None:
        body = b""
    elif isinstance(response.body, str):
        body = response.body.encode("utf-8")
    else:
        import json
        body = json.dumps(response.body).encode("utf-8")
    return HttpResponse(
        status=response.status,
        headers={"X-Request-Id": str(response.request_id),
                 "X-Duration-Ms": f"{response.service_ms:.3f}"},
        body=body,
    )
