"""Warm-pool baseline: the cold-start mitigation prebaking competes with.

Paper §1: "A common approach is to avoid delays by being conservative
when provisioning functions [14]. On the one hand, by maintaining an
idle pool of functions instances, the platform addresses surges in
demand with no performance penalty. On the other hand, as the platform
provider does not charge for idle function instances, this strategy
increases the platform's operational cost."

:class:`WarmPool` implements that strategy so experiments can compare
the three options on both axes the paper frames:

* request-observed cold-start latency (pool wins when a warm instance
  is available, loses exactly like vanilla on pool misses);
* idle memory held by the platform (the pool's standing cost; prebaking
  holds only the snapshot bytes, vanilla holds nothing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro import obs
from repro.core.starters import ReplicaHandle, Starter
from repro.functions.base import FunctionApp
from repro.osproc.kernel import Kernel
from repro.runtime.base import Request, Response


@dataclass
class PoolStats:
    """Hit/miss and cost accounting for one pool."""

    hits: int = 0
    misses: int = 0
    refills: int = 0
    idle_mib_ms: float = 0.0     # memory-time integral of idle instances
    wasted_warm_ms: float = 0.0  # wall-time integral of idle instances

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class WarmPool:
    """Keeps up to ``size`` pre-started idle replicas of one function.

    ``take()`` pops a warm replica (a pool *hit*: effectively zero
    start-up) or falls back to a cold start via the wrapped starter (a
    *miss*). ``refill()`` replenishes the pool — in this synchronous
    model the refill cost is charged to the platform, not to any
    request, but the memory each idle instance holds is accounted
    per-replica from the moment it becomes idle.
    """

    def __init__(
        self,
        kernel: Kernel,
        starter: Starter,
        app_factory: Callable[[], FunctionApp],
        size: int = 1,
    ) -> None:
        if size < 0:
            raise ValueError(f"pool size must be >= 0, got {size}")
        self.kernel = kernel
        self.starter = starter
        self.app_factory = app_factory
        self.size = size
        self.stats = PoolStats()
        self._idle: List[Tuple[ReplicaHandle, float]] = []  # (handle, idle_since)

    # -- pool mechanics ---------------------------------------------------------

    def refill(self) -> int:
        """Top the pool back up to ``size``; returns replicas started."""
        started = 0
        with obs.span(self.kernel, "pool.refill",
                      technique=self.starter.technique) as refill_span:
            while len(self._idle) < self.size:
                handle = self.starter.start(self.app_factory())
                self._idle.append((handle, self.kernel.clock.now))
                started += 1
            refill_span.set(started=started)
        if started:
            self.stats.refills += started
            obs.count(self.kernel, "pool_refills_total", started)
        obs.gauge(self.kernel, "pool_idle_replicas", len(self._idle))
        return started

    def _pop_idle(self) -> ReplicaHandle:
        handle, since = self._idle.pop()
        idle_ms = self.kernel.clock.now - since
        self.stats.idle_mib_ms += idle_ms * handle.process.rss_mib
        self._accrue_wasted(idle_ms)
        return handle

    def _accrue_wasted(self, idle_ms: float) -> None:
        """Wasted warm-seconds: idle wall-time a warm replica held.

        The cost axis the prewarm study (X13) reports next to the
        cold-start wins — a policy only counts as better when it cuts
        cold starts *without* holding more idle warm time.
        """
        if idle_ms <= 0:
            return
        self.stats.wasted_warm_ms += idle_ms
        obs.count(self.kernel, "pool_wasted_warm_ms_total", idle_ms)

    def health_check(self, refill: bool = False) -> int:
        """Drop idle replicas whose process died; optionally refill.

        Idle-time memory accounting for a dead replica stops at the
        moment of the check (the platform only learns of the death
        here). Returns how many dead replicas were reaped.
        """
        now = self.kernel.clock.now
        alive: List[Tuple[ReplicaHandle, float]] = []
        reaped = 0
        for handle, since in self._idle:
            if handle.process.alive:
                alive.append((handle, since))
            else:
                self.stats.idle_mib_ms += (now - since) * handle.process.rss_mib
                self._accrue_wasted(now - since)
                reaped += 1
        self._idle = alive
        if reaped:
            obs.count(self.kernel, "pool_reaped_total", reaped)
            obs.gauge(self.kernel, "pool_idle_replicas", len(self._idle))
        if refill and reaped:
            self.refill()
        return reaped

    def take(self) -> ReplicaHandle:
        """Pop a warm replica, or cold-start on a miss.

        Dead pool entries (a replica crashed while idling) are skipped
        and reaped — a poisoned pool degrades to a miss, never to a
        dead replica serving a request.
        """
        while self._idle and not self._idle[-1][0].process.alive:
            handle, since = self._idle.pop()
            self.stats.idle_mib_ms += ((self.kernel.clock.now - since)
                                       * handle.process.rss_mib)
            self._accrue_wasted(self.kernel.clock.now - since)
            obs.count(self.kernel, "pool_reaped_total")
        if self._idle:
            self.stats.hits += 1
            obs.count(self.kernel, "pool_hits_total")
            obs.gauge(self.kernel, "pool_idle_replicas", len(self._idle) - 1)
            return self._pop_idle()
        self.stats.misses += 1
        obs.count(self.kernel, "pool_misses_total")
        with obs.span(self.kernel, "pool.miss_start",
                      technique=self.starter.technique):
            return self.starter.start(self.app_factory())

    def release(self, handle: ReplicaHandle) -> bool:
        """Return a replica to the pool; kills it if the pool is full."""
        if len(self._idle) < self.size:
            self._idle.append((handle, self.kernel.clock.now))
            return True
        handle.kill()
        return False

    def serve(self, request: Optional[Request] = None,
              release: bool = True) -> Response:
        """Take a replica, serve one request, and (optionally) return
        the replica to the pool afterwards."""
        request = request or Request()
        # Join whatever trace is active at the seam (router or harness)
        # so the replica's serve span lands in the caller's tree even
        # if it runs outside this call stack later.
        if request.trace is None:
            request.trace = obs.current_context(self.kernel)
        handle = self.take()
        response = handle.invoke(request)
        if release:
            self.release(handle)
        return response

    def drain(self) -> int:
        """Kill every idle replica (e.g. platform scale-to-zero)."""
        count = len(self._idle)
        while self._idle:
            self._pop_idle().kill()
        return count

    # -- cost accounting -----------------------------------------------------------

    @property
    def idle_count(self) -> int:
        return len(self._idle)

    @property
    def idle_mib(self) -> float:
        """Memory currently held by idle pool instances."""
        return sum(h.process.rss_mib for h, _ in self._idle)

    def snapshot_idle_cost(self) -> float:
        """Flush per-replica accounting; return the MiB·ms integral."""
        now = self.kernel.clock.now
        flushed = []
        for handle, since in self._idle:
            self.stats.idle_mib_ms += (now - since) * handle.process.rss_mib
            self._accrue_wasted(now - since)
            flushed.append((handle, now))
        self._idle = flushed
        return self.stats.idle_mib_ms
