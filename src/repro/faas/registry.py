"""Function Registry: "a repository for the metadata and binaries of
the functions available in the platform" (paper §2)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.policy import AfterReady, SnapshotPolicy
from repro.criu.restore import RestoreMode
from repro.functions.base import FunctionApp


class RegistryError(Exception):
    """Registry lookup/registration failure."""


@dataclass
class FunctionMetadata:
    """Everything the platform knows about one registered function."""

    name: str
    runtime_kind: str
    version: int
    app_factory: Callable[[], FunctionApp]
    artifact_path: str = ""
    artifact_bytes: int = 0
    start_technique: str = "vanilla"          # "vanilla" | "prebake"
    snapshot_policy: SnapshotPolicy = field(default_factory=AfterReady)
    restore_mode: RestoreMode = RestoreMode.EAGER
    max_replicas: int = 16
    idle_timeout_ms: float = 60_000.0
    # Restore-pipeline knobs (PR 5): fetch-pipeline width and the
    # node-local hot-chunk cache policy ("freq-over-size" | "lru" |
    # None). The defaults keep the serial single-worker restore path.
    pipeline_workers: int = 1
    cache_policy: Optional[str] = None

    def make_app(self) -> FunctionApp:
        return self.app_factory()


class FunctionRegistry:
    """Versioned store of deployable functions."""

    def __init__(self) -> None:
        self._functions: Dict[str, FunctionMetadata] = {}

    def register(self, metadata: FunctionMetadata) -> FunctionMetadata:
        existing = self._functions.get(metadata.name)
        if existing is not None and metadata.version <= existing.version:
            raise RegistryError(
                f"function {metadata.name!r} v{metadata.version} does not "
                f"supersede registered v{existing.version}"
            )
        self._functions[metadata.name] = metadata
        return metadata

    def lookup(self, name: str) -> FunctionMetadata:
        meta = self._functions.get(name)
        if meta is None:
            raise RegistryError(
                f"function {name!r} is not registered; known: {sorted(self._functions)}"
            )
        return meta

    def contains(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> List[str]:
        return sorted(self._functions)

    def unregister(self, name: str) -> None:
        if name not in self._functions:
            raise RegistryError(f"function {name!r} is not registered")
        del self._functions[name]
