"""Function Router: request dispatch and the cold-start path (paper §2).

"The Function Router dispatches new requests or events to the correct
function replicas (or, queue the requests and events while the replicas
are still not available to process them)." When no replica is idle the
router triggers the Deployer — that synchronous detour *is* the cold
start the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro.faas.deployer import FunctionDeployer
from repro.osproc.kernel import Kernel
from repro.runtime.base import Request, Response


@dataclass
class InvocationRecord:
    """Telemetry for one routed request."""

    function: str
    cold_start: bool
    queued_ms: float          # time spent waiting for a replica
    service_ms: float
    total_ms: float
    technique: str
    replica_id: int


@dataclass
class RouterStats:
    """Aggregate router telemetry."""

    invocations: int = 0
    cold_starts: int = 0
    records: List[InvocationRecord] = field(default_factory=list)

    @property
    def cold_start_fraction(self) -> float:
        return self.cold_starts / self.invocations if self.invocations else 0.0

    def cold_start_latencies(self) -> List[float]:
        return [r.queued_ms for r in self.records if r.cold_start]


class FunctionRouter:
    """Synchronous request router (one request at a time per replica)."""

    def __init__(self, kernel: Kernel, deployer: FunctionDeployer) -> None:
        self.kernel = kernel
        self.deployer = deployer
        self.stats = RouterStats()

    def route(self, function: str, request: Optional[Request] = None) -> Response:
        """Deliver one request, provisioning a replica if none is idle."""
        request = request or Request()
        arrived = self.kernel.clock.now
        with obs.span(self.kernel, "router.route", function=function,
                      request_id=request.request_id) as route_span:
            replica = self.deployer.idle_replica(function)
            cold = replica is None
            if cold:
                # Cold start: the request waits while the Deployer brings a
                # replica up (Figure 1's execution flow).
                replica = self.deployer.provision(function)
            dispatched = self.kernel.clock.now
            route_span.set(cold_start=cold, replica_id=replica.replica_id,
                           technique=replica.technique)
            response = replica.serve(request)
        record = InvocationRecord(
            function=function,
            cold_start=cold,
            queued_ms=dispatched - arrived,
            service_ms=response.service_ms,
            total_ms=response.finished_ms - arrived,
            technique=replica.technique,
            replica_id=replica.replica_id,
        )
        self.stats.invocations += 1
        if cold:
            self.stats.cold_starts += 1
        self.stats.records.append(record)
        labels = {"function": function, "technique": replica.technique}
        obs.count(self.kernel, "router_invocations_total", labels=labels)
        if cold:
            obs.count(self.kernel, "router_cold_starts_total", labels=labels)
            obs.observe(self.kernel, "router_cold_start_wait_ms",
                        record.queued_ms, labels=labels)
        obs.observe(self.kernel, "router_request_total_ms", record.total_ms,
                    labels=labels)
        return response
