"""Function Router: request dispatch and the cold-start path (paper §2).

"The Function Router dispatches new requests or events to the correct
function replicas (or, queue the requests and events while the replicas
are still not available to process them)." When no replica is idle the
router triggers the Deployer — that synchronous detour *is* the cold
start the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro.faas.deployer import FunctionDeployer
from repro.faults.errors import CapacityExhausted, ReplicaCrashed, RequestTimeout
from repro.osproc.kernel import Kernel
from repro.runtime.base import Request, Response


@dataclass
class InvocationRecord:
    """Telemetry for one routed request."""

    function: str
    cold_start: bool
    queued_ms: float          # time spent waiting for a replica
    service_ms: float
    total_ms: float
    technique: str
    replica_id: int
    requeues: int = 0         # capacity-exhausted waits before dispatch
    crash_retries: int = 0    # re-dispatches after a replica crash


@dataclass
class RouterStats:
    """Aggregate router telemetry."""

    invocations: int = 0
    cold_starts: int = 0
    records: List[InvocationRecord] = field(default_factory=list)

    @property
    def cold_start_fraction(self) -> float:
        return self.cold_starts / self.invocations if self.invocations else 0.0

    def cold_start_latencies(self) -> List[float]:
        return [r.queued_ms for r in self.records if r.cold_start]


class FunctionRouter:
    """Synchronous request router (one request at a time per replica).

    Resilience: when provisioning hits capacity the request is
    *re-queued* (a simulated-time backoff, then another dispatch try)
    instead of crashing the router; a replica that dies mid-request is
    reaped and the request re-dispatched to a fresh replica; a request
    that cannot be dispatched before ``request_timeout_ms`` of waiting
    fails with a typed :class:`RequestTimeout`.
    """

    def __init__(
        self,
        kernel: Kernel,
        deployer: FunctionDeployer,
        requeue_backoff_ms: float = 5.0,
        request_timeout_ms: float = 30_000.0,
        max_crash_retries: int = 3,
    ) -> None:
        self.kernel = kernel
        self.deployer = deployer
        self.requeue_backoff_ms = requeue_backoff_ms
        self.request_timeout_ms = request_timeout_ms
        self.max_crash_retries = max_crash_retries
        self.stats = RouterStats()

    def route(self, function: str, request: Optional[Request] = None) -> Response:
        """Deliver one request, provisioning a replica if none is idle."""
        request = request or Request()
        arrived = self.kernel.clock.now
        deadline = arrived + self.request_timeout_ms
        cold = False
        requeues = 0
        crash_retries = 0
        with obs.span(self.kernel, "router.route", function=function,
                      request_id=request.request_id,
                      context=request.trace) as route_span:
            # Mint the causal trace handle here if nothing upstream
            # (the gateway) already did; everything the request causes
            # downstream — provisioning, restore, serving — joins this
            # trace even when it runs outside this call stack.
            # (NullSpan.context is None, so unobserved worlds stay bare.)
            if request.trace is None:
                request.trace = route_span.context
            obs.record(self.kernel, obs.flight.REQUEST_ADMITTED,
                       function=function, request_id=request.request_id)
            while True:
                replica = self._acquire(function, deadline)
                if replica is None:
                    # Capacity stayed exhausted: wait out one backoff
                    # and re-queue, unless the deadline has passed.
                    requeues += 1
                    obs.count(self.kernel, "router_requeued_total",
                              labels={"function": function})
                    obs.record(self.kernel, obs.flight.REQUEST_REQUEUED,
                               function=function, requeues=requeues)
                    if self.kernel.clock.now + self.requeue_backoff_ms > deadline:
                        waited = self.kernel.clock.now - arrived
                        obs.count(self.kernel, "router_timeouts_total",
                                  labels={"function": function})
                        obs.record(self.kernel, obs.flight.REQUEST_TIMEOUT,
                                   function=function,
                                   waited_ms=round(waited, 3))
                        raise RequestTimeout(
                            f"request {request.request_id} for {function!r} "
                            f"timed out after {waited:.1f} ms in queue",
                            function=function, waited_ms=waited,
                        )
                    self.kernel.clock.advance(self.requeue_backoff_ms)
                    continue
                cold = cold or replica.provisioned_cold
                dispatched = self.kernel.clock.now
                try:
                    response = replica.serve(request)
                    break
                except ReplicaCrashed:
                    crash_retries += 1
                    obs.count(self.kernel, "router_crash_retries_total",
                              labels={"function": function})
                    obs.record(self.kernel, obs.flight.REQUEST_CRASH_RETRY,
                               function=function,
                               replica_id=replica.replica_id,
                               crash_retries=crash_retries)
                    if crash_retries > self.max_crash_retries:
                        raise
            route_span.set(cold_start=cold, replica_id=replica.replica_id,
                           technique=replica.technique, requeues=requeues,
                           crash_retries=crash_retries)
            obs.record(self.kernel, obs.flight.REQUEST_ROUTED,
                       function=function, cold_start=cold,
                       replica_id=replica.replica_id,
                       technique=replica.technique)
        record = InvocationRecord(
            function=function,
            cold_start=cold,
            queued_ms=dispatched - arrived,
            service_ms=response.service_ms,
            total_ms=response.finished_ms - arrived,
            technique=replica.technique,
            replica_id=replica.replica_id,
            requeues=requeues,
            crash_retries=crash_retries,
        )
        self.stats.invocations += 1
        if cold:
            self.stats.cold_starts += 1
        self.stats.records.append(record)
        labels = {"function": function, "technique": replica.technique}
        # These land after route_span closed, so the span stack can no
        # longer supply the exemplar — link the buckets explicitly.
        exemplar = request.trace.trace_id if request.trace else None
        obs.count(self.kernel, "router_invocations_total", labels=labels)
        if cold:
            obs.count(self.kernel, "router_cold_starts_total", labels=labels)
            obs.observe(self.kernel, "router_cold_start_wait_ms",
                        record.queued_ms, labels=labels, exemplar=exemplar)
        obs.observe(self.kernel, "router_request_total_ms", record.total_ms,
                    labels=labels, exemplar=exemplar)
        return response

    def _acquire(self, function: str, deadline: float):
        """One dispatch try: an idle healthy replica, or a fresh one.

        Returns None when capacity is exhausted (the caller re-queues).
        The returned replica is annotated with ``provisioned_cold`` so
        the caller can attribute cold-start latency correctly across
        re-dispatches.
        """
        replica = self.deployer.idle_replica(function)
        if replica is not None and not replica.healthy:
            # A stale idle entry whose process died under us: reap dead
            # replicas for this function and look again.
            self.deployer.health_check(function)
            replica = self.deployer.idle_replica(function)
        if replica is not None:
            replica.provisioned_cold = False
            return replica
        try:
            # Cold start: the request waits while the Deployer brings a
            # replica up (Figure 1's execution flow).
            replica = self.deployer.provision(function)
        except CapacityExhausted:
            # Reap any crashed replicas first — that may free a slot
            # for the next try.
            self.deployer.health_check(function)
            return None
        replica.provisioned_cold = True
        return replica
