"""FaaSPlatform: the wired-together reference architecture.

The facade a user (or the OpenFaaS layer) talks to: register a
function, build it (baking if it opted into prebaking), and invoke it
through the router. Figure 1's cold-start flow — router → deployer →
registry → resource manager → replica — happens inside ``invoke``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.manager import PrebakeManager
from repro.core.policy import AfterReady, SnapshotPolicy
from repro.criu.restore import RestoreMode
from repro.faas.autoscaler import Autoscaler, AutoscalerConfig
from repro.faas.builder import BuildResult, FunctionBuilder
from repro.faas.deployer import FunctionDeployer
from repro.faas.registry import FunctionMetadata, FunctionRegistry
from repro.faas.resources import ComputeNode, ResourceManager
from repro.faas.router import FunctionRouter
from repro.functions.base import FunctionApp
from repro.osproc.kernel import Kernel
from repro.predict.policy import PrewarmConfig, PrewarmController
from repro.runtime.base import Request, Response


@dataclass
class PlatformConfig:
    """Cluster shape + autoscaler policy + router resilience."""

    nodes: int = 2
    node_memory_mib: float = 8192.0
    autoscaler: AutoscalerConfig = field(default_factory=AutoscalerConfig)
    # Router resilience: re-queue backoff when capacity is exhausted,
    # dispatch deadline, and how many replica crashes one request rides.
    requeue_backoff_ms: float = 5.0
    request_timeout_ms: float = 30_000.0
    max_crash_retries: int = 3
    # Sharded snapshot store: 0 keeps the legacy flat registry
    # (byte-identical to the committed baselines); N >= 1 spreads
    # chunk windows over N storage nodes with ``replication_factor``
    # copies each, quorum restores, and per-node circuit breakers.
    storage_nodes: int = 0
    replication_factor: int = 1
    storage_virtual_nodes: int = 64
    storage_breaker_threshold: int = 3
    storage_breaker_reset_ms: float = 2_000.0
    # Predictive prewarming (ROADMAP item 2): None keeps the purely
    # reactive autoscaler — the default, byte-identical to every
    # committed baseline. A PrewarmConfig installs the forecast-driven
    # prewarm/prefetch layer (repro.predict) on the autoscaler tick.
    prewarm: Optional[PrewarmConfig] = None


class FaaSPlatform:
    """The whole Function Management + Resource Orchestration stack."""

    def __init__(self, kernel: Kernel, config: PlatformConfig = PlatformConfig()) -> None:
        self.kernel = kernel
        self.config = config
        self.registry = FunctionRegistry()
        self.resources = ResourceManager(
            nodes=[
                ComputeNode(name=f"node-{i}", memory_mib=config.node_memory_mib)
                for i in range(config.nodes)
            ]
        )
        self.prebake_manager = PrebakeManager(kernel)
        self.builder = FunctionBuilder(kernel, self.prebake_manager.prebaker)
        self.shard_store = None
        if config.storage_nodes > 0:
            from repro.criu.shardstore import ShardedSnapshotStore
            self.shard_store = ShardedSnapshotStore(
                kernel,
                node_count=config.storage_nodes,
                replication_factor=config.replication_factor,
                virtual_nodes=config.storage_virtual_nodes,
                breaker_threshold=config.storage_breaker_threshold,
                breaker_reset_ms=config.storage_breaker_reset_ms,
            )
        self.deployer = FunctionDeployer(
            kernel, self.registry, self.resources, self.prebake_manager,
            shard_store=self.shard_store,
        )
        self.router = FunctionRouter(
            kernel,
            self.deployer,
            requeue_backoff_ms=config.requeue_backoff_ms,
            request_timeout_ms=config.request_timeout_ms,
            max_crash_retries=config.max_crash_retries,
        )
        self.prewarm = (PrewarmController(config.prewarm)
                        if config.prewarm is not None else None)
        self.autoscaler = Autoscaler(
            kernel, self.registry, self.deployer, config.autoscaler,
            prewarm=self.prewarm,
        )

    # -- function lifecycle ---------------------------------------------------------

    def register_function(
        self,
        app_factory: Callable[[], FunctionApp],
        start_technique: str = "vanilla",
        snapshot_policy: Optional[SnapshotPolicy] = None,
        restore_mode: RestoreMode = RestoreMode.EAGER,
        max_replicas: int = 16,
        idle_timeout_ms: float = 60_000.0,
        cache_policy: Optional[str] = None,
    ) -> FunctionMetadata:
        """Register (a new version of) a function and build it."""
        if start_technique not in ("vanilla", "prebake"):
            raise ValueError(f"unknown start technique {start_technique!r}")
        sample = app_factory()
        version = 1
        if self.registry.contains(sample.name):
            version = self.registry.lookup(sample.name).version + 1
        metadata = FunctionMetadata(
            name=sample.name,
            runtime_kind=sample.runtime_kind,
            version=version,
            app_factory=app_factory,
            start_technique=start_technique,
            snapshot_policy=snapshot_policy or AfterReady(),
            restore_mode=restore_mode,
            max_replicas=max_replicas,
            idle_timeout_ms=idle_timeout_ms,
            cache_policy=cache_policy,
        )
        self.build(metadata)
        # Keep the PrebakeManager's version counter in sync so the
        # deployer restores the snapshot this build produced.
        self.prebake_manager.sync_version(sample.name, version)
        self.registry.register(metadata)
        return metadata

    def build(self, metadata: FunctionMetadata) -> BuildResult:
        """Run the Function Builder for ``metadata``.

        On sharded clusters a freshly baked snapshot is placed onto
        the storage nodes right away (the write side of the protocol:
        a down home shard gets a hinted handoff).
        """
        result = self.builder.build(metadata)
        if self.shard_store is not None \
                and metadata.start_technique == "prebake":
            from repro.core.store import SnapshotKey
            key = SnapshotKey(
                function=metadata.name,
                runtime_kind=metadata.runtime_kind,
                policy=metadata.snapshot_policy.key,
                version=metadata.version,
            )
            layered = self.prebake_manager.store.layered(key)
            if layered is not None:
                self.shard_store.register_image(
                    layered, merkle=self.prebake_manager.store.merkle(key))
        return result

    # -- data path ----------------------------------------------------------------------

    def invoke(self, function: str, request: Optional[Request] = None) -> Response:
        """Route one request (cold-starting a replica if needed)."""
        # Feed the prewarm forecaster (a no-op, not even a clock read,
        # when prediction is off — the default).
        self.autoscaler.note_arrival(function)
        return self.router.route(function, request)

    def scale(self, function: str, replicas: int) -> None:
        """Imperatively scale a function's pool up to ``replicas``."""
        self.autoscaler.ensure_capacity(function, replicas)

    def gc_tick(self) -> None:
        """Run one autoscaler reconciliation pass (reap → heal → GC)."""
        self.autoscaler.tick()

    def health_check(self) -> int:
        """Reap every crashed replica across all functions; return count."""
        return len(self.deployer.health_check())

    def install_faults(self, plan) -> "object":
        """Arm a :class:`repro.faults.FaultPlan` on this platform's world."""
        from repro import faults
        return faults.install(self.kernel, plan)

    # -- observability --------------------------------------------------------------------

    def replica_count(self, function: str) -> int:
        return len(self.deployer.replicas(function))

    def cold_start_latencies(self, function: Optional[str] = None) -> List[float]:
        records = self.router.stats.records
        return [
            r.queued_ms for r in records
            if r.cold_start and (function is None or r.function == function)
        ]
