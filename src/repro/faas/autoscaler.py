"""Autoscaler: replica pool management.

Combines the paper's two platform behaviours: garbage-collecting
replicas "inactive for a certain period" (§4.1) and the
Prometheus-alert-driven scale-up OpenFaaS implements (§5.1). The
policy here is deliberately simple — target concurrency with idle
timeout — because the paper's contribution is *how fast* a scale-up
replica starts, not the scaling policy itself.

Two predictive extensions sit on top (ROADMAP item 2), both off by
default:

* an optional :class:`~repro.predict.policy.PrewarmController` adds a
  ``prewarm`` action — budget-capped pre-placement of replicas ahead
  of forecast bursts, boosted when the cold-start SLO burn rate
  crosses its threshold — and lets the forecaster's histogram choose
  per-function keep-alive instead of the fixed idle timeout;
* wasted warm-seconds accounting: every idle-GC'd replica contributes
  its terminal idle stretch to ``autoscaler_wasted_warm_ms_total``,
  the cost-side metric X13 reports next to the cold-start wins.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

from repro import obs
from repro.faas.deployer import FunctionDeployer
from repro.faas.registry import FunctionRegistry
from repro.faas.replica import ReplicaState
from repro.faults.errors import CapacityExhausted
from repro.obs.slo import COLD_START_P99
from repro.osproc.kernel import Kernel
from repro.predict.policy import PrewarmController


@dataclass(frozen=True)
class AutoscalerConfig:
    """Tunables for the pool policy."""

    idle_timeout_ms: float = 60_000.0
    min_replicas: int = 0
    max_replicas: int = 16
    # Scale events kept for observability; older ones fall off the ring
    # (mirroring the flight-recorder idiom) instead of growing without
    # bound across a fleet-scale run.
    event_capacity: int = 1024


@dataclass
class ScaleEvent:
    """One autoscaler action, for observability."""

    at_ms: float
    function: str
    action: str      # "scale-up" | "gc" | "reap" | "heal" | "prewarm"
    replicas_after: int


class Autoscaler:
    """Idle-GC plus demand-driven scale-up (plus optional prewarm)."""

    def __init__(
        self,
        kernel: Kernel,
        registry: FunctionRegistry,
        deployer: FunctionDeployer,
        config: AutoscalerConfig = AutoscalerConfig(),
        prewarm: Optional[PrewarmController] = None,
    ) -> None:
        self.kernel = kernel
        self.registry = registry
        self.deployer = deployer
        self.config = config
        self.prewarm = prewarm
        self.events: Deque[ScaleEvent] = deque(
            maxlen=max(1, config.event_capacity))
        self.events_dropped = 0
        self.wasted_warm_ms: Dict[str, float] = {}

    def _record_event(self, function: str, action: str,
                      replicas_after: int, at_ms: float) -> None:
        if len(self.events) == self.events.maxlen:
            self.events_dropped += 1
            obs.count(self.kernel, "autoscaler_events_dropped_total")
        self.events.append(ScaleEvent(
            at_ms=at_ms, function=function, action=action,
            replicas_after=replicas_after,
        ))
        obs.record(self.kernel, obs.flight.AUTOSCALER_ACTION,
                   function=function, action=action,
                   replicas_after=replicas_after)
        obs.count(self.kernel, "autoscaler_actions_total",
                  labels={"function": function, "action": action})

    def note_arrival(self, function: str) -> None:
        """Feed one arrival to the prewarm forecaster (no-op when off)."""
        if self.prewarm is not None:
            self.prewarm.note_arrival(function, self.kernel.clock.now)

    def tick(self) -> None:
        """Run one reconciliation pass over every registered function.

        Order matters: reap crashed replicas first (freeing node
        memory), then heal back up to ``min_replicas``, then GC idle
        excess — so a crash storm converges to the configured floor
        instead of oscillating. The prewarm pass runs last, against
        the post-GC pool, so forecast targets see the capacity that
        actually survived this tick.
        """
        now = self.kernel.clock.now
        for name in self.registry.names():
            self._reap_crashed(name, now)
            self._heal_to_min(name)
            self._gc_idle(name, now)
        if self.prewarm is not None:
            self._prewarm_pass(now)

    def _reap_crashed(self, function: str, now: float) -> None:
        reaped = self.deployer.health_check(function)
        for _ in reaped:
            remaining = len(self.deployer.replicas(function))
            self._record_event(function, "reap", remaining, now)

    def _heal_to_min(self, function: str) -> None:
        """Re-provision up to the configured replica floor."""
        floor = self.config.min_replicas
        if floor <= 0:
            return
        while len(self.deployer.replicas(function)) < floor:
            try:
                with obs.span(self.kernel, "autoscaler.heal", function=function):
                    self.deployer.provision(function)
            except CapacityExhausted:
                break
            remaining = len(self.deployer.replicas(function))
            self._record_event(function, "heal", remaining,
                               self.kernel.clock.now)

    def _gc_idle(self, function: str, now: float) -> None:
        metadata = self.registry.lookup(function)
        timeout = min(self.config.idle_timeout_ms, metadata.idle_timeout_ms)
        if self.prewarm is not None:
            timeout = self.prewarm.keepalive_ms(function, timeout)
        replicas = self.deployer.replicas(function)
        keep = max(self.config.min_replicas, 0)
        for replica in replicas:
            if len(self.deployer.replicas(function)) <= keep:
                break
            if replica.state is ReplicaState.IDLE and replica.idle_for_ms(now) >= timeout:
                idle_ms = replica.idle_for_ms(now)
                self.wasted_warm_ms[function] = (
                    self.wasted_warm_ms.get(function, 0.0) + idle_ms)
                obs.count(self.kernel, "autoscaler_wasted_warm_ms_total",
                          idle_ms, labels={"function": function})
                replica.terminate()
                remaining = len(self.deployer.replicas(function))
                self._record_event(function, "gc", remaining, now)
                obs.gauge(self.kernel, "autoscaler_replicas", remaining,
                          labels={"function": function})

    def _prewarm_pass(self, now: float) -> None:
        """Pre-place replicas and prefetch chunks ahead of forecast load."""
        assert self.prewarm is not None
        hub = self.kernel.obs
        burn = (COLD_START_P99.burn_rate(hub.metrics)
                if hub is not None else None)
        current_warm = {
            name: len(self.deployer.replicas(name))
            for name in self.registry.names()
        }
        actions = self.prewarm.plan(now, current_warm, burn_rate=burn)
        for action in actions:
            try:
                metadata = self.registry.lookup(action.function)
            except KeyError:
                continue
            limit = min(self.config.max_replicas, metadata.max_replicas)
            for _ in range(action.add_replicas):
                if len(self.deployer.replicas(action.function)) >= limit:
                    break
                try:
                    with obs.span(self.kernel, "autoscaler.prewarm",
                                  function=action.function,
                                  forecast=action.forecast):
                        self.deployer.provision(action.function)
                except CapacityExhausted:
                    break
                remaining = len(self.deployer.replicas(action.function))
                self._record_event(action.function, "prewarm", remaining,
                                   self.kernel.clock.now)
                obs.gauge(self.kernel, "autoscaler_replicas", remaining,
                          labels={"function": action.function})
            if action.prefetch:
                self.deployer.prefetch_function(
                    action.function,
                    budget_bytes=self.prewarm.config.prefetch_budget_bytes)

    def ensure_capacity(self, function: str, pending_requests: int) -> int:
        """Scale up so ``pending_requests`` can be served concurrently.

        Returns how many replicas were added. This is the action an
        OpenFaaS Prometheus alert triggers (§5.1).
        """
        metadata = self.registry.lookup(function)
        limit = min(self.config.max_replicas, metadata.max_replicas)
        current = len(self.deployer.replicas(function))
        wanted = min(pending_requests, limit)
        added = 0
        while current + added < wanted:
            with obs.span(self.kernel, "autoscaler.scale_up",
                          function=function, pending=pending_requests):
                self.deployer.provision(function)
            added += 1
            self._record_event(function, "scale-up", current + added,
                               self.kernel.clock.now)
            obs.gauge(self.kernel, "autoscaler_replicas", current + added,
                      labels={"function": function})
        return added
