"""Autoscaler: replica pool management.

Combines the paper's two platform behaviours: garbage-collecting
replicas "inactive for a certain period" (§4.1) and the
Prometheus-alert-driven scale-up OpenFaaS implements (§5.1). The
policy here is deliberately simple — target concurrency with idle
timeout — because the paper's contribution is *how fast* a scale-up
replica starts, not the scaling policy itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro import obs
from repro.faas.deployer import FunctionDeployer
from repro.faas.registry import FunctionRegistry
from repro.faas.replica import ReplicaState
from repro.faults.errors import CapacityExhausted
from repro.osproc.kernel import Kernel


@dataclass(frozen=True)
class AutoscalerConfig:
    """Tunables for the pool policy."""

    idle_timeout_ms: float = 60_000.0
    min_replicas: int = 0
    max_replicas: int = 16


@dataclass
class ScaleEvent:
    """One autoscaler action, for observability."""

    at_ms: float
    function: str
    action: str      # "scale-up" | "gc" | "reap" | "heal"
    replicas_after: int


class Autoscaler:
    """Idle-GC plus demand-driven scale-up."""

    def __init__(
        self,
        kernel: Kernel,
        registry: FunctionRegistry,
        deployer: FunctionDeployer,
        config: AutoscalerConfig = AutoscalerConfig(),
    ) -> None:
        self.kernel = kernel
        self.registry = registry
        self.deployer = deployer
        self.config = config
        self.events: List[ScaleEvent] = []

    def tick(self) -> None:
        """Run one reconciliation pass over every registered function.

        Order matters: reap crashed replicas first (freeing node
        memory), then heal back up to ``min_replicas``, then GC idle
        excess — so a crash storm converges to the configured floor
        instead of oscillating.
        """
        now = self.kernel.clock.now
        for name in self.registry.names():
            self._reap_crashed(name, now)
            self._heal_to_min(name)
            self._gc_idle(name, now)

    def _reap_crashed(self, function: str, now: float) -> None:
        reaped = self.deployer.health_check(function)
        for _ in reaped:
            remaining = len(self.deployer.replicas(function))
            self.events.append(ScaleEvent(
                at_ms=now, function=function, action="reap",
                replicas_after=remaining,
            ))
            obs.record(self.kernel, obs.flight.AUTOSCALER_ACTION,
                       function=function, action="reap",
                       replicas_after=remaining)
            obs.count(self.kernel, "autoscaler_actions_total",
                      labels={"function": function, "action": "reap"})

    def _heal_to_min(self, function: str) -> None:
        """Re-provision up to the configured replica floor."""
        floor = self.config.min_replicas
        if floor <= 0:
            return
        while len(self.deployer.replicas(function)) < floor:
            try:
                with obs.span(self.kernel, "autoscaler.heal", function=function):
                    self.deployer.provision(function)
            except CapacityExhausted:
                break
            remaining = len(self.deployer.replicas(function))
            self.events.append(ScaleEvent(
                at_ms=self.kernel.clock.now, function=function, action="heal",
                replicas_after=remaining,
            ))
            obs.record(self.kernel, obs.flight.AUTOSCALER_ACTION,
                       function=function, action="heal",
                       replicas_after=remaining)
            obs.count(self.kernel, "autoscaler_actions_total",
                      labels={"function": function, "action": "heal"})

    def _gc_idle(self, function: str, now: float) -> None:
        metadata = self.registry.lookup(function)
        timeout = min(self.config.idle_timeout_ms, metadata.idle_timeout_ms)
        replicas = self.deployer.replicas(function)
        keep = max(self.config.min_replicas, 0)
        for replica in replicas:
            if len(self.deployer.replicas(function)) <= keep:
                break
            if replica.state is ReplicaState.IDLE and replica.idle_for_ms(now) >= timeout:
                replica.terminate()
                remaining = len(self.deployer.replicas(function))
                self.events.append(ScaleEvent(
                    at_ms=now, function=function, action="gc",
                    replicas_after=remaining,
                ))
                obs.record(self.kernel, obs.flight.AUTOSCALER_ACTION,
                           function=function, action="gc",
                           replicas_after=remaining)
                obs.count(self.kernel, "autoscaler_actions_total",
                          labels={"function": function, "action": "gc"})
                obs.gauge(self.kernel, "autoscaler_replicas", remaining,
                          labels={"function": function})

    def ensure_capacity(self, function: str, pending_requests: int) -> int:
        """Scale up so ``pending_requests`` can be served concurrently.

        Returns how many replicas were added. This is the action an
        OpenFaaS Prometheus alert triggers (§5.1).
        """
        metadata = self.registry.lookup(function)
        limit = min(self.config.max_replicas, metadata.max_replicas)
        current = len(self.deployer.replicas(function))
        wanted = min(pending_requests, limit)
        added = 0
        while current + added < wanted:
            with obs.span(self.kernel, "autoscaler.scale_up",
                          function=function, pending=pending_requests):
                self.deployer.provision(function)
            added += 1
            self.events.append(ScaleEvent(
                at_ms=self.kernel.clock.now, function=function, action="scale-up",
                replicas_after=current + added,
            ))
            obs.record(self.kernel, obs.flight.AUTOSCALER_ACTION,
                       function=function, action="scale-up",
                       replicas_after=current + added)
            obs.count(self.kernel, "autoscaler_actions_total",
                      labels={"function": function, "action": "scale-up"})
            obs.gauge(self.kernel, "autoscaler_replicas", current + added,
                      labels={"function": function})
        return added
