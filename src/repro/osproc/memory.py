"""Virtual-memory model: pages, VMAs, address spaces, pagemap.

This is the data CRIU walks during a dump: the checkpoint engine reads
``/proc/<pid>/pagemap`` to find resident pages and copies them out of
the target address space. The model keeps enough structure for that
protocol to be exercised faithfully (per-VMA kind/protection, resident
page sets, dirty/soft-dirty bits, file-backed vs anonymous mappings)
without storing real page contents — a page stores a small content tag
so snapshot/restore round-trips are verifiable.
"""

from __future__ import annotations

import functools
import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional, Tuple

PAGE_SIZE = 4096
PAGES_PER_MIB = (1024 * 1024) // PAGE_SIZE


@functools.lru_cache(maxsize=262144)
def page_content_key(content_tag: str) -> str:
    """Stable content identity of one page.

    The model stores a small *content tag* instead of real page bytes;
    hashing the tag gives the content-addressed identity a dedupling
    page store keys on — two pages with equal tags are "the same page"
    for storage purposes, exactly as equal 4 KiB blocks would be.

    Memoized: the tag string *is* the page identity, and chunking the
    same snapshot layers re-hashes the same tags on every bake/restore
    — profiling the restore sweep put this at the top of the flat
    profile. The cache is bounded so long multi-world benches cannot
    grow it without limit.
    """
    return hashlib.sha256(content_tag.encode("utf-8")).hexdigest()[:16]


class MemoryError_(Exception):
    """Address-space manipulation error (name avoids builtin clash)."""


class VMAKind(Enum):
    """What a mapping backs — drives dump/restore behaviour."""

    ANON = "anon"              # heap, malloc arenas
    FILE = "file"              # mmap'ed files (class files, shared libs)
    STACK = "stack"
    CODE = "code"              # executable text (incl. JIT code cache)
    METASPACE = "metaspace"    # class metadata (JVM)
    VDSO = "vdso"
    PARASITE = "parasite"      # CRIU-injected blob


@dataclass
class Page:
    """A resident 4 KiB page."""

    index: int                 # page index within its VMA
    content_tag: str = ""      # opaque identity used to verify round-trips
    dirty: bool = False
    soft_dirty: bool = False

    @property
    def content_key(self) -> str:
        """Content-addressed identity (see :func:`page_content_key`)."""
        return page_content_key(self.content_tag)


@dataclass
class VMA:
    """A contiguous virtual memory area."""

    start: int
    length: int                # bytes; must be page-aligned
    kind: VMAKind
    prot: str = "rw-"          # unix-style rwx string
    file_path: Optional[str] = None
    file_offset: int = 0
    label: str = ""
    pages: Dict[int, Page] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.length <= 0 or self.length % PAGE_SIZE:
            raise MemoryError_(f"VMA length must be a positive page multiple, got {self.length}")
        if self.start % PAGE_SIZE:
            raise MemoryError_(f"VMA start must be page aligned, got {hex(self.start)}")
        if self.kind is VMAKind.FILE and not self.file_path:
            raise MemoryError_("file-backed VMA requires file_path")

    @property
    def end(self) -> int:
        return self.start + self.length

    @property
    def page_count(self) -> int:
        return self.length // PAGE_SIZE

    @property
    def resident_pages(self) -> int:
        return len(self.pages)

    @property
    def resident_bytes(self) -> int:
        return self.resident_pages * PAGE_SIZE

    def touch(self, page_index: int, content_tag: str = "", dirty: bool = True) -> Page:
        """Fault a page in (make it resident)."""
        if not 0 <= page_index < self.page_count:
            raise MemoryError_(
                f"page index {page_index} out of range for VMA of {self.page_count} pages"
            )
        page = self.pages.get(page_index)
        if page is None:
            page = Page(index=page_index, content_tag=content_tag, dirty=dirty)
            self.pages[page_index] = page
        else:
            page.dirty = page.dirty or dirty
            if content_tag:
                page.content_tag = content_tag
        page.soft_dirty = True
        return page

    def touch_range(self, first: int, count: int, content_tag: str = "") -> None:
        for i in range(first, first + count):
            self.touch(i, content_tag=content_tag)

    def overlaps(self, other: "VMA") -> bool:
        return self.start < other.end and other.start < self.end


class AddressSpace:
    """An ordered collection of non-overlapping VMAs."""

    def __init__(self) -> None:
        self._vmas: List[VMA] = []
        self._next_mmap_base = 0x7F00_0000_0000

    # -- mapping -------------------------------------------------------------

    def mmap(
        self,
        length: int,
        kind: VMAKind,
        prot: str = "rw-",
        start: Optional[int] = None,
        file_path: Optional[str] = None,
        file_offset: int = 0,
        label: str = "",
        populate: bool = False,
        content_tag: str = "",
    ) -> VMA:
        """Create a mapping; kernel picks the address unless ``start`` given."""
        length = -(-length // PAGE_SIZE) * PAGE_SIZE  # round up to page multiple
        if start is None:
            start = self._next_mmap_base
            self._next_mmap_base += length + PAGE_SIZE  # guard page gap
        vma = VMA(
            start=start,
            length=length,
            kind=kind,
            prot=prot,
            file_path=file_path,
            file_offset=file_offset,
            label=label,
        )
        for existing in self._vmas:
            if existing.overlaps(vma):
                raise MemoryError_(
                    f"mapping [{hex(vma.start)},{hex(vma.end)}) overlaps "
                    f"[{hex(existing.start)},{hex(existing.end)}) ({existing.label})"
                )
        self._vmas.append(vma)
        self._vmas.sort(key=lambda v: v.start)
        # Keep the allocator above every mapping, including ones placed
        # at explicit addresses (e.g. by a checkpoint restore).
        self._next_mmap_base = max(self._next_mmap_base, vma.end + PAGE_SIZE)
        if populate:
            vma.touch_range(0, vma.page_count, content_tag=content_tag)
        return vma

    def munmap(self, vma: VMA) -> None:
        try:
            self._vmas.remove(vma)
        except ValueError:
            raise MemoryError_(f"VMA at {hex(vma.start)} not mapped in this address space")

    def clear(self) -> None:
        """Drop every mapping (the effect of ``execve``)."""
        self._vmas.clear()

    # -- inspection ----------------------------------------------------------

    @property
    def vmas(self) -> Tuple[VMA, ...]:
        return tuple(self._vmas)

    def find(self, addr: int) -> Optional[VMA]:
        for vma in self._vmas:
            if vma.start <= addr < vma.end:
                return vma
        return None

    def find_by_label(self, label: str) -> Optional[VMA]:
        for vma in self._vmas:
            if vma.label == label:
                return vma
        return None

    @property
    def rss_bytes(self) -> int:
        return sum(v.resident_bytes for v in self._vmas)

    @property
    def rss_mib(self) -> float:
        return self.rss_bytes / (1024 * 1024)

    @property
    def mapped_bytes(self) -> int:
        return sum(v.length for v in self._vmas)

    def iter_resident(self) -> Iterator[Tuple[VMA, Page]]:
        """Yield (vma, page) for every resident page, address order.

        This is exactly the view ``/proc/<pid>/pagemap`` gives CRIU.
        """
        for vma in self._vmas:
            for index in sorted(vma.pages):
                yield vma, vma.pages[index]

    def clear_soft_dirty(self) -> None:
        """Model writing ``4`` to ``/proc/<pid>/clear_refs`` (pre-dump)."""
        for vma in self._vmas:
            for page in vma.pages.values():
                page.soft_dirty = False

    def grow_anon(self, label: str, mib: float, kind: VMAKind = VMAKind.ANON,
                  content_tag: str = "") -> VMA:
        """Convenience: map and populate ``mib`` MiB of anonymous memory."""
        pages = max(1, int(round(mib * PAGES_PER_MIB)))
        return self.mmap(
            length=pages * PAGE_SIZE,
            kind=kind,
            label=label,
            populate=True,
            content_tag=content_tag,
        )
