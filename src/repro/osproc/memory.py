"""Virtual-memory model: pages, VMAs, address spaces, pagemap.

This is the data CRIU walks during a dump: the checkpoint engine reads
``/proc/<pid>/pagemap`` to find resident pages and copies them out of
the target address space. The model keeps enough structure for that
protocol to be exercised faithfully (per-VMA kind/protection, resident
page sets, dirty/soft-dirty bits, file-backed vs anonymous mappings)
without storing real page contents — a page stores a small content tag
so snapshot/restore round-trips are verifiable.

Data layout (DESIGN.md §15): the default :class:`VMA` keeps residency
as an array-of-struct pagemap — parallel numpy arrays for the
resident/dirty/soft-dirty bits plus an ``int32`` array of content-tag
ids interned in the process-wide :data:`TAGS` table — so the hot
operations (``touch_range``, dump walks, restore transmute, soft-dirty
clears) are single vectorized passes instead of a Python loop
allocating a ``Page`` object per page. The original dict-of-``Page``
implementation survives as :class:`SlowVMA`, selected with
``REPRO_SLOW_PAGEMAP=1`` (or :func:`set_slow_pagemap` at runtime) as
the reference the equivalence suite and the kernel-bench speedup gate
measure against. ``Page`` objects returned by either backend are
snapshots: mutating one never writes back to the pagemap.
"""

from __future__ import annotations

import functools
import hashlib
import os
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type

import numpy as np

PAGE_SIZE = 4096
PAGES_PER_MIB = (1024 * 1024) // PAGE_SIZE


@functools.lru_cache(maxsize=262144)
def page_content_key(content_tag: str) -> str:
    """Stable content identity of one page.

    The model stores a small *content tag* instead of real page bytes;
    hashing the tag gives the content-addressed identity a dedupling
    page store keys on — two pages with equal tags are "the same page"
    for storage purposes, exactly as equal 4 KiB blocks would be.

    Memoized: the tag string *is* the page identity, and chunking the
    same snapshot layers re-hashes the same tags on every bake/restore
    — profiling the restore sweep put this at the top of the flat
    profile. The cache is bounded so long multi-world benches cannot
    grow it without limit.
    """
    return hashlib.sha256(content_tag.encode("utf-8")).hexdigest()[:16]


class MemoryError_(Exception):
    """Address-space manipulation error (name avoids builtin clash)."""


class _TagTable:
    """Process-wide interning table for page content tags.

    Tags repeat enormously (every page of a populated mapping carries
    the same tag), so the pagemap stores 4-byte ids instead of string
    references and the content key of each distinct tag is computed
    exactly once. Interning is append-only; id 0 is always the empty
    tag, so freshly zeroed pagemap arrays start out correct.
    """

    __slots__ = ("_ids", "_tags", "_keys")

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {"": 0}
        self._tags: List[str] = [""]
        self._keys: List[str] = [page_content_key("")]

    def intern(self, tag: str) -> int:
        tid = self._ids.get(tag)
        if tid is None:
            tid = len(self._tags)
            self._ids[tag] = tid
            self._tags.append(tag)
            self._keys.append(page_content_key(tag))
        return tid

    def intern_many(self, tags: Sequence[str]) -> np.ndarray:
        """Intern a tag sequence; returns their ids as an int32 array."""
        ids = self._ids
        intern = self.intern
        return np.fromiter(
            (ids.get(t) if t in ids else intern(t) for t in tags),
            dtype=np.int32, count=len(tags),
        )

    def tag(self, tid: int) -> str:
        return self._tags[tid]

    def key(self, tid: int) -> str:
        """Cached :func:`page_content_key` of the interned tag."""
        return self._keys[tid]

    def tags_of(self, ids: np.ndarray) -> List[str]:
        tags = self._tags
        return [tags[i] for i in ids.tolist()]

    def keys_of(self, ids: np.ndarray) -> List[str]:
        keys = self._keys
        return [keys[i] for i in ids.tolist()]

    def __len__(self) -> int:
        return len(self._tags)


TAGS = _TagTable()


class VMAKind(Enum):
    """What a mapping backs — drives dump/restore behaviour."""

    ANON = "anon"              # heap, malloc arenas
    FILE = "file"              # mmap'ed files (class files, shared libs)
    STACK = "stack"
    CODE = "code"              # executable text (incl. JIT code cache)
    METASPACE = "metaspace"    # class metadata (JVM)
    VDSO = "vdso"
    PARASITE = "parasite"      # CRIU-injected blob


@dataclass
class Page:
    """A resident 4 KiB page (a read-only snapshot in the fast backend)."""

    index: int                 # page index within its VMA
    content_tag: str = ""      # opaque identity used to verify round-trips
    dirty: bool = False
    soft_dirty: bool = False

    @property
    def content_key(self) -> str:
        """Content-addressed identity (see :func:`page_content_key`)."""
        return page_content_key(self.content_tag)


class _VMABase:
    """Geometry, validation and derived properties shared by both backends."""

    start: int
    length: int
    kind: VMAKind
    prot: str
    file_path: Optional[str]
    file_offset: int
    label: str

    def _init_common(
        self,
        start: int,
        length: int,
        kind: VMAKind,
        prot: str,
        file_path: Optional[str],
        file_offset: int,
        label: str,
    ) -> None:
        if length <= 0 or length % PAGE_SIZE:
            raise MemoryError_(f"VMA length must be a positive page multiple, got {length}")
        if start % PAGE_SIZE:
            raise MemoryError_(f"VMA start must be page aligned, got {hex(start)}")
        if kind is VMAKind.FILE and not file_path:
            raise MemoryError_("file-backed VMA requires file_path")
        self.start = start
        self.length = length
        self.kind = kind
        self.prot = prot
        self.file_path = file_path
        self.file_offset = file_offset
        self.label = label

    @property
    def end(self) -> int:
        return self.start + self.length

    @property
    def page_count(self) -> int:
        return self.length // PAGE_SIZE

    @property
    def resident_bytes(self) -> int:
        return self.resident_pages * PAGE_SIZE

    resident_pages: int  # both backends provide an O(1) implementation

    def overlaps(self, other: "_VMABase") -> bool:
        return self.start < other.end and other.start < self.end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}(start={hex(self.start)}, "
                f"length={self.length}, kind={self.kind.value}, "
                f"label={self.label!r}, rss={self.resident_pages}p)")


class VMA(_VMABase):
    """A contiguous virtual memory area (vectorized pagemap backend).

    Residency lives in parallel numpy arrays indexed by page number;
    content tags are interned ids into :data:`TAGS`. All the bulk
    operations (:meth:`touch_range`, :meth:`dump_pages`,
    :meth:`populate_pages`, :meth:`clear_soft_dirty`) are single
    vectorized passes.
    """

    __slots__ = ("start", "length", "kind", "prot", "file_path",
                 "file_offset", "label", "_resident", "_dirty", "_soft",
                 "_tag_ids", "_resident_count")

    def __init__(
        self,
        start: int = 0,
        length: int = PAGE_SIZE,
        kind: VMAKind = VMAKind.ANON,
        prot: str = "rw-",
        file_path: Optional[str] = None,
        file_offset: int = 0,
        label: str = "",
    ) -> None:
        self._init_common(start, length, kind, prot, file_path, file_offset, label)
        n = length // PAGE_SIZE
        self._resident = np.zeros(n, dtype=bool)
        self._dirty = np.zeros(n, dtype=bool)
        self._soft = np.zeros(n, dtype=bool)
        self._tag_ids = np.zeros(n, dtype=np.int32)
        self._resident_count = 0

    # -- residency -----------------------------------------------------------

    @property
    def resident_pages(self) -> int:
        return self._resident_count

    def touch(self, page_index: int, content_tag: str = "", dirty: bool = True) -> Page:
        """Fault a page in (make it resident); returns a snapshot."""
        if not 0 <= page_index < self.page_count:
            raise MemoryError_(
                f"page index {page_index} out of range for VMA of {self.page_count} pages"
            )
        if self._resident[page_index]:
            if dirty:
                self._dirty[page_index] = True
            if content_tag:
                self._tag_ids[page_index] = TAGS.intern(content_tag)
        else:
            self._resident[page_index] = True
            self._dirty[page_index] = dirty
            self._tag_ids[page_index] = TAGS.intern(content_tag)
            self._resident_count += 1
        self._soft[page_index] = True
        return Page(
            index=page_index,
            content_tag=TAGS.tag(int(self._tag_ids[page_index])),
            dirty=bool(self._dirty[page_index]),
            soft_dirty=True,
        )

    def touch_range(self, first: int, count: int, content_tag: str = "") -> None:
        """Fault ``count`` pages starting at ``first`` in one pass."""
        if count <= 0:
            return
        if first < 0 or first + count > self.page_count:
            raise MemoryError_(
                f"page range [{first},{first + count}) out of range "
                f"for VMA of {self.page_count} pages"
            )
        window = slice(first, first + count)
        resident = self._resident[window]
        newly = count - int(resident.sum())
        if content_tag:
            self._tag_ids[window] = TAGS.intern(content_tag)
        # Empty tag: new pages keep tag id 0 (already zeroed), existing
        # pages keep their tag — nothing to write either way.
        self._resident[window] = True
        self._dirty[window] = True
        self._soft[window] = True
        self._resident_count += newly

    def populate_pages(self, indices: Sequence[int], tags: Sequence[str],
                       dirty: bool = False) -> None:
        """Bulk-equivalent of ``touch(i, tag, dirty)`` per (index, tag) pair.

        ``indices`` must be unique (descriptor order from a dump is).
        The restore transmute path uses this to rebuild a mapping's
        resident set in one vectorized pass.
        """
        count = len(indices)
        if count == 0:
            return
        idx = np.asarray(indices, dtype=np.int64)
        if int(idx.min()) < 0 or int(idx.max()) >= self.page_count:
            raise MemoryError_(
                f"page index out of range for VMA of {self.page_count} pages"
            )
        ids = TAGS.intern_many(tags)
        was_resident = self._resident[idx]
        self._resident[idx] = True
        self._resident_count += count - int(was_resident.sum())
        if dirty:
            self._dirty[idx] = True
        # A non-empty tag always lands; an empty tag only initializes
        # newly resident pages (which hold id 0 already) — matching the
        # per-page touch semantics exactly.
        overwrite = ~was_resident | (ids != 0)
        if overwrite.all():
            self._tag_ids[idx] = ids
        else:
            self._tag_ids[idx[overwrite]] = ids[overwrite]
        self._soft[idx] = True

    # -- bulk views ----------------------------------------------------------

    @property
    def resident_indices(self) -> np.ndarray:
        """Resident page indices, ascending (int64 array)."""
        return np.nonzero(self._resident)[0]

    def dump_pages(self, incremental: bool = False) -> Tuple[Tuple[int, ...], Tuple[str, ...]]:
        """(indices, content tags) of pages a dump would copy out.

        ``incremental=True`` restricts to soft-dirty pages — what a
        second pre-dump pass copies after ``clear_refs``.
        """
        mask = self._resident & self._soft if incremental else self._resident
        idx = np.nonzero(mask)[0]
        tags = TAGS.tags_of(self._tag_ids[idx])
        return tuple(idx.tolist()), tuple(tags)

    def touched_indices(self, floor: bool = False) -> np.ndarray:
        """Resident pages touched since the last soft-dirty clear.

        ``floor=True`` returns every resident page (kinds whose bits
        the working-set tracker treats as always-hot).
        """
        mask = self._resident if floor else self._resident & self._soft
        return np.nonzero(mask)[0]

    def clear_soft_dirty(self) -> None:
        self._soft[:] = False

    def iter_pages(self) -> Iterator[Page]:
        """Yield resident pages in index order (snapshots)."""
        idx = np.nonzero(self._resident)[0]
        ids = self._tag_ids[idx].tolist()
        dirt = self._dirty[idx].tolist()
        soft = self._soft[idx].tolist()
        tag = TAGS.tag
        for i, t, d, s in zip(idx.tolist(), ids, dirt, soft):
            yield Page(index=i, content_tag=tag(t), dirty=d, soft_dirty=s)

    @property
    def pages(self) -> Dict[int, Page]:
        """Materialized {index: Page} snapshot (compatibility view).

        Kept for inspection and tests; hot paths should use the bulk
        APIs. Mutating the returned pages does not write back.
        """
        return {page.index: page for page in self.iter_pages()}


class SlowVMA(_VMABase):
    """Reference dict-of-``Page`` pagemap (the pre-vectorization path).

    Selected with ``REPRO_SLOW_PAGEMAP=1`` or :func:`set_slow_pagemap`.
    Kept semantically identical to :class:`VMA` — the equivalence
    property suite pins the two together — and used by the kernel
    throughput bench as the speedup denominator.
    """

    __slots__ = ("start", "length", "kind", "prot", "file_path",
                 "file_offset", "label", "_pages")

    def __init__(
        self,
        start: int = 0,
        length: int = PAGE_SIZE,
        kind: VMAKind = VMAKind.ANON,
        prot: str = "rw-",
        file_path: Optional[str] = None,
        file_offset: int = 0,
        label: str = "",
    ) -> None:
        self._init_common(start, length, kind, prot, file_path, file_offset, label)
        self._pages: Dict[int, Page] = {}

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    def touch(self, page_index: int, content_tag: str = "", dirty: bool = True) -> Page:
        if not 0 <= page_index < self.page_count:
            raise MemoryError_(
                f"page index {page_index} out of range for VMA of {self.page_count} pages"
            )
        page = self._pages.get(page_index)
        if page is None:
            page = Page(index=page_index, content_tag=content_tag, dirty=dirty)
            self._pages[page_index] = page
        else:
            page.dirty = page.dirty or dirty
            if content_tag:
                page.content_tag = content_tag
        page.soft_dirty = True
        return page

    def touch_range(self, first: int, count: int, content_tag: str = "") -> None:
        if count <= 0:
            return
        if first < 0 or first + count > self.page_count:
            raise MemoryError_(
                f"page range [{first},{first + count}) out of range "
                f"for VMA of {self.page_count} pages"
            )
        for i in range(first, first + count):
            self.touch(i, content_tag=content_tag)

    def populate_pages(self, indices: Sequence[int], tags: Sequence[str],
                       dirty: bool = False) -> None:
        for index, tag in zip(indices, tags):
            self.touch(index, content_tag=tag, dirty=dirty)

    @property
    def resident_indices(self) -> np.ndarray:
        return np.fromiter(sorted(self._pages), dtype=np.int64,
                           count=len(self._pages))

    def dump_pages(self, incremental: bool = False) -> Tuple[Tuple[int, ...], Tuple[str, ...]]:
        indices = []
        tags = []
        for index in sorted(self._pages):
            page = self._pages[index]
            if incremental and not page.soft_dirty:
                continue
            indices.append(index)
            tags.append(page.content_tag)
        return tuple(indices), tuple(tags)

    def touched_indices(self, floor: bool = False) -> np.ndarray:
        hits = sorted(
            index for index, page in self._pages.items()
            if floor or page.soft_dirty
        )
        return np.fromiter(hits, dtype=np.int64, count=len(hits))

    def clear_soft_dirty(self) -> None:
        for page in self._pages.values():
            page.soft_dirty = False

    def iter_pages(self) -> Iterator[Page]:
        for index in sorted(self._pages):
            yield self._pages[index]

    @property
    def pages(self) -> Dict[int, Page]:
        return self._pages


# -- backend selection -------------------------------------------------------

_SLOW_PAGEMAP = os.environ.get("REPRO_SLOW_PAGEMAP", "") not in ("", "0")


def set_slow_pagemap(enabled: bool) -> None:
    """Switch the pagemap backend new mappings use (see module docs).

    Runtime switchable so the kernel bench can measure both paths in
    one process; existing VMAs keep whichever backend built them.
    """
    global _SLOW_PAGEMAP
    _SLOW_PAGEMAP = bool(enabled)


def slow_pagemap_enabled() -> bool:
    return _SLOW_PAGEMAP


def pagemap_backend() -> Type[_VMABase]:
    """The VMA class new mappings are built from."""
    return SlowVMA if _SLOW_PAGEMAP else VMA


class AddressSpace:
    """An ordered collection of non-overlapping VMAs."""

    def __init__(self) -> None:
        self._vmas: List[_VMABase] = []
        self._next_mmap_base = 0x7F00_0000_0000

    # -- mapping -------------------------------------------------------------

    def mmap(
        self,
        length: int,
        kind: VMAKind,
        prot: str = "rw-",
        start: Optional[int] = None,
        file_path: Optional[str] = None,
        file_offset: int = 0,
        label: str = "",
        populate: bool = False,
        content_tag: str = "",
    ) -> _VMABase:
        """Create a mapping; kernel picks the address unless ``start`` given."""
        length = -(-length // PAGE_SIZE) * PAGE_SIZE  # round up to page multiple
        if start is None:
            start = self._next_mmap_base
            self._next_mmap_base += length + PAGE_SIZE  # guard page gap
        vma = pagemap_backend()(
            start=start,
            length=length,
            kind=kind,
            prot=prot,
            file_path=file_path,
            file_offset=file_offset,
            label=label,
        )
        for existing in self._vmas:
            if existing.overlaps(vma):
                raise MemoryError_(
                    f"mapping [{hex(vma.start)},{hex(vma.end)}) overlaps "
                    f"[{hex(existing.start)},{hex(existing.end)}) ({existing.label})"
                )
        self._vmas.append(vma)
        self._vmas.sort(key=lambda v: v.start)
        # Keep the allocator above every mapping, including ones placed
        # at explicit addresses (e.g. by a checkpoint restore).
        self._next_mmap_base = max(self._next_mmap_base, vma.end + PAGE_SIZE)
        if populate:
            vma.touch_range(0, vma.page_count, content_tag=content_tag)
        return vma

    def munmap(self, vma: _VMABase) -> None:
        try:
            self._vmas.remove(vma)
        except ValueError:
            raise MemoryError_(f"VMA at {hex(vma.start)} not mapped in this address space")

    def clear(self) -> None:
        """Drop every mapping (the effect of ``execve``)."""
        self._vmas.clear()

    # -- inspection ----------------------------------------------------------

    @property
    def vmas(self) -> Tuple[_VMABase, ...]:
        return tuple(self._vmas)

    def find(self, addr: int) -> Optional[_VMABase]:
        for vma in self._vmas:
            if vma.start <= addr < vma.end:
                return vma
        return None

    def find_by_label(self, label: str) -> Optional[_VMABase]:
        for vma in self._vmas:
            if vma.label == label:
                return vma
        return None

    @property
    def rss_bytes(self) -> int:
        return sum(v.resident_bytes for v in self._vmas)

    @property
    def rss_mib(self) -> float:
        return self.rss_bytes / (1024 * 1024)

    @property
    def mapped_bytes(self) -> int:
        return sum(v.length for v in self._vmas)

    def iter_resident(self) -> Iterator[Tuple[_VMABase, Page]]:
        """Yield (vma, page) for every resident page, address order.

        This is exactly the view ``/proc/<pid>/pagemap`` gives CRIU.
        """
        for vma in self._vmas:
            for page in vma.iter_pages():
                yield vma, page

    def clear_soft_dirty(self) -> None:
        """Model writing ``4`` to ``/proc/<pid>/clear_refs`` (pre-dump)."""
        for vma in self._vmas:
            vma.clear_soft_dirty()

    def grow_anon(self, label: str, mib: float, kind: VMAKind = VMAKind.ANON,
                  content_tag: str = "") -> _VMABase:
        """Convenience: map and populate ``mib`` MiB of anonymous memory."""
        pages = max(1, int(round(mib * PAGES_PER_MIB)))
        return self.mmap(
            length=pages * PAGE_SIZE,
            kind=kind,
            label=label,
            populate=True,
            content_tag=content_tag,
        )
