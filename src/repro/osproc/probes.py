"""Syscall/lifecycle probe registry — the repo's bpftrace analog.

The paper instrumented CLONE and EXEC with bpftrace system-call probes
(§4.2.1). Here, the simulated kernel publishes enter/exit events for
every syscall it executes and the benchmark tracer subscribes to them,
so phase durations in the Figure 4 reproduction are *measured* from the
event stream rather than read out of the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional


@dataclass(frozen=True)
class SyscallRecord:
    """One probe event."""

    syscall: str
    pid: int
    phase: str          # "enter" | "exit"
    timestamp: float    # virtual ms
    detail: str = ""


ProbeCallback = Callable[[SyscallRecord], None]


class ProbeRegistry:
    """Subscription hub for syscall probes.

    Subscribe to a specific syscall name or to ``"*"`` for everything,
    mirroring bpftrace's ``tracepoint:syscalls:sys_enter_*`` wildcards.
    """

    def __init__(self) -> None:
        self._enter: Dict[str, List[ProbeCallback]] = {}
        self._exit: Dict[str, List[ProbeCallback]] = {}
        self.history: List[SyscallRecord] = []
        self.record_history = False
        # Deterministic count of probe events published since boot —
        # the numerator the kernel throughput bench divides wall-clock
        # time into (simulated work is identical across backends, so
        # events/sec differences are purely dispatch speed).
        self.events_emitted = 0

    def on_enter(self, syscall: str, callback: ProbeCallback) -> None:
        self._enter.setdefault(syscall, []).append(callback)

    def on_exit(self, syscall: str, callback: ProbeCallback) -> None:
        self._exit.setdefault(syscall, []).append(callback)

    def clear(self) -> None:
        self._enter.clear()
        self._exit.clear()
        self.history.clear()

    def emit(self, record: SyscallRecord) -> None:
        self.events_emitted += 1
        if self.record_history:
            self.history.append(record)
        table = self._enter if record.phase == "enter" else self._exit
        for callback in table.get(record.syscall, ()):
            callback(record)
        for callback in table.get("*", ()):
            callback(record)

    # -- convenience used by the kernel ---------------------------------------

    def syscall_enter(self, syscall: str, pid: int, timestamp: float, detail: str = "") -> None:
        self.emit(SyscallRecord(syscall, pid, "enter", timestamp, detail))

    def syscall_exit(self, syscall: str, pid: int, timestamp: float, detail: str = "") -> None:
        self.emit(SyscallRecord(syscall, pid, "exit", timestamp, detail))
