"""In-simulation filesystem, file descriptors and page cache.

CRIU records every open file descriptor in its image set and re-opens
them at restore time, so the process model needs a real (if small) VFS:
files with sizes, per-process descriptor tables, and a page cache whose
warm/cold state matters — the paper's post-restore class-loading
speed-up comes from restore leaving file pages warm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional


class FileSystemError(Exception):
    """VFS-level failure (missing path, bad descriptor...)."""


@dataclass
class VirtualFile:
    """A file in the simulated VFS. Content is optional (size matters)."""

    path: str
    size: int = 0
    content: Optional[bytes] = None
    is_socket: bool = False
    is_pipe: bool = False

    def __post_init__(self) -> None:
        if self.content is not None:
            self.size = len(self.content)


@dataclass
class FileDescriptor:
    """One entry in a process's descriptor table."""

    fd: int
    file: VirtualFile
    offset: int = 0
    flags: str = "r"
    closed: bool = False


class FileSystem:
    """Flat path → file namespace shared by all simulated processes."""

    def __init__(self) -> None:
        self._files: Dict[str, VirtualFile] = {}

    def create(self, path: str, size: int = 0, content: Optional[bytes] = None,
               is_socket: bool = False, is_pipe: bool = False) -> VirtualFile:
        if path in self._files:
            raise FileSystemError(f"path already exists: {path}")
        f = VirtualFile(path=path, size=size, content=content,
                        is_socket=is_socket, is_pipe=is_pipe)
        self._files[path] = f
        return f

    def ensure(self, path: str, size: int = 0) -> VirtualFile:
        """Create the file if missing; otherwise return the existing one."""
        existing = self._files.get(path)
        if existing is not None:
            return existing
        return self.create(path, size=size)

    def lookup(self, path: str) -> VirtualFile:
        f = self._files.get(path)
        if f is None:
            raise FileSystemError(f"no such file: {path}")
        return f

    def exists(self, path: str) -> bool:
        return path in self._files

    def remove(self, path: str) -> None:
        if path not in self._files:
            raise FileSystemError(f"no such file: {path}")
        del self._files[path]

    def iter_paths(self) -> Iterator[str]:
        return iter(sorted(self._files))


@dataclass
class _CacheEntry:
    resident_pages: int = 0
    total_pages: int = 0


class PageCache:
    """Tracks which file pages are memory-resident.

    ``warmth(path)`` in [0, 1] feeds the runtime's class-loading cost:
    reading a file whose pages are warm skips the per-byte I/O cost —
    the mechanism behind the paper's PB-NOWarmup numbers.
    """

    PAGE = 4096

    def __init__(self) -> None:
        self._entries: Dict[str, _CacheEntry] = {}

    def _entry(self, file: VirtualFile) -> _CacheEntry:
        entry = self._entries.get(file.path)
        if entry is None:
            entry = _CacheEntry(total_pages=max(1, -(-file.size // self.PAGE)))
            self._entries[file.path] = entry
        return entry

    def warm(self, file: VirtualFile, fraction: float = 1.0) -> None:
        """Bring ``fraction`` of the file's pages into the cache."""
        entry = self._entry(file)
        target = int(round(entry.total_pages * max(0.0, min(1.0, fraction))))
        entry.resident_pages = max(entry.resident_pages, target)

    def evict(self, file: VirtualFile) -> None:
        entry = self._entries.get(file.path)
        if entry is not None:
            entry.resident_pages = 0

    def drop_all(self) -> None:
        """Model ``echo 3 > /proc/sys/vm/drop_caches``."""
        for entry in self._entries.values():
            entry.resident_pages = 0

    def warmth(self, file: VirtualFile) -> float:
        entry = self._entries.get(file.path)
        if entry is None or entry.total_pages == 0:
            return 0.0
        return entry.resident_pages / entry.total_pages
