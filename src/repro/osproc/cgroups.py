"""Memory cgroups: per-container limits and the OOM killer.

FaaS platforms run every replica inside a memory-limited container
(AWS Lambda's memory setting, OpenFaaS limits). The model provides a
v2-style memory controller: processes attach to a cgroup, the cgroup
tracks their RSS against ``memory.max``, and :meth:`MemoryCgroup.enforce`
OOM-kills the largest member when the limit is breached — which is how
an over-provisioned snapshot restore fails in production.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.osproc.kernel import Kernel
from repro.osproc.process import Process


class CgroupError(Exception):
    """Cgroup hierarchy misuse."""


@dataclass
class OomEvent:
    """One OOM kill, for observability."""

    cgroup: str
    pid: int
    comm: str
    rss_mib: float
    limit_mib: float
    at_ms: float


class MemoryCgroup:
    """One memory-controller group."""

    def __init__(self, kernel: Kernel, name: str,
                 limit_mib: Optional[float] = None) -> None:
        if limit_mib is not None and limit_mib <= 0:
            raise CgroupError(f"memory.max must be positive, got {limit_mib}")
        self.kernel = kernel
        self.name = name
        self.limit_mib = limit_mib  # None = "max" (unlimited)
        self._members: Set[int] = set()
        self.oom_events: List[OomEvent] = []
        self.peak_mib = 0.0

    # -- membership ---------------------------------------------------------------

    def attach(self, proc: Process) -> None:
        if not proc.alive:
            raise CgroupError(f"cannot attach dead pid {proc.pid}")
        self._members.add(proc.pid)

    def detach(self, proc: Process) -> None:
        self._members.discard(proc.pid)

    def members(self) -> List[Process]:
        live = []
        for pid in sorted(self._members):
            proc = self.kernel.processes.get(pid)
            if proc is not None and proc.alive:
                live.append(proc)
        self._members = {p.pid for p in live}
        return live

    # -- accounting -----------------------------------------------------------------

    @property
    def usage_mib(self) -> float:
        usage = sum(p.rss_mib for p in self.members())
        self.peak_mib = max(self.peak_mib, usage)
        return usage

    @property
    def over_limit(self) -> bool:
        return self.limit_mib is not None and self.usage_mib > self.limit_mib

    # -- enforcement -------------------------------------------------------------------

    def enforce(self) -> List[OomEvent]:
        """OOM-kill the largest members until usage fits the limit."""
        killed: List[OomEvent] = []
        if self.limit_mib is None:
            return killed
        while self.usage_mib > self.limit_mib:
            victims = self.members()
            if not victims:
                break
            victim = max(victims, key=lambda p: p.rss_mib)
            event = OomEvent(
                cgroup=self.name,
                pid=victim.pid,
                comm=victim.comm,
                rss_mib=victim.rss_mib,
                limit_mib=self.limit_mib,
                at_ms=self.kernel.clock.now,
            )
            self.kernel.kill(victim.pid)
            self._members.discard(victim.pid)
            self.oom_events.append(event)
            killed.append(event)
        return killed


class CgroupManager:
    """Flat registry of memory cgroups (one per container, typically)."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self._groups: Dict[str, MemoryCgroup] = {}

    def create(self, name: str, limit_mib: Optional[float] = None) -> MemoryCgroup:
        if name in self._groups:
            raise CgroupError(f"cgroup {name!r} already exists")
        group = MemoryCgroup(self.kernel, name, limit_mib=limit_mib)
        self._groups[name] = group
        return group

    def get(self, name: str) -> MemoryCgroup:
        group = self._groups.get(name)
        if group is None:
            raise CgroupError(f"no cgroup {name!r}")
        return group

    def remove(self, name: str) -> None:
        group = self._groups.pop(name, None)
        if group is None:
            raise CgroupError(f"no cgroup {name!r}")
        if group.members():
            raise CgroupError(f"cgroup {name!r} still has members")

    def names(self) -> List[str]:
        return sorted(self._groups)

    def enforce_all(self) -> List[OomEvent]:
        events: List[OomEvent] = []
        for group in self._groups.values():
            events.extend(group.enforce())
        return events
