"""Simulated operating-system substrate.

Implements the pieces of Linux that CRIU-style checkpoint/restore
manipulates: processes and threads with address spaces made of VMAs and
4 KiB pages, a file table and page cache, namespaces, a cgroup freezer,
ptrace, and a ``/proc/<pid>/pagemap`` view. System calls are charged
against the simulation clock using the calibrated cost model and are
observable through the probe registry (the repo's bpftrace analog).
"""

from repro.osproc.kernel import Kernel, KernelError, PermissionDenied
from repro.osproc.memory import AddressSpace, MemoryError_, Page, VMA, VMAKind, PAGE_SIZE
from repro.osproc.filesystem import FileDescriptor, FileSystem, PageCache, VirtualFile
from repro.osproc.namespaces import Namespace, NamespaceKind, NamespaceSet
from repro.osproc.process import Capability, Process, ProcessState, Thread, ThreadState
from repro.osproc.probes import ProbeRegistry, SyscallRecord

__all__ = [
    "Kernel",
    "KernelError",
    "PermissionDenied",
    "AddressSpace",
    "MemoryError_",
    "Page",
    "VMA",
    "VMAKind",
    "PAGE_SIZE",
    "FileDescriptor",
    "FileSystem",
    "PageCache",
    "VirtualFile",
    "Namespace",
    "NamespaceKind",
    "NamespaceSet",
    "Capability",
    "Process",
    "ProcessState",
    "Thread",
    "ThreadState",
    "ProbeRegistry",
    "SyscallRecord",
]
