"""Linux namespace model.

CRIU recreates the namespaces a process lived in when it restores the
snapshot; containerized FaaS replicas each get their own set. The model
tracks identity and membership so checkpoint images can record them and
restore can verify it rebuilt an equivalent environment.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet


class NamespaceKind(Enum):
    PID = "pid"
    MNT = "mnt"
    NET = "net"
    IPC = "ipc"
    UTS = "uts"
    USER = "user"
    CGROUP = "cgroup"


_ns_ids = itertools.count(0x1000)


@dataclass(frozen=True)
class Namespace:
    """One namespace instance, identified like ``pid:[4026531836]``."""

    kind: NamespaceKind
    ns_id: int

    @classmethod
    def fresh(cls, kind: NamespaceKind) -> "Namespace":
        return cls(kind=kind, ns_id=next(_ns_ids))

    def __str__(self) -> str:
        return f"{self.kind.value}:[{self.ns_id}]"


class NamespaceSet:
    """The full set of namespaces a process belongs to."""

    def __init__(self, namespaces: Dict[NamespaceKind, Namespace] | None = None) -> None:
        if namespaces is None:
            namespaces = {kind: Namespace.fresh(kind) for kind in NamespaceKind}
        missing = set(NamespaceKind) - set(namespaces)
        if missing:
            raise ValueError(f"namespace set missing kinds: {sorted(k.value for k in missing)}")
        self._namespaces = dict(namespaces)

    def get(self, kind: NamespaceKind) -> Namespace:
        return self._namespaces[kind]

    def clone_with_new(self, *kinds: NamespaceKind) -> "NamespaceSet":
        """Share all namespaces except ``kinds``, which get fresh ones.

        This is the effect of ``clone(2)`` with ``CLONE_NEW*`` flags.
        """
        out = dict(self._namespaces)
        for kind in kinds:
            out[kind] = Namespace.fresh(kind)
        return NamespaceSet(out)

    def ids(self) -> Dict[str, int]:
        """Serializable view, used by checkpoint images."""
        return {kind.value: ns.ns_id for kind, ns in self._namespaces.items()}

    def matches(self, ids: Dict[str, int]) -> bool:
        return self.ids() == ids

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NamespaceSet):
            return NotImplemented
        return self._namespaces == other._namespaces

    def __hash__(self) -> int:
        return hash(frozenset(self._namespaces.items()))
