"""The simulated kernel: syscalls, freezer, ptrace, procfs.

Every syscall charges virtual time from the calibrated cost model and
publishes enter/exit probe events (see :mod:`repro.osproc.probes`), so
benchmark tracers observe the same CLONE/EXEC boundaries the paper
measured with bpftrace.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.osproc.filesystem import FileSystem, PageCache, VirtualFile
from repro.osproc.memory import PAGE_SIZE, AddressSpace, Page, VMA, VMAKind
from repro.osproc.namespaces import NamespaceKind, NamespaceSet
from repro.osproc.probes import ProbeRegistry
from repro.osproc.process import Capability, Process, ProcessState, ThreadState
from repro.sim.clock import SimClock
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sim.rng import RandomStreams


class KernelError(Exception):
    """Generic kernel-level failure (ESRCH, EINVAL...)."""


class PermissionDenied(KernelError):
    """EPERM: caller lacks the capability the operation needs."""


PARASITE_BLOB_PAGES = 4  # size of the CRIU parasite injected blob


class Kernel:
    """Facade over the whole simulated OS.

    One kernel instance per experiment world. It owns the process
    table, the VFS and page cache, and shares the experiment's clock,
    cost model and RNG streams.
    """

    INIT_PID = 1

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        costs: CostModel = DEFAULT_COST_MODEL,
        streams: Optional[RandomStreams] = None,
    ) -> None:
        self.clock = clock or SimClock()
        self.costs = costs
        self.streams = streams or RandomStreams(seed=0)
        self.fs = FileSystem()
        self.page_cache = PageCache()
        self.probes = ProbeRegistry()
        # Telemetry hub (repro.obs.Observability) or None; instrumented
        # code treats None as "telemetry off" and pays nothing.
        self.obs = None
        # Fault injector (repro.faults.FaultInjector) or None; site
        # checks treat None as "never fire" and draw no randomness.
        self.faults = None
        # Phase profiler (repro.obs.profile.PhaseProfiler) or None;
        # attribution sites treat None as "profiling off" — no time is
        # charged and no randomness drawn either way.
        self.profile = None
        # Working-set tracker (repro.criu.workingset.WorkingSetTracker)
        # or None; installed lazily by the first WORKING_SET restore so
        # eager-only worlds never pay for (or observe) it.
        self.working_sets = None
        # Flight recorder (repro.obs.flight.FlightRecorder) or None;
        # lifecycle instrumentation treats None as "recorder off" and
        # pays one attribute load per event site.
        self.flight = None
        self.processes: Dict[int, Process] = {}
        self._next_pid = 100
        self._tracees: Dict[int, int] = {}  # target pid -> tracer pid
        init = Process(pid=self.INIT_PID, ppid=0, comm="init",
                       capabilities={Capability.SYS_ADMIN})
        init.start_time = self.clock.now
        self.processes[init.pid] = init

    # -- internals -------------------------------------------------------------

    def _alloc_pid(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def _charge(self, syscall: str, pid: int, median_cost: float, detail: str = "") -> float:
        """Run a syscall's cost through probes + clock; return duration."""
        self.probes.syscall_enter(syscall, pid, self.clock.now, detail)
        duration = self.costs.jitter(median_cost, self.streams, f"syscall.{syscall}")
        self.clock.advance(duration)
        self.probes.syscall_exit(syscall, pid, self.clock.now, detail)
        return duration

    def get(self, pid: int) -> Process:
        proc = self.processes.get(pid)
        if proc is None:
            raise KernelError(f"ESRCH: no process with pid {pid}")
        return proc

    @property
    def init_process(self) -> Process:
        return self.processes[self.INIT_PID]

    def live_processes(self) -> List[Process]:
        return [p for p in self.processes.values() if p.alive]

    # -- process lifecycle -------------------------------------------------------

    def clone(
        self,
        parent: Process,
        comm: Optional[str] = None,
        new_namespaces: Iterable[NamespaceKind] = (),
        target_pid: Optional[int] = None,
        inherit_capabilities: bool = True,
    ) -> Process:
        """``clone(2)``: create a child of ``parent``.

        ``target_pid`` requests a specific pid (what CRIU does on
        restore via ``/proc/sys/kernel/ns_last_pid``); it requires
        ``CAP_SYS_ADMIN`` or ``CAP_CHECKPOINT_RESTORE`` [Linux 2020].
        """
        if not parent.alive:
            raise KernelError(f"parent pid {parent.pid} is not alive")
        if target_pid is not None:
            if not (parent.has_capability(Capability.SYS_ADMIN)
                    or parent.has_capability(Capability.CHECKPOINT_RESTORE)):
                raise PermissionDenied(
                    "selecting a clone pid requires CAP_SYS_ADMIN or CAP_CHECKPOINT_RESTORE"
                )
            if target_pid in self.processes and self.processes[target_pid].alive:
                raise KernelError(f"pid {target_pid} already in use")
            pid = target_pid
            self._next_pid = max(self._next_pid, pid + 1)
        else:
            pid = self._alloc_pid()
        duration = self._charge("clone", parent.pid, self.costs.clone_ms,
                                detail=comm or "")
        if self.profile is not None:
            self.profile.record("CLONE", duration, pid=pid, comm=comm or "")
        namespaces = parent.namespaces.clone_with_new(*new_namespaces)
        child = Process(
            pid=pid,
            ppid=parent.pid,
            comm=comm or parent.comm,
            argv=list(parent.argv),
            namespaces=namespaces,
            capabilities=set(parent.capabilities) if inherit_capabilities else set(),
        )
        child.start_time = self.clock.now
        self.processes[pid] = child
        parent.children.append(pid)
        return child

    def execve(self, proc: Process, path: str, argv: Optional[List[str]] = None) -> None:
        """``execve(2)``: replace the process image with ``path``."""
        if not proc.alive:
            raise KernelError(f"pid {proc.pid} is not alive")
        binary = self.fs.lookup(path)  # ENOENT if missing
        duration = self._charge("execve", proc.pid, self.costs.exec_ms,
                                detail=path)
        if self.profile is not None:
            self.profile.record("EXEC", duration, pid=proc.pid, path=path)
        proc.comm = path.rsplit("/", 1)[-1]
        proc.argv = list(argv or [path])
        proc.payload.clear()
        space = proc.address_space
        space.clear()
        text_pages = max(1, -(-binary.size // PAGE_SIZE))
        vma = space.mmap(
            length=text_pages * PAGE_SIZE,
            kind=VMAKind.CODE,
            prot="r-x",
            file_path=path,
            label="text",
        )
        vma.touch_range(0, min(text_pages, 16), content_tag=f"text:{path}")
        space.mmap(length=8 * PAGE_SIZE, kind=VMAKind.STACK, label="stack",
                   populate=True, content_tag="stack")
        self.page_cache.warm(binary, fraction=1.0)

    def exit(self, proc: Process, code: int = 0) -> None:
        """``exit_group(2)``."""
        if proc.state is ProcessState.DEAD:
            return
        self._charge("exit_group", proc.pid, 0.05)
        proc.state = ProcessState.ZOMBIE
        proc.exit_code = code
        for thread in proc.threads:
            thread.state = ThreadState.STOPPED
        parent = self.processes.get(proc.ppid)
        if parent is None or not parent.alive:
            self._reap(proc)

    def wait(self, parent: Process, pid: int) -> int:
        """``waitpid(2)``: reap a zombie child, returning its exit code."""
        child = self.get(pid)
        if child.ppid != parent.pid:
            raise KernelError(f"pid {pid} is not a child of {parent.pid}")
        if child.state is not ProcessState.ZOMBIE:
            raise KernelError(f"pid {pid} has not exited")
        code = child.exit_code or 0
        self._reap(child)
        parent.children.remove(pid)
        return code

    def kill(self, pid: int) -> None:
        """``SIGKILL``: terminate and reap immediately (platform GC path)."""
        proc = self.get(pid)
        if proc.state is ProcessState.DEAD:
            return
        proc.exit_code = -9
        self._reap(proc)
        parent = self.processes.get(proc.ppid)
        if parent and pid in parent.children:
            parent.children.remove(pid)

    def _reap(self, proc: Process) -> None:
        proc.state = ProcessState.DEAD
        proc.address_space.clear()
        self._tracees.pop(proc.pid, None)

    # -- cgroup freezer -----------------------------------------------------------

    def freeze(self, proc: Process) -> None:
        """Freeze the whole thread group (checkpoint precondition)."""
        if proc.state is not ProcessState.RUNNING:
            raise KernelError(f"cannot freeze pid {proc.pid} in state {proc.state.value}")
        self._charge("freezer_freeze", proc.pid, self.costs.freeze_ms)
        proc.state = ProcessState.FROZEN
        for thread in proc.threads:
            thread.state = ThreadState.FROZEN

    def thaw(self, proc: Process) -> None:
        if proc.state is not ProcessState.FROZEN:
            raise KernelError(f"cannot thaw pid {proc.pid} in state {proc.state.value}")
        self._charge("freezer_thaw", proc.pid, 0.1)
        proc.state = ProcessState.RUNNING
        for thread in proc.threads:
            thread.state = ThreadState.RUNNING

    # -- ptrace ---------------------------------------------------------------------

    def _check_cr_capability(self, caller: Process) -> None:
        if not (caller.has_capability(Capability.SYS_ADMIN)
                or caller.has_capability(Capability.CHECKPOINT_RESTORE)):
            raise PermissionDenied(
                f"pid {caller.pid} lacks CAP_SYS_ADMIN/CAP_CHECKPOINT_RESTORE"
            )

    def ptrace_seize(self, tracer: Process, target: Process) -> None:
        """``PTRACE_SEIZE``: attach without stopping the target."""
        self._check_cr_capability(tracer)
        if target.pid in self._tracees:
            raise KernelError(f"pid {target.pid} already traced")
        if not target.alive:
            raise KernelError(f"pid {target.pid} is not alive")
        self._charge("ptrace", tracer.pid, 0.05, detail="SEIZE")
        self._tracees[target.pid] = tracer.pid

    def ptrace_inject_parasite(self, tracer: Process, target: Process) -> VMA:
        """Map the CRIU parasite blob into the target's address space."""
        if self._tracees.get(target.pid) != tracer.pid:
            raise KernelError(f"pid {tracer.pid} does not trace pid {target.pid}")
        if target.address_space.find_by_label("criu-parasite") is not None:
            raise KernelError(f"pid {target.pid} already carries a parasite mapping")
        self._charge("ptrace", tracer.pid, self.costs.parasite_inject_ms, detail="INJECT")
        vma = target.address_space.mmap(
            length=PARASITE_BLOB_PAGES * PAGE_SIZE,
            kind=VMAKind.PARASITE,
            prot="r-x",
            label="criu-parasite",
            populate=True,
            content_tag="parasite",
        )
        return vma

    def ptrace_remove_parasite(self, tracer: Process, target: Process) -> None:
        if self._tracees.get(target.pid) != tracer.pid:
            raise KernelError(f"pid {tracer.pid} does not trace pid {target.pid}")
        vma = target.address_space.find_by_label("criu-parasite")
        if vma is None:
            raise KernelError(f"pid {target.pid} has no parasite mapping")
        self._charge("ptrace", tracer.pid, 0.1, detail="CURE")
        target.address_space.munmap(vma)

    def ptrace_detach(self, tracer: Process, target: Process) -> None:
        if self._tracees.get(target.pid) != tracer.pid:
            raise KernelError(f"pid {tracer.pid} does not trace pid {target.pid}")
        self._charge("ptrace", tracer.pid, 0.05, detail="DETACH")
        del self._tracees[target.pid]

    def tracer_of(self, pid: int) -> Optional[int]:
        return self._tracees.get(pid)

    # -- procfs ------------------------------------------------------------------------

    def pagemap(self, pid: int) -> Iterator[Tuple[VMA, Page]]:
        """``/proc/<pid>/pagemap``: every resident page, address order."""
        return self.get(pid).address_space.iter_resident()

    def proc_maps(self, pid: int) -> List[str]:
        """``/proc/<pid>/maps``-style summary lines."""
        lines = []
        for vma in self.get(pid).address_space.vmas:
            backing = vma.file_path or ("[stack]" if vma.kind is VMAKind.STACK else "[anon]")
            lines.append(
                f"{vma.start:012x}-{vma.end:012x} {vma.prot}p "
                f"{vma.kind.value:<10} {backing} rss={vma.resident_pages}p"
            )
        return lines

    def clear_refs(self, pid: int) -> None:
        """``/proc/<pid>/clear_refs`` = 4: reset soft-dirty (pre-dump)."""
        self.get(pid).address_space.clear_soft_dirty()
