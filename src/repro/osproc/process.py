"""Processes, threads, capabilities.

The process is CRIU's unit of checkpoint: its thread group, address
space, descriptor table, namespaces and credentials all end up in the
image set. State transitions (running → frozen → dumped, or
restoring → running) follow the real tool's protocol.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set

from repro.osproc.filesystem import FileDescriptor, VirtualFile
from repro.osproc.memory import AddressSpace
from repro.osproc.namespaces import NamespaceSet


class ProcessState(Enum):
    RUNNING = "running"
    FROZEN = "frozen"          # cgroup freezer engaged (checkpoint prep)
    TRACED = "traced"          # under ptrace seize
    ZOMBIE = "zombie"
    DEAD = "dead"
    RESTORING = "restoring"    # morphing from a checkpoint image


class ThreadState(Enum):
    RUNNING = "running"
    SLEEPING = "sleeping"
    FROZEN = "frozen"
    STOPPED = "stopped"


class Capability(Enum):
    """The two capabilities relevant to checkpoint/restore (§3.2)."""

    SYS_ADMIN = "CAP_SYS_ADMIN"
    CHECKPOINT_RESTORE = "CAP_CHECKPOINT_RESTORE"


_tids = itertools.count(1)


@dataclass
class Thread:
    tid: int
    name: str = ""
    state: ThreadState = ThreadState.RUNNING

    @classmethod
    def fresh(cls, name: str = "") -> "Thread":
        return cls(tid=next(_tids), name=name)


class Process:
    """A simulated process (thread group leader + siblings)."""

    def __init__(
        self,
        pid: int,
        ppid: int,
        comm: str,
        argv: Optional[List[str]] = None,
        namespaces: Optional[NamespaceSet] = None,
        capabilities: Optional[Set[Capability]] = None,
    ) -> None:
        self.pid = pid
        self.ppid = ppid
        self.comm = comm
        self.argv = list(argv or [comm])
        self.state = ProcessState.RUNNING
        self.exit_code: Optional[int] = None
        self.address_space = AddressSpace()
        self.namespaces = namespaces or NamespaceSet()
        self.capabilities: Set[Capability] = set(capabilities or ())
        self.threads: List[Thread] = [Thread.fresh(name=comm)]
        self.fds: Dict[int, FileDescriptor] = {}
        self._next_fd = 3  # 0/1/2 reserved for stdio
        self.children: List[int] = []
        self.start_time: float = 0.0
        self.environ: Dict[str, str] = {}
        # Arbitrary per-process payload (the runtime object lives here).
        self.payload: Dict[str, object] = {}

    # -- threads -------------------------------------------------------------

    def spawn_thread(self, name: str = "") -> Thread:
        if self.state is not ProcessState.RUNNING:
            raise RuntimeError(f"cannot spawn thread in state {self.state}")
        thread = Thread.fresh(name=name or self.comm)
        self.threads.append(thread)
        return thread

    @property
    def alive(self) -> bool:
        return self.state in (
            ProcessState.RUNNING,
            ProcessState.FROZEN,
            ProcessState.TRACED,
            ProcessState.RESTORING,
        )

    # -- descriptors ---------------------------------------------------------

    def open_fd(self, file: VirtualFile, flags: str = "r") -> FileDescriptor:
        fd = FileDescriptor(fd=self._next_fd, file=file, flags=flags)
        self.fds[fd.fd] = fd
        self._next_fd += 1
        return fd

    def close_fd(self, fd: int) -> None:
        entry = self.fds.pop(fd, None)
        if entry is None:
            raise KeyError(f"pid {self.pid} has no fd {fd}")
        entry.closed = True

    def open_files(self) -> List[FileDescriptor]:
        return [d for d in self.fds.values() if not d.closed]

    # -- bookkeeping ---------------------------------------------------------

    @property
    def rss_mib(self) -> float:
        return self.address_space.rss_mib

    def has_capability(self, cap: Capability) -> bool:
        return cap in self.capabilities

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Process(pid={self.pid}, comm={self.comm!r}, state={self.state.value})"
