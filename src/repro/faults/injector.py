"""The seeded fault injector installed on a kernel.

Mirrors :class:`repro.obs.Observability`: one injector per simulated
world, attached to ``kernel.faults``. Instrumented code asks
:func:`repro.faults.should_fire` whether a named site misbehaves right
now; a world without an injector pays one attribute load and never
draws randomness, so fault-free runs are bit-identical to a build
without the framework.

Determinism: every site draws from its own named RNG stream
(``fault.<site>``) derived from the world's master seed, so the fault
schedule is a pure function of (seed, sequence of site crossings) and
adding a new site never perturbs the draws of existing ones. The full
schedule is recorded and can be digested for CI determinism checks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import obs
from repro.faults.model import FaultPlan, FaultSpec


@dataclass(frozen=True)
class FaultRecord:
    """One evaluated injection decision (fired or not)."""

    seq: int
    site: str
    at_ms: float
    draw: float
    fired: bool
    detail: str = ""

    def line(self) -> str:
        mark = "FIRE" if self.fired else "pass"
        return (f"{self.seq:06d} {self.site:<15} {mark} "
                f"draw={self.draw:.6f} at={self.at_ms:.3f} {self.detail}")


class FaultInjector:
    """Per-world fault oracle with a reproducible schedule log."""

    def __init__(self, kernel, plan: FaultPlan) -> None:
        self.kernel = kernel
        self.plan = plan
        self.records: List[FaultRecord] = []
        self.fired: Dict[str, int] = {}
        self._seq = 0

    # -- decisions ---------------------------------------------------------------

    def should_fire(self, site: str, detail: str = "") -> bool:
        """Evaluate ``site`` once; record and count the decision.

        Sites absent from the plan (or at probability 0) consume no
        randomness at all, so a plan only perturbs the streams of the
        sites it actually arms.
        """
        spec = self.plan.spec(site)
        if spec is None or spec.probability <= 0.0:
            return False
        if spec.max_fires is not None and self.fired.get(site, 0) >= spec.max_fires:
            return False
        draw = self.kernel.streams.get(f"fault.{site}").random()
        fires = draw < spec.probability
        self._seq += 1
        self.records.append(FaultRecord(
            seq=self._seq,
            site=site,
            at_ms=self.kernel.clock.now,
            draw=draw,
            fired=fires,
            detail=detail,
        ))
        if fires:
            self.fired[site] = self.fired.get(site, 0) + 1
            obs.record(self.kernel, obs.flight.FAULT_INJECTED, site=site,
                       seq=self._seq, fires=self.fired[site],
                       detail=detail or None)
            obs.count(self.kernel, "fault_injected_total", labels={"site": site})
        return fires

    def delay_ms(self, site: str) -> float:
        """Extra simulated latency the armed site imposes when it fires."""
        spec = self.plan.spec(site)
        return spec.effective_delay_ms if spec is not None else 0.0

    # -- schedule inspection -------------------------------------------------------

    def fired_count(self, site: Optional[str] = None) -> int:
        if site is not None:
            return self.fired.get(site, 0)
        return sum(self.fired.values())

    def schedule_lines(self) -> List[str]:
        return [r.line() for r in self.records]

    def schedule_digest(self) -> str:
        """SHA-256 over the decision schedule — equal digests mean two
        runs injected exactly the same faults at the same points."""
        hasher = hashlib.sha256()
        for record in self.records:
            hasher.update(
                f"{record.seq}|{record.site}|{record.draw:.12f}|"
                f"{record.fired}|{record.at_ms:.6f}\n".encode("utf-8")
            )
        return hasher.hexdigest()
