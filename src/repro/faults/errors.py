"""Typed platform failures.

Every error the resilience machinery is expected to *survive* derives
from :class:`PlatformError`, so platform layers can catch the family
without swallowing genuine programming errors (``TypeError`` and
friends still propagate). The hierarchy lives in :mod:`repro.faults`
because it has no dependencies of its own — ``criu``, ``core`` and
``faas`` all raise these without import cycles.
"""

from __future__ import annotations


class PlatformError(RuntimeError):
    """Base class for recoverable platform-level failures.

    Derives from ``RuntimeError`` so pre-existing call sites catching
    the platform's old untyped errors keep working.
    """


class RestoreFailed(PlatformError):
    """A snapshot restore did not produce a live process.

    ``kind`` distinguishes outright failures from hangs that a watchdog
    killed (both surface to the starter the same way: retry or fall
    back to vanilla).
    """

    def __init__(self, message: str, image_id: str = "", kind: str = "fail") -> None:
        super().__init__(message)
        self.image_id = image_id
        self.kind = kind


class SnapshotCorrupted(PlatformError):
    """A checkpoint image failed its content-digest integrity check."""

    def __init__(self, message: str, image_id: str = "") -> None:
        super().__init__(message)
        self.image_id = image_id


class ReplicaCrashed(PlatformError):
    """A function replica died while a request was in flight."""

    def __init__(self, message: str, function: str = "",
                 replica_id: int = 0) -> None:
        super().__init__(message)
        self.function = function
        self.replica_id = replica_id


class ReplicaUnavailable(PlatformError):
    """A replica was asked to serve while not in a servable state."""


class CapacityExhausted(PlatformError):
    """No replica slot is available (``max_replicas`` or node memory)."""

    def __init__(self, message: str, function: str = "",
                 max_replicas: int = 0) -> None:
        super().__init__(message)
        self.function = function
        self.max_replicas = max_replicas


class RequestTimeout(PlatformError):
    """A queued request exceeded the router's dispatch deadline."""

    def __init__(self, message: str, function: str = "",
                 waited_ms: float = 0.0) -> None:
        super().__init__(message)
        self.function = function
        self.waited_ms = waited_ms
