"""Retry policy: capped exponential backoff on simulated time.

Used by the prebake starter to bound how long a request-path cold
start keeps retrying failed restores before it gives up and falls back
to the vanilla fork/exec path. All sleeps are *virtual* — they advance
the world clock, never the wall clock — so chaos experiments stay fast
and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff between restore attempts.

    ``max_attempts`` counts restore *tries* (not retries): 3 means the
    starter restores up to three times, sleeping ``backoff_ms(i)``
    after failed attempt ``i`` for ``i < max_attempts``, then falls
    back. ``max_attempts=0`` disables the prebake path outright.
    """

    max_attempts: int = 3
    backoff_base_ms: float = 10.0
    backoff_multiplier: float = 2.0
    backoff_cap_ms: float = 1_000.0

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise ValueError(f"max_attempts must be >= 0, got {self.max_attempts}")
        if self.backoff_base_ms < 0:
            raise ValueError(
                f"backoff_base_ms must be >= 0, got {self.backoff_base_ms}"
            )
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )

    def backoff_ms(self, attempt: int) -> float:
        """Backoff after failed attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        raw = self.backoff_base_ms * self.backoff_multiplier ** (attempt - 1)
        return min(self.backoff_cap_ms, raw)

    def total_backoff_ms(self) -> float:
        """Total virtual time spent sleeping if every attempt fails.

        ``max_attempts`` tries imply ``max_attempts - 1`` sleeps (no
        sleep before the vanilla fallback).
        """
        return sum(self.backoff_ms(i) for i in range(1, self.max_attempts))


#: The platform default: three tries, 10 ms → 20 ms backoff.
DEFAULT_RETRY_POLICY = RetryPolicy()
