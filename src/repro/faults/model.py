"""The failure model: named injection sites and per-site specs.

A :class:`FaultPlan` declares, per named site, the probability that
the fault fires when execution crosses that site, plus site-specific
knobs (extra latency for hangs/slow I/O, a cap on total fires). Sites
are string names so new instrumentation points need no central enum
change, but the canonical set the platform instruments is listed in
:data:`SITES`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Optional, Tuple

# Canonical injection sites wired through the stack.
RESTORE_FAIL = "restore.fail"      # restore dies before the process resumes
RESTORE_HANG = "restore.hang"      # restore hangs; the watchdog kills it
IMAGE_CORRUPT = "image.corrupt"    # stored checkpoint image bit-rots
IO_SLOW = "io.slow"                # image page reads hit slow storage
REPLICA_CRASH = "replica.crash"    # replica dies while serving
OOM_KILL = "oom.kill"              # cgroup OOM killer fires post-request
STORE_NODE_DOWN = "store.node_down"    # a snapshot storage node crashes
STORE_PARTITION = "store.partition"    # one replica fetch hop unreachable
STORE_SLOW_SHARD = "store.slow_shard"  # a shard answers, but slowly

SITES: Tuple[str, ...] = (
    RESTORE_FAIL,
    RESTORE_HANG,
    IMAGE_CORRUPT,
    IO_SLOW,
    REPLICA_CRASH,
    OOM_KILL,
    STORE_NODE_DOWN,
    STORE_PARTITION,
    STORE_SLOW_SHARD,
)

# Default extra latency per site when the spec does not override it.
DEFAULT_DELAY_MS: Dict[str, float] = {
    RESTORE_HANG: 1_000.0,        # watchdog timeout for a hung restore
    IO_SLOW: 50.0,                # slow-disk penalty on image reads
    STORE_NODE_DOWN: 5_000.0,     # how long a crashed storage node stays down
    STORE_SLOW_SHARD: 25.0,       # straggler penalty on one shard fetch
}

# keyword spelling (underscored) -> canonical site name. Site names may
# themselves contain underscores ("store.node_down"), so the keyword
# form is derived from the site, never the other way around.
_SITE_BY_KEYWORD: Dict[str, str] = {
    site.replace(".", "_"): site for site in SITES
}


@dataclass(frozen=True)
class FaultSpec:
    """How one site misbehaves.

    ``probability`` is evaluated independently at every crossing of the
    site; ``max_fires`` (if set) stops injection after that many fires,
    which is how tests model transient faults; ``delay_ms`` is the
    extra simulated latency for latency-type sites.
    """

    site: str
    probability: float
    delay_ms: Optional[float] = None
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError(f"max_fires must be >= 0, got {self.max_fires}")
        if self.delay_ms is not None and self.delay_ms < 0:
            raise ValueError(f"delay_ms must be >= 0, got {self.delay_ms}")

    @property
    def effective_delay_ms(self) -> float:
        if self.delay_ms is not None:
            return self.delay_ms
        return DEFAULT_DELAY_MS.get(self.site, 0.0)


@dataclass
class FaultPlan:
    """A full experiment's failure model: one spec per active site."""

    specs: Dict[str, FaultSpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for site, spec in self.specs.items():
            if spec.site != site:
                raise ValueError(
                    f"spec for site {site!r} carries site name {spec.site!r}"
                )

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def of(cls, **rates_by_underscored_site: float) -> "FaultPlan":
        """Build a plan from ``site_name=probability`` keywords, with
        underscores standing in for the dots in site names::

            FaultPlan.of(restore_fail=0.5, replica_crash=0.1)

        Only the canonical :data:`SITES` are accepted — a typo'd
        keyword raises instead of silently arming a site nothing
        instruments (custom sites go through :meth:`with_spec`).
        """
        specs = {}
        for key, probability in rates_by_underscored_site.items():
            site = _SITE_BY_KEYWORD.get(key)
            if site is None:
                raise ValueError(
                    f"unknown fault site keyword {key!r}; known: "
                    f"{sorted(_SITE_BY_KEYWORD)}"
                )
            specs[site] = FaultSpec(site=site, probability=probability)
        return cls(specs=specs)

    @classmethod
    def uniform(cls, probability: float,
                sites: Iterable[str] = SITES) -> "FaultPlan":
        """The same fire probability at every listed site."""
        return cls(specs={s: FaultSpec(site=s, probability=probability)
                          for s in sites})

    def with_spec(self, spec: FaultSpec) -> "FaultPlan":
        """A copy of this plan with ``spec`` added or replaced."""
        specs = dict(self.specs)
        specs[spec.site] = spec
        return FaultPlan(specs=specs)

    def scaled(self, factor: float) -> "FaultPlan":
        """A copy with every probability multiplied by ``factor`` (capped at 1)."""
        return FaultPlan(specs={
            site: replace(spec, probability=min(1.0, spec.probability * factor))
            for site, spec in self.specs.items()
        })

    # -- queries ---------------------------------------------------------------

    def spec(self, site: str) -> Optional[FaultSpec]:
        return self.specs.get(site)

    def active_sites(self) -> Tuple[str, ...]:
        return tuple(sorted(s for s, spec in self.specs.items()
                            if spec.probability > 0.0))

    def describe(self) -> str:
        if not self.specs:
            return "faults: none"
        parts = []
        for site in sorted(self.specs):
            spec = self.specs[site]
            text = f"{site}={spec.probability:g}"
            if spec.max_fires is not None:
                text += f"(max {spec.max_fires})"
            parts.append(text)
        return "faults: " + ", ".join(parts)
