"""repro.faults — deterministic fault injection for the prebake stack.

The robustness counterpart of :mod:`repro.obs`: a seeded
:class:`FaultInjector` installs on the kernel (``kernel.faults``) and
decides, at named sites the platform instruments, whether a failure
fires. The platform's resilience machinery — restore retry with capped
backoff, vanilla fallback, snapshot quarantine-and-rebake, router
re-queue, replica health checks — is exercised against it.

Sites (see :mod:`repro.faults.model`):

* ``restore.fail`` / ``restore.hang`` — the restore dies, or hangs
  until a watchdog kills it;
* ``image.corrupt`` — the stored checkpoint image bit-rots; detected
  by content-digest verification, answered by quarantine + rebake;
* ``io.slow`` — image page reads pay a slow-storage penalty;
* ``replica.crash`` — the replica dies with a request in flight;
* ``oom.kill`` — the cgroup OOM killer takes the replica down after a
  request.

Usage::

    from repro import faults, make_world

    world = make_world(seed=42)
    plan = faults.FaultPlan.of(restore_fail=1.0)
    faults.install(world.kernel, plan)
    ...   # every restore now fails; prebake starts fall back to vanilla

Instrumented code calls the module helpers with the kernel in hand;
when no injector is installed they cost one attribute load and draw no
randomness, so fault-free worlds are bit-identical to pre-framework
builds.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.errors import (
    CapacityExhausted,
    PlatformError,
    ReplicaCrashed,
    ReplicaUnavailable,
    RequestTimeout,
    RestoreFailed,
    SnapshotCorrupted,
)
from repro.faults.injector import FaultInjector, FaultRecord
from repro.faults.model import (
    DEFAULT_DELAY_MS,
    IMAGE_CORRUPT,
    IO_SLOW,
    OOM_KILL,
    REPLICA_CRASH,
    RESTORE_FAIL,
    RESTORE_HANG,
    SITES,
    STORE_NODE_DOWN,
    STORE_PARTITION,
    STORE_SLOW_SHARD,
    FaultPlan,
    FaultSpec,
)
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy


def install(kernel, plan: FaultPlan) -> FaultInjector:
    """Install a fault injector on ``kernel`` (replacing any prior one)."""
    injector = FaultInjector(kernel, plan)
    kernel.faults = injector
    return injector


def uninstall(kernel) -> None:
    """Detach the injector; all sites revert to never-fire."""
    kernel.faults = None


def active(kernel) -> Optional[FaultInjector]:
    """The kernel's injector, or None when fault injection is off."""
    return kernel.faults


# -- zero-cost site helpers ---------------------------------------------------
#
# Hot paths call these with their kernel; a world without an injector
# takes the early-out branch and never touches the RNG.

def should_fire(kernel, site: str, detail: str = "") -> bool:
    """Does ``site`` misbehave at this crossing? (False when uninstalled.)"""
    injector = kernel.faults
    if injector is None:
        return False
    return injector.should_fire(site, detail=detail)


def extra_delay_ms(kernel, site: str) -> float:
    """The armed latency penalty for ``site`` (0 when uninstalled)."""
    injector = kernel.faults
    if injector is None:
        return 0.0
    return injector.delay_ms(site)


def corrupt_image(kernel, image, chunk_pages: int = 0) -> bool:
    """Fire the ``image.corrupt`` site against ``image``.

    When it fires the *stored* image object is tampered in place — the
    model of registry bit rot — so every later fetch also sees the
    corruption until the snapshot is repaired from the chunk store (or
    quarantined and rebaked). The blast radius is one page-store chunk:
    ``chunk_pages`` consecutive pages (default: the page store's chunk
    size), matching the granularity at which a content-addressed
    registry loses data. Returns whether corruption was injected.
    """
    if should_fire(kernel, IMAGE_CORRUPT, detail=image.image_id):
        if chunk_pages <= 0:
            from repro.criu.pagestore import CHUNK_PAGES
            chunk_pages = CHUNK_PAGES
        image.tamper(pages=chunk_pages)
        return True
    return False


__all__ = [
    "FaultInjector",
    "FaultRecord",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "DEFAULT_DELAY_MS",
    "SITES",
    "RESTORE_FAIL",
    "RESTORE_HANG",
    "IMAGE_CORRUPT",
    "IO_SLOW",
    "REPLICA_CRASH",
    "OOM_KILL",
    "STORE_NODE_DOWN",
    "STORE_PARTITION",
    "STORE_SLOW_SHARD",
    "install",
    "uninstall",
    "active",
    "should_fire",
    "extra_delay_ms",
    "corrupt_image",
    "PlatformError",
    "RestoreFailed",
    "SnapshotCorrupted",
    "ReplicaCrashed",
    "ReplicaUnavailable",
    "CapacityExhausted",
    "RequestTimeout",
]
