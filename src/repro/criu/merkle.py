"""Merkle-tree verification of content-addressed snapshot layers.

Flat digesting (:meth:`CheckpointImage.compute_digest`) re-hashes the
whole image on every verification, so repairing one 256 KiB chunk of a
99 MiB snapshot costs a full-image pass to prove the repair took. The
registry layout from PR 3 already decomposes an image into per-layer
chunk windows; this module roots those chunk ids in a Merkle tree —
leaves are chunk-group digests, one tree per layer, one root over the
layer roots — so:

* verifying one chunk means hashing one leaf plus its root path
  (``O(arity * depth)`` hash operations, not ``O(leaves)``);
* repairing a damaged chunk re-verifies only its subtree: the repaired
  leaf digest is recomputed, its ancestors are re-derived from cached
  sibling digests, and the new root is compared against the sealed one;
* incremental sealing reuses every untouched node — the tree records
  exactly how many hash operations each update cost (``hash_ops``), so
  tests can assert the sublinear bound instead of trusting it.

Everything here is pure bookkeeping: no simulated time, no RNG.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

# Children per internal node. 16 keeps the tree shallow (a 99 MiB
# image is ~400 chunks -> depth 3) while a single-leaf update still
# re-hashes only its own group path.
DEFAULT_ARITY = 16


def _combine(digests: Sequence[str]) -> str:
    hasher = hashlib.sha256()
    for digest in digests:
        hasher.update(digest.encode("utf-8"))
    return hasher.hexdigest()


class MerkleTree:
    """An arity-N hash tree over an ordered list of leaf digests.

    Levels are stored bottom-up: ``_levels[0]`` is the leaves,
    ``_levels[-1]`` is the single root digest. ``hash_ops`` counts
    every internal-node combine since construction — the currency the
    "re-verify only the damaged subtree" property is stated in.
    """

    def __init__(self, leaves: Sequence[str], arity: int = DEFAULT_ARITY) -> None:
        if arity < 2:
            raise ValueError(f"arity must be >= 2, got {arity}")
        self.arity = arity
        self.hash_ops = 0
        self._levels: List[List[str]] = [list(leaves)]
        self._build()

    def _build(self) -> None:
        level = self._levels[0]
        if not level:
            # Empty tree: a fixed root so images without pages still seal.
            self._levels.append([_combine(())])
            self.hash_ops += 1
            return
        while len(level) > 1:
            parents = []
            for i in range(0, len(level), self.arity):
                parents.append(_combine(level[i:i + self.arity]))
                self.hash_ops += 1
            self._levels.append(parents)
            level = parents

    # -- inspection ----------------------------------------------------------

    @property
    def root(self) -> str:
        return self._levels[-1][0]

    @property
    def leaf_count(self) -> int:
        return len(self._levels[0])

    @property
    def depth(self) -> int:
        """Internal levels above the leaves (0 for a 1-leaf tree)."""
        return len(self._levels) - 1

    def leaf(self, index: int) -> str:
        return self._levels[0][index]

    def verify_leaf(self, index: int, digest: str) -> bool:
        """Does ``digest`` match the sealed leaf? O(1), no hashing."""
        return self._levels[0][index] == digest

    # -- incremental update --------------------------------------------------

    def update_leaf(self, index: int, digest: str) -> int:
        """Replace one leaf and re-derive only its ancestor path.

        Sibling digests at every level are reused from the cached tree,
        so the cost is ``depth`` combines (each over ``arity`` cached
        children), not a rebuild. Returns the hash operations spent.
        """
        if not 0 <= index < len(self._levels[0]):
            raise IndexError(f"leaf {index} out of range "
                             f"(tree has {self.leaf_count})")
        before = self.hash_ops
        self._levels[0][index] = digest
        child_index = index
        for level_no in range(1, len(self._levels)):
            parent_index = child_index // self.arity
            child_level = self._levels[level_no - 1]
            start = parent_index * self.arity
            self._levels[level_no][parent_index] = _combine(
                child_level[start:start + self.arity])
            self.hash_ops += 1
            child_index = parent_index
        return self.hash_ops - before


@dataclass
class LayerTree:
    """One layer's Merkle tree plus the leaf lookup index."""

    name: str
    tree: MerkleTree
    # (vma_index, window_start) -> leaf position, so a damaged chunk
    # window resolves to its leaf in O(1) instead of a manifest scan.
    leaf_index: Dict[Tuple[int, int], int] = field(default_factory=dict)


class ImageMerkle:
    """Per-layer Merkle trees + a root over the layer roots.

    Built from a :class:`~repro.criu.pagestore.LayeredImage` at
    store-put time (the moment the registry trusts the content); the
    leaves are the layer's chunk ids, which are themselves digests over
    page content keys, so the root commits to every dumped page byte.
    """

    def __init__(self, layers: Sequence[LayerTree]) -> None:
        self.layers: Dict[str, LayerTree] = {lt.name: lt for lt in layers}
        self._order = [lt.name for lt in layers]
        self.sealed_root = self._compute_root()

    @classmethod
    def from_layered(cls, layered, arity: int = DEFAULT_ARITY) -> "ImageMerkle":
        """Build the tree set from a layered snapshot manifest."""
        layer_trees = []
        for layer in layered.layers:
            index = {(ref.vma_index, ref.window_start): pos
                     for pos, ref in enumerate(layer.chunk_refs)}
            layer_trees.append(LayerTree(
                name=layer.name,
                tree=MerkleTree([ref.chunk_id for ref in layer.chunk_refs],
                                arity=arity),
                leaf_index=index,
            ))
        return cls(layer_trees)

    def _compute_root(self) -> str:
        return _combine([f"{name}:{self.layers[name].tree.root}"
                         for name in self._order])

    # -- accounting ----------------------------------------------------------

    @property
    def hash_ops(self) -> int:
        return sum(lt.tree.hash_ops for lt in self.layers.values())

    @property
    def leaf_count(self) -> int:
        return sum(lt.tree.leaf_count for lt in self.layers.values())

    def locate(self, vma_index: int, window_start: int
               ) -> Optional[Tuple[str, int]]:
        """(layer name, leaf position) of one chunk window, O(1)."""
        for name, lt in self.layers.items():
            pos = lt.leaf_index.get((vma_index, window_start))
            if pos is not None:
                return name, pos
        return None

    # -- verification --------------------------------------------------------

    def verify_window(self, vma_index: int, window_start: int,
                      chunk_digest: str) -> bool:
        """Does one window's current digest match its sealed leaf?"""
        located = self.locate(vma_index, window_start)
        if located is None:
            return False
        name, pos = located
        return self.layers[name].tree.verify_leaf(pos, chunk_digest)

    def reverify_subtree(self, vma_index: int, window_start: int,
                         chunk_digest: str) -> int:
        """Fold a repaired window back in, re-deriving only its path.

        Returns the hash operations spent. After every damaged window
        has been folded back, :meth:`root_matches_seal` proves (or
        refutes) the repair without re-hashing the untouched leaves.
        """
        located = self.locate(vma_index, window_start)
        if located is None:
            raise KeyError(
                f"no sealed leaf for vma {vma_index} window {window_start}")
        name, pos = located
        return self.layers[name].tree.update_leaf(pos, chunk_digest)

    def root_matches_seal(self) -> bool:
        """Compare the current root against the root sealed at put."""
        return self._compute_root() == self.sealed_root
