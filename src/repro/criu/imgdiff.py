"""Checkpoint image diffing.

When a new function version bakes, how different is its snapshot from
the previous one? Image diffs answer registry-engineering questions
(how much would content-addressed/delta storage save?) and debugging
ones (which mapping grew?). The diff is structural: per-VMA page
residency and content-tag changes between two images.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.criu.images import CheckpointImage, VMADescriptor
from repro.osproc.memory import PAGE_SIZE, TAGS


@dataclass
class VmaDiff:
    """Change summary for one VMA label."""

    label: str
    status: str                 # "added" | "removed" | "common"
    pages_added: int = 0
    pages_removed: int = 0
    pages_retagged: int = 0
    pages_unchanged: int = 0

    @property
    def changed(self) -> bool:
        return (self.status != "common" or self.pages_added
                or self.pages_removed or self.pages_retagged)


@dataclass
class ImageDiff:
    """Full structural diff between two checkpoint images."""

    old_id: str
    new_id: str
    vmas: List[VmaDiff] = field(default_factory=list)

    @property
    def pages_added(self) -> int:
        return sum(v.pages_added for v in self.vmas)

    @property
    def pages_removed(self) -> int:
        return sum(v.pages_removed for v in self.vmas)

    @property
    def pages_retagged(self) -> int:
        return sum(v.pages_retagged for v in self.vmas)

    @property
    def pages_unchanged(self) -> int:
        return sum(v.pages_unchanged for v in self.vmas)

    @property
    def delta_bytes(self) -> int:
        """Bytes a delta encoding would ship (added + retagged pages)."""
        return (self.pages_added + self.pages_retagged) * PAGE_SIZE

    @property
    def dedup_ratio(self) -> float:
        """Fraction of the new image's pages already present unchanged."""
        total_new = self.pages_added + self.pages_retagged + self.pages_unchanged
        return self.pages_unchanged / total_new if total_new else 1.0

    def summary(self) -> str:
        changed = [v for v in self.vmas if v.changed]
        lines = [
            f"diff {self.old_id} -> {self.new_id}: "
            f"+{self.pages_added}p -{self.pages_removed}p "
            f"~{self.pages_retagged}p ={self.pages_unchanged}p "
            f"(dedup {self.dedup_ratio:.0%}, delta "
            f"{self.delta_bytes / (1024 * 1024):.1f} MiB)"
        ]
        for vma in changed:
            lines.append(
                f"  {vma.label:20s} [{vma.status}] "
                f"+{vma.pages_added} -{vma.pages_removed} ~{vma.pages_retagged}"
            )
        return "\n".join(lines)


def _page_map(vma: VMADescriptor) -> Dict[int, str]:
    return dict(zip(vma.resident_indices, vma.content_tags))


def _descriptor_arrays(vma: VMADescriptor):
    """(resident indices, interned tag ids) as numpy arrays."""
    count = len(vma.resident_indices)
    indices = np.fromiter(vma.resident_indices, dtype=np.int64, count=count)
    return indices, TAGS.intern_many(vma.content_tags)


def diff_images(old: CheckpointImage, new: CheckpointImage) -> ImageDiff:
    """Compute the structural diff from ``old`` to ``new``.

    Per-VMA page sets intersect as sorted index arrays (descriptor
    indices are ascending and unique) and retag detection compares
    interned tag ids — no per-page dict or set construction.
    """
    old_by_label = {v.label: v for v in old.vmas}
    new_by_label = {v.label: v for v in new.vmas}
    diff = ImageDiff(old_id=old.image_id, new_id=new.image_id)

    for label in sorted(set(old_by_label) | set(new_by_label)):
        old_vma = old_by_label.get(label)
        new_vma = new_by_label.get(label)
        if old_vma is None:
            diff.vmas.append(VmaDiff(
                label=label, status="added",
                pages_added=new_vma.resident_pages,
            ))
            continue
        if new_vma is None:
            diff.vmas.append(VmaDiff(
                label=label, status="removed",
                pages_removed=old_vma.resident_pages,
            ))
            continue
        old_idx, old_ids = _descriptor_arrays(old_vma)
        new_idx, new_ids = _descriptor_arrays(new_vma)
        common, old_pos, new_pos = np.intersect1d(
            old_idx, new_idx, assume_unique=True, return_indices=True)
        retagged = int((old_ids[old_pos] != new_ids[new_pos]).sum())
        diff.vmas.append(VmaDiff(
            label=label, status="common",
            pages_added=len(new_idx) - len(common),
            pages_removed=len(old_idx) - len(common),
            pages_retagged=retagged,
            pages_unchanged=len(common) - retagged,
        ))
    return diff
