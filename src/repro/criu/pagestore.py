"""Content-addressed page storage and layered checkpoint images.

The monolithic ``pages-1.img`` of a :class:`CheckpointImage` dumps the
full resident set per snapshot, so a registry of N functions sharing a
runtime stores the runtime's pages N times. This module refactors that
into the layout real registries use:

* :class:`PageStore` — a refcounted chunk store keyed by a SHA over
  page content tags (see :func:`repro.osproc.memory.page_content_key`).
  Chunks are fixed windows of :data:`CHUNK_PAGES` pages within one VMA;
  two snapshots whose windows carry identical content share one chunk.
* :class:`LayeredImage` — an OCI-style manifest splitting one snapshot
  into a *runtime base* layer (JVM text/heap/metaspace and friends),
  a *function code* layer, and — for warm snapshots with a stored
  ready-state sibling — a *warm delta* layer computed with
  :mod:`repro.criu.imgdiff`.

Everything here is pure bookkeeping: no simulated time is charged and
no RNG stream is consumed, so layering a store changes no experiment
output.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.criu.images import CheckpointImage, VMADescriptor
from repro.criu.imgdiff import diff_images
from repro.osproc.memory import PAGE_SIZE, TAGS, VMAKind

# Pages per content-addressed chunk (64 pages = 256 KiB), the dedup
# granularity. Coarser chunks mean fewer hashes but less sharing.
CHUNK_PAGES = 64

# Canonical layer names, most-shared first.
RUNTIME_BASE_LAYER = "runtime-base"
FUNCTION_CODE_LAYER = "function-code"
WARM_DELTA_LAYER = "warm-delta"

# VMA kinds whose contents come from the runtime image rather than the
# deployed function: text, class metadata, stacks, vdso. Their chunks
# dedup across every function on the same runtime.
_RUNTIME_BASE_KINDS = {
    VMAKind.CODE.value,
    VMAKind.METASPACE.value,
    VMAKind.STACK.value,
    VMAKind.VDSO.value,
}


def chunk_id(kind: str, prot: str,
             pairs: Sequence[Tuple[int, str]]) -> str:
    """Content identity of one chunk window.

    Hashes the window's page content keys at their *relative* offsets
    plus the mapping's kind/protection — deliberately excluding the
    VMA's address and label so identical content dedups across
    functions whose mappings land at different addresses.

    The digest is computed over one joined byte string (identical bytes
    to the original per-page ``update`` sequence, so ids are stable
    across the vectorization) with content keys resolved through the
    interning table's key cache.
    """
    tags = TAGS
    keys = tags.keys_of(tags.intern_many([tag for _, tag in pairs]))
    body = "".join(
        f"|{rel_index}:{key}"
        for (rel_index, _), key in zip(pairs, keys)
    )
    return hashlib.sha256(f"{kind}|{prot}{body}".encode("utf-8")).hexdigest()


def _chunk_id_from_keys(prefix: str, rel_indices: Sequence[int],
                        keys: Sequence[str]) -> str:
    """``chunk_id`` fast path over pre-resolved content keys."""
    body = "".join(f"|{r}:{k}" for r, k in zip(rel_indices, keys))
    return hashlib.sha256((prefix + body).encode("utf-8")).hexdigest()


@dataclass
class PageChunk:
    """One stored chunk: identity plus the tags needed to rebuild it."""

    chunk_id: str
    kind: str
    prot: str
    pairs: Tuple[Tuple[int, str], ...]  # (relative page index, content tag)

    @property
    def page_count(self) -> int:
        return len(self.pairs)

    @property
    def size_bytes(self) -> int:
        return self.page_count * PAGE_SIZE


@dataclass(frozen=True)
class ChunkRef:
    """A layered image's pointer to one chunk of one VMA."""

    vma_index: int     # position in CheckpointImage.vmas
    window_start: int  # absolute index of the window's first page
    chunk_id: str
    page_count: int

    @property
    def size_bytes(self) -> int:
        return self.page_count * PAGE_SIZE


@dataclass
class SnapshotLayer:
    """One layer of a layered snapshot image."""

    name: str
    chunk_refs: Tuple[ChunkRef, ...] = ()

    @property
    def page_count(self) -> int:
        return sum(ref.page_count for ref in self.chunk_refs)

    @property
    def logical_bytes(self) -> int:
        return self.page_count * PAGE_SIZE


@dataclass
class LayeredImage:
    """A snapshot decomposed into content-addressed layers."""

    image_id: str
    layers: List[SnapshotLayer] = field(default_factory=list)

    def layer(self, name: str) -> Optional[SnapshotLayer]:
        for layer in self.layers:
            if layer.name == name:
                return layer
        return None

    @property
    def chunk_refs(self) -> List[ChunkRef]:
        return [ref for layer in self.layers for ref in layer.chunk_refs]

    def ref_at(self, vma_index: int, window_start: int) -> Optional[ChunkRef]:
        """O(1) lookup of the ref covering one chunk window.

        The index is built lazily on first use and reused after — the
        targeted repair path resolves each dirty page to its chunk
        window without scanning the manifest.
        """
        index = self.__dict__.get("_ref_index")
        if index is None:
            index = {(ref.vma_index, ref.window_start): ref
                     for ref in self.chunk_refs}
            self.__dict__["_ref_index"] = index
        return index.get((vma_index, window_start))

    @property
    def chunk_ids(self) -> List[str]:
        return [ref.chunk_id for ref in self.chunk_refs]

    @property
    def logical_bytes(self) -> int:
        return sum(layer.logical_bytes for layer in self.layers)

    @property
    def manifest_digest(self) -> str:
        hasher = hashlib.sha256()
        for layer in self.layers:
            hasher.update(layer.name.encode("utf-8"))
            for ref in layer.chunk_refs:
                hasher.update(ref.chunk_id.encode("utf-8"))
        return hasher.hexdigest()

    def summary(self) -> str:
        parts = [
            f"{layer.name}={layer.logical_bytes / (1024 * 1024):.1f}MiB"
            for layer in self.layers if layer.chunk_refs
        ]
        return f"{self.image_id}: " + " ".join(parts)


class PageStore:
    """Refcounted content-addressed chunk storage.

    ``physical_bytes`` counts every distinct chunk once;
    ``logical_bytes`` counts each reference, i.e. what monolithic
    storage would hold. ``dedup_ratio`` is logical/physical — above 1.0
    whenever snapshots share content.
    """

    def __init__(self, chunk_pages: int = CHUNK_PAGES) -> None:
        if chunk_pages < 1:
            raise ValueError(f"chunk_pages must be >= 1, got {chunk_pages}")
        self.chunk_pages = chunk_pages
        self._chunks: Dict[str, PageChunk] = {}
        self._refs: Dict[str, int] = {}
        self.dedup_hits = 0  # add() calls resolved by an existing chunk

    # -- chunk lifecycle ---------------------------------------------------------

    def add(self, kind: str, prot: str,
            pairs: Sequence[Tuple[int, str]],
            cid: Optional[str] = None) -> str:
        """Store (or reference) one chunk window; returns its id.

        ``cid`` lets callers that already hold the window's identity
        (the memoized :func:`image_windows` walk) skip re-hashing it.
        """
        pairs = tuple(pairs)
        if cid is None:
            cid = chunk_id(kind, prot, pairs)
        if cid in self._chunks:
            self.dedup_hits += 1
        else:
            self._chunks[cid] = PageChunk(chunk_id=cid, kind=kind,
                                          prot=prot, pairs=pairs)
        self._refs[cid] = self._refs.get(cid, 0) + 1
        return cid

    def release(self, cid: str) -> None:
        """Drop one reference; the chunk is freed at refcount zero."""
        refs = self._refs.get(cid)
        if refs is None:
            raise KeyError(f"release of unreferenced chunk {cid[:12]}...")
        if refs <= 1:
            del self._refs[cid]
            del self._chunks[cid]
        else:
            self._refs[cid] = refs - 1

    def chunk(self, cid: str) -> PageChunk:
        chunk = self._chunks.get(cid)
        if chunk is None:
            raise KeyError(f"no chunk {cid[:12]}... in page store")
        return chunk

    def contains(self, cid: str) -> bool:
        return cid in self._chunks

    def refcount(self, cid: str) -> int:
        return self._refs.get(cid, 0)

    # -- accounting --------------------------------------------------------------

    @property
    def chunk_count(self) -> int:
        return len(self._chunks)

    @property
    def physical_bytes(self) -> int:
        return sum(c.size_bytes for c in self._chunks.values())

    @property
    def logical_bytes(self) -> int:
        return sum(self._chunks[cid].size_bytes * refs
                   for cid, refs in self._refs.items())

    @property
    def dedup_ratio(self) -> float:
        physical = self.physical_bytes
        return self.logical_bytes / physical if physical else 1.0


# ---------------------------------------------------------------------------
# Layering
# ---------------------------------------------------------------------------

def image_windows(
    image: CheckpointImage,
    chunk_pages: int = CHUNK_PAGES,
) -> Tuple[Tuple[int, int, Tuple[Tuple[int, str], ...], str], ...]:
    """Chunk windows of ``image`` with their identities, memoized.

    Returns ``(vma_index, window_start, pairs, chunk_id)`` per window.
    The window split is one vectorized pass over each descriptor's
    resident indices (no per-page Python walk), content keys resolve
    through the interning table once per VMA, and the result is cached
    on the image instance keyed by its mutation ``generation`` (bumped
    by :meth:`CheckpointImage.tamper` and repairs) — so layering,
    restore planning and the hot-chunk cache all share one walk per
    snapshot. Pure bookkeeping — no simulated time, no RNG.
    """
    generation = getattr(image, "generation", 0)
    cached = image.__dict__.get("_window_cache")
    if cached is not None and cached[0] == (generation, chunk_pages):
        return cached[1]
    out: List[Tuple[int, int, Tuple[Tuple[int, str], ...], str]] = []
    for vma_index, vma in enumerate(image.vmas):
        count = len(vma.resident_indices)
        if count == 0:
            continue
        indices = np.fromiter(vma.resident_indices, dtype=np.int64, count=count)
        keys = TAGS.keys_of(TAGS.intern_many(vma.content_tags))
        starts = (indices // chunk_pages) * chunk_pages
        rel = (indices - starts).tolist()
        # Window boundaries: positions where the chunk-aligned start
        # changes (resident indices are ascending within a descriptor).
        bounds = (np.nonzero(np.diff(starts))[0] + 1).tolist()
        bounds.append(count)
        starts_list = starts.tolist()
        tags = vma.content_tags
        prefix = f"{vma.kind}|{vma.prot}"
        lo = 0
        for hi in bounds:
            cid = _chunk_id_from_keys(prefix, rel[lo:hi], keys[lo:hi])
            pairs = tuple(zip(rel[lo:hi], tags[lo:hi]))
            out.append((vma_index, starts_list[lo], pairs, cid))
            lo = hi
    result = tuple(out)
    image.__dict__["_window_cache"] = ((generation, chunk_pages), result)
    return result


def image_chunk_index(
    image: CheckpointImage,
    chunk_pages: int = CHUNK_PAGES,
) -> Tuple[Tuple[int, int, str, int], ...]:
    """Per-window chunk identities of ``image``, memoized on the image.

    Returns ``(vma_index, window_start, chunk_id, size_bytes)`` per
    chunk window — what the hot-chunk cache keys restore-time lookups
    on (a projection of :func:`image_windows`, memoized the same way).
    """
    generation = getattr(image, "generation", 0)
    cached = image.__dict__.get("_chunk_index_cache")
    if cached is not None and cached[0] == (generation, chunk_pages):
        return cached[1]
    index = tuple(
        (vma_index, window_start, cid, len(pairs) * PAGE_SIZE)
        for vma_index, window_start, pairs, cid
        in image_windows(image, chunk_pages)
    )
    image.__dict__["_chunk_index_cache"] = ((generation, chunk_pages), index)
    return index


def image_chunk_count(image: CheckpointImage,
                      chunk_pages: int = CHUNK_PAGES) -> int:
    """Number of content-addressed chunk windows ``image`` spans.

    The unit the restore profiler reports chunk-fetch work in: an
    eager restore materializes every window, whatever fraction of
    them dedup to already-resident chunks. O(1) after the first call
    (shares :func:`image_chunk_index`'s memo). Pure bookkeeping — no
    simulated time, no RNG.
    """
    return len(image_chunk_index(image, chunk_pages))


def _windows(vma: VMADescriptor,
             chunk_pages: int) -> Iterable[Tuple[int, List[Tuple[int, str]]]]:
    """Yield (window_start, [(relative index, tag), ...]) per chunk.

    Reference per-page walk, kept for tests and ad-hoc callers; the
    hot paths go through the vectorized :func:`image_windows`.
    """
    window_start = -1
    pairs: List[Tuple[int, str]] = []
    for index, tag in zip(vma.resident_indices, vma.content_tags):
        start = (index // chunk_pages) * chunk_pages
        if start != window_start:
            if pairs:
                yield window_start, pairs
            window_start, pairs = start, []
        pairs.append((index - start, tag))
    if pairs:
        yield window_start, pairs


def _vma_layer(vma: VMADescriptor, warm_labels: frozenset) -> str:
    if vma.label in warm_labels:
        return WARM_DELTA_LAYER
    if vma.kind in _RUNTIME_BASE_KINDS:
        return RUNTIME_BASE_LAYER
    return FUNCTION_CODE_LAYER


def warm_delta_labels(base: CheckpointImage,
                      warm: CheckpointImage) -> frozenset:
    """VMA labels whose contents changed between ready and warm dumps.

    Computed with :mod:`repro.criu.imgdiff`: a VMA goes to the
    warm-delta layer when warming added, removed or retagged any of its
    pages (or mapped it fresh).
    """
    diff = diff_images(base, warm)
    return frozenset(v.label for v in diff.vmas
                     if v.changed and v.status != "removed")


def layer_image(image: CheckpointImage, store: PageStore,
                base: Optional[CheckpointImage] = None) -> LayeredImage:
    """Decompose ``image`` into layers, registering chunks in ``store``.

    ``base`` is the ready-state snapshot of the same function, when
    one exists and ``image`` is warm; VMAs it warmed go to the
    warm-delta layer. Pure bookkeeping — consumes no simulated time.
    """
    warm_labels = frozenset()
    if base is not None and image.warm:
        warm_labels = warm_delta_labels(base, image)
    refs: Dict[str, List[ChunkRef]] = {
        RUNTIME_BASE_LAYER: [],
        FUNCTION_CODE_LAYER: [],
        WARM_DELTA_LAYER: [],
    }
    layer_names = [_vma_layer(vma, warm_labels) for vma in image.vmas]
    for vma_index, window_start, pairs, cid in image_windows(
            image, store.chunk_pages):
        vma = image.vmas[vma_index]
        store.add(vma.kind, vma.prot, pairs, cid=cid)
        refs[layer_names[vma_index]].append(ChunkRef(
            vma_index=vma_index,
            window_start=window_start,
            chunk_id=cid,
            page_count=len(pairs),
        ))
    return LayeredImage(
        image_id=image.image_id,
        layers=[SnapshotLayer(name, tuple(chunk_refs))
                for name, chunk_refs in refs.items()],
    )


def rebuild_vma_pages(
    image: CheckpointImage,
    layered: LayeredImage,
    store: PageStore,
) -> Dict[int, Tuple[Tuple[int, ...], Tuple[str, ...]]]:
    """Reconstruct each VMA's (resident_indices, content_tags) from chunks.

    The inverse of :func:`layer_image`; sorted by absolute page index so
    the result matches the descriptor layout a dump produces.
    """
    per_vma: Dict[int, List[Tuple[int, str]]] = {}
    for ref in layered.chunk_refs:
        chunk = store.chunk(ref.chunk_id)
        pages = per_vma.setdefault(ref.vma_index, [])
        for rel_index, tag in chunk.pairs:
            pages.append((ref.window_start + rel_index, tag))
    rebuilt: Dict[int, Tuple[Tuple[int, ...], Tuple[str, ...]]] = {}
    for vma_index in range(len(image.vmas)):
        pages = sorted(per_vma.get(vma_index, []))
        rebuilt[vma_index] = (
            tuple(i for i, _ in pages),
            tuple(t for _, t in pages),
        )
    return rebuilt
