"""Binary serialization of checkpoint images.

CRIU images live on disk (and, in the paper's §5 integration, inside
container image layers); §7 raises "checkpoint/restore as a service"
questions — bigger code sizes, concurrent snapshots — that need
transportable snapshots. This module defines a compact, versioned
binary format for :class:`~repro.criu.images.CheckpointImage`:

    magic "CRIUREPR" | u16 version | json header | page-record stream

The header carries all metadata (identity, VMAs, fds, runtime state);
page *content tags* are run-length encoded in the record stream since
realistic snapshots contain long runs of identically-tagged pages.
Round-tripping is exact (hypothesis-verified in the tests).
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Tuple

from repro.criu.images import (
    CheckpointImage,
    FdDescriptor,
    VMADescriptor,
    build_image_files,
)

MAGIC = b"CRIUREPR"
# v2 adds the sealed content digest to the header so integrity
# verification survives archive round-trips; v1 blobs still decode.
VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)

_HEADER_LEN = struct.Struct(">I")
_VERSION_STRUCT = struct.Struct(">H")
_RUN_STRUCT = struct.Struct(">II")  # (start_index, run_length)


class SerializationError(Exception):
    """Malformed or incompatible serialized image."""


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------

def _encode_runs(indices: Tuple[int, ...], tags: Tuple[str, ...]) -> List[Dict[str, Any]]:
    """Run-length encode (sorted) resident pages by content tag."""
    runs: List[Dict[str, Any]] = []
    i = 0
    n = len(indices)
    while i < n:
        j = i
        while (j + 1 < n
               and indices[j + 1] == indices[j] + 1
               and tags[j + 1] == tags[i]):
            j += 1
        runs.append({"s": indices[i], "n": j - i + 1, "t": tags[i]})
        i = j + 1
    return runs


def _decode_runs(runs: List[Dict[str, Any]]) -> Tuple[Tuple[int, ...], Tuple[str, ...]]:
    indices: List[int] = []
    tags: List[str] = []
    for run in runs:
        start, count, tag = run["s"], run["n"], run["t"]
        if count <= 0:
            raise SerializationError(f"non-positive run length {count}")
        indices.extend(range(start, start + count))
        tags.extend([tag] * count)
    return tuple(indices), tuple(tags)


def _vma_to_dict(vma: VMADescriptor) -> Dict[str, Any]:
    return {
        "start": vma.start,
        "length": vma.length,
        "kind": vma.kind,
        "prot": vma.prot,
        "label": vma.label,
        "file_path": vma.file_path,
        "file_offset": vma.file_offset,
        "file_size": vma.file_size,
        "runs": _encode_runs(vma.resident_indices, vma.content_tags),
    }


def _vma_from_dict(data: Dict[str, Any]) -> VMADescriptor:
    indices, tags = _decode_runs(data["runs"])
    return VMADescriptor(
        start=data["start"],
        length=data["length"],
        kind=data["kind"],
        prot=data["prot"],
        label=data["label"],
        file_path=data["file_path"],
        file_offset=data["file_offset"],
        file_size=data["file_size"],
        resident_indices=indices,
        content_tags=tags,
    )


def _fd_to_dict(fd: FdDescriptor) -> Dict[str, Any]:
    return {
        "fd": fd.fd,
        "path": fd.path,
        "offset": fd.offset,
        "flags": fd.flags,
        "is_socket": fd.is_socket,
        "file_size": fd.file_size,
    }


def _fd_from_dict(data: Dict[str, Any]) -> FdDescriptor:
    return FdDescriptor(**data)


def _classes_to_jsonable(state: Any) -> Any:
    """Make runtime snapshot state JSON-safe (it may carry app objects).

    Only plain data survives serialization; the restore side rebuilds
    the app object from the function registry via ``app_name``.
    """
    if state is None:
        return None
    app = state.get("app")
    return {
        "kind": state["kind"],
        "booted": state["booted"],
        "ready": state["ready"],
        "requests_served": state["requests_served"],
        "app_name": app.name if app is not None else None,
        "extra": state.get("extra", {}),
    }


def serialize_image(image: CheckpointImage) -> bytes:
    """Encode ``image`` into the transportable binary format."""
    image.validate()
    header = {
        "image_id": image.image_id,
        "pid": image.pid,
        "comm": image.comm,
        "argv": image.argv,
        "created_at_ms": image.created_at_ms,
        "namespace_ids": image.namespace_ids,
        "parent_image_id": image.parent_image_id,
        "warm": image.warm,
        "digest": image.digest,
        "meta_digest": image.meta_digest,
        "vmas": [_vma_to_dict(v) for v in image.vmas],
        "fds": [_fd_to_dict(f) for f in image.fds],
        "runtime_state": _classes_to_jsonable(image.runtime_state),
    }
    payload = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return (MAGIC + _VERSION_STRUCT.pack(VERSION)
            + _HEADER_LEN.pack(len(payload)) + payload)


def deserialize_image(blob: bytes) -> CheckpointImage:
    """Decode a serialized image.

    The runtime state's application object is rebuilt from the function
    registry when ``app_name`` is known there; otherwise the state is
    restored app-less (the caller provides the app at start time).
    """
    if len(blob) < len(MAGIC) + _VERSION_STRUCT.size + _HEADER_LEN.size:
        raise SerializationError("blob too short for header")
    if blob[:len(MAGIC)] != MAGIC:
        raise SerializationError("bad magic (not a serialized checkpoint)")
    offset = len(MAGIC)
    (version,) = _VERSION_STRUCT.unpack_from(blob, offset)
    if version not in _SUPPORTED_VERSIONS:
        raise SerializationError(f"unsupported format version {version}")
    offset += _VERSION_STRUCT.size
    (length,) = _HEADER_LEN.unpack_from(blob, offset)
    offset += _HEADER_LEN.size
    payload = blob[offset:offset + length]
    if len(payload) != length:
        raise SerializationError(
            f"truncated header: {len(payload)} of {length} bytes"
        )
    try:
        header = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"corrupt header: {exc}") from exc

    runtime_state = header["runtime_state"]
    if runtime_state is not None:
        app = None
        app_name = runtime_state.pop("app_name", None)
        if app_name is not None:
            from repro.functions.base import make_app
            try:
                app = make_app(app_name)
            except KeyError:
                app = None
        runtime_state["app"] = app

    image = CheckpointImage(
        image_id=header["image_id"],
        pid=header["pid"],
        comm=header["comm"],
        argv=list(header["argv"]),
        created_at_ms=header["created_at_ms"],
        namespace_ids=dict(header["namespace_ids"]),
        vmas=[_vma_from_dict(v) for v in header["vmas"]],
        fds=[_fd_from_dict(f) for f in header["fds"]],
        runtime_state=runtime_state,
        parent_image_id=header["parent_image_id"],
        warm=header["warm"],
        digest=header.get("digest"),  # absent in v1 blobs
        meta_digest=header.get("meta_digest"),  # absent before v2+merkle
    )
    build_image_files(image)
    image.validate()
    return image
