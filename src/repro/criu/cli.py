"""Subprocess orchestration of a real ``criu`` binary.

The paper's prototype shells out to CRIU; this driver does the same
when a binary is installed (``criu`` on PATH or an explicit path). On
hosts without CRIU — like most CI sandboxes — construction still works
for command-line planning (``dry_run=True`` records the argv instead of
executing), and :meth:`CriuCli.require` raises a clear error for code
paths that genuinely need the binary.
"""

from __future__ import annotations

import os
import shutil
import subprocess
from dataclasses import dataclass, field
from typing import List, Optional, Sequence


class CriuUnavailableError(RuntimeError):
    """Raised when an operation needs a real criu binary and none exists."""


@dataclass
class CriuResult:
    """Outcome of one criu invocation."""

    argv: List[str]
    returncode: int
    stdout: str = ""
    stderr: str = ""
    executed: bool = True

    @property
    def ok(self) -> bool:
        return self.returncode == 0


class CriuCli:
    """Builds and runs ``criu dump`` / ``criu restore`` command lines."""

    def __init__(self, criu_path: Optional[str] = None, dry_run: bool = False) -> None:
        self.criu_path = criu_path or shutil.which("criu")
        self.dry_run = dry_run
        self.invocations: List[List[str]] = []

    @property
    def available(self) -> bool:
        return self.criu_path is not None

    def require(self) -> str:
        if self.criu_path is None:
            raise CriuUnavailableError(
                "no criu binary found on PATH; install criu or use the "
                "simulated engine (repro.criu.CheckpointEngine)"
            )
        return self.criu_path

    # -- command construction ------------------------------------------------------

    def dump_argv(
        self,
        pid: int,
        images_dir: str,
        leave_running: bool = True,
        shell_job: bool = True,
        tcp_established: bool = False,
        track_mem: bool = False,
        prev_images_dir: Optional[str] = None,
    ) -> List[str]:
        """Argv for ``criu dump`` with the flags the prototype used."""
        argv = [self.criu_path or "criu", "dump", "-t", str(pid),
                "-D", images_dir, "-v4", "-o", "dump.log"]
        if leave_running:
            argv.append("--leave-running")
        if shell_job:
            argv.append("--shell-job")
        if tcp_established:
            argv.append("--tcp-established")
        if track_mem:
            argv.append("--track-mem")
        if prev_images_dir:
            argv += ["--prev-images-dir", prev_images_dir]
        return argv

    def restore_argv(
        self,
        images_dir: str,
        shell_job: bool = True,
        restore_detached: bool = True,
        tcp_established: bool = False,
        lazy_pages: bool = False,
    ) -> List[str]:
        """Argv for ``criu restore``."""
        argv = [self.criu_path or "criu", "restore",
                "-D", images_dir, "-v4", "-o", "restore.log"]
        if shell_job:
            argv.append("--shell-job")
        if restore_detached:
            argv.append("--restore-detached")
        if tcp_established:
            argv.append("--tcp-established")
        if lazy_pages:
            argv.append("--lazy-pages")
        return argv

    def check_argv(self) -> List[str]:
        return [self.criu_path or "criu", "check"]

    # -- execution -------------------------------------------------------------------

    def _run(self, argv: Sequence[str], timeout: float = 60.0) -> CriuResult:
        self.invocations.append(list(argv))
        if self.dry_run:
            return CriuResult(argv=list(argv), returncode=0, executed=False)
        self.require()
        proc = subprocess.run(
            list(argv), capture_output=True, text=True, timeout=timeout, check=False
        )
        return CriuResult(
            argv=list(argv),
            returncode=proc.returncode,
            stdout=proc.stdout,
            stderr=proc.stderr,
        )

    def check(self) -> CriuResult:
        """Run ``criu check`` (kernel feature probing)."""
        return self._run(self.check_argv())

    def dump(self, pid: int, images_dir: str, **kwargs) -> CriuResult:
        if not self.dry_run:
            os.makedirs(images_dir, exist_ok=True)
        return self._run(self.dump_argv(pid, images_dir, **kwargs))

    def restore(self, images_dir: str, **kwargs) -> CriuResult:
        return self._run(self.restore_argv(images_dir, **kwargs))
