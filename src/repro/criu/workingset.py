"""REAP-style working-set tracking for snapshot restores.

Ustiugov et al. (REAP) observe that a restored function touches only a
small fraction of its snapshot's pages before producing its first
response; recording that working set on the first restore lets every
later restore eagerly map just the recorded pages and lazily fault the
rest. The tracker here implements that protocol over the simulated
memory model:

* a *recording* restore clears the soft-dirty bits after transmute and
  captures, at the first post-restore response, every page the replica
  touched (plus the stack/code/vdso floor criu always populates);
* a *prefetching* restore maps only the recorded set up front and, at
  its own first response, audits hits vs. misses — misses both charge
  a page-fault penalty and grow the record, so the set converges.

Records key on the image's sealed content digest: a rebaked (different)
image records afresh, while byte-identical snapshots share a record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro import obs
from repro.criu.images import CheckpointImage
from repro.osproc.kernel import Kernel
from repro.osproc.memory import VMAKind
from repro.osproc.process import Process

# Pages criu populates eagerly regardless of access history: stacks,
# executable text and the vdso (the restore trampoline runs on them).
_FLOOR_KINDS = {VMAKind.STACK, VMAKind.CODE, VMAKind.VDSO}

# Simulated penalty per prefetch-miss page fault (userfaultfd round
# trip); only charged when a prefetching restore mispredicted.
PREFETCH_MISS_FAULT_MS = 0.002

PageId = Tuple[int, int]  # (vma start address, page index)


def _image_key(image: CheckpointImage) -> str:
    return image.digest or image.image_id


@dataclass
class WorkingSetRecord:
    """The recorded first-response working set of one snapshot."""

    image_key: str
    pages: FrozenSet[PageId]
    recorded_at_ms: float
    resident_pages: int          # snapshot resident set at record time
    prefetch_restores: int = 0   # restores served from this record

    @property
    def page_count(self) -> int:
        return len(self.pages)

    @property
    def fraction(self) -> float:
        """Recorded working set as a fraction of the resident set."""
        if self.resident_pages <= 0:
            return 1.0
        return min(1.0, self.page_count / self.resident_pages)


@dataclass
class _PendingCapture:
    image_key: str
    process: Process
    record: Optional[WorkingSetRecord]  # None => recording restore


class WorkingSetTracker:
    """Per-world registry of working-set records and in-flight captures.

    Installed lazily on ``kernel.working_sets`` by the first
    WORKING_SET restore; subscribes to the runtime's post-restore
    response probe to finalize captures.
    """

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.records: Dict[str, WorkingSetRecord] = {}
        self._pending: Dict[int, _PendingCapture] = {}
        kernel.probes.on_enter("runtime.post_restore_response",
                               self._on_first_response)

    @classmethod
    def install(cls, kernel: Kernel) -> "WorkingSetTracker":
        if kernel.working_sets is None:
            kernel.working_sets = cls(kernel)
        return kernel.working_sets

    # -- restore-side API --------------------------------------------------------

    def record_for(self, image: CheckpointImage) -> Optional[WorkingSetRecord]:
        return self.records.get(_image_key(image))

    def begin_recording(self, proc: Process, image: CheckpointImage) -> None:
        """Arm a recording capture on a freshly restored process."""
        self._arm(proc, image, record=None)

    def begin_prefetch(self, proc: Process, image: CheckpointImage,
                       record: WorkingSetRecord) -> None:
        """Arm a hit/miss audit on a prefetching restore."""
        record.prefetch_restores += 1
        self._arm(proc, image, record=record)

    # -- internals ---------------------------------------------------------------

    def _arm(self, proc: Process, image: CheckpointImage,
             record: Optional[WorkingSetRecord]) -> None:
        # The restore engine touches every mapped page during
        # transmute; reset soft-dirty so the bits accumulated from here
        # on reflect what the *replica* touches, as clear_refs does.
        proc.address_space.clear_soft_dirty()
        proc.payload["ws_capture_pending"] = True
        self._pending[proc.pid] = _PendingCapture(
            image_key=_image_key(image), process=proc, record=record)

    def _touched_pages(self, proc: Process) -> Set[PageId]:
        touched: Set[PageId] = set()
        for vma in proc.address_space.vmas:
            floor = vma.kind in _FLOOR_KINDS
            start = vma.start
            for index in vma.touched_indices(floor=floor).tolist():
                touched.add((start, index))
        return touched

    def _on_first_response(self, probe_record) -> None:
        capture = self._pending.pop(probe_record.pid, None)
        if capture is None:
            return
        kernel = self.kernel
        proc = capture.process
        touched = self._touched_pages(proc)
        if capture.record is None:
            record = WorkingSetRecord(
                image_key=capture.image_key,
                pages=frozenset(touched),
                recorded_at_ms=kernel.clock.now,
                resident_pages=sum(v.resident_pages
                                   for v in proc.address_space.vmas),
            )
            self.records[capture.image_key] = record
            obs.count(kernel, "ws_record_created_total")
            obs.gauge(kernel, "ws_record_pages", float(record.page_count))
            return
        # Prefetch audit: pages touched but absent from the record were
        # demand-faulted after resume — charge them and grow the record.
        record = capture.record
        hits = len(touched & record.pages)
        misses = touched - record.pages
        obs.count(kernel, "ws_prefetch_hit_pages_total", value=float(hits))
        obs.count(kernel, "ws_prefetch_miss_pages_total",
                  value=float(len(misses)))
        if touched:
            obs.gauge(kernel, "ws_prefetch_hit_ratio",
                      hits / len(touched))
        if misses:
            fault_ms = len(misses) * PREFETCH_MISS_FAULT_MS
            kernel.clock.advance(fault_ms)
            if kernel.profile is not None:
                kernel.profile.record("restore.lazy-page-fault", fault_ms,
                                      pid=proc.pid, pages=len(misses),
                                      source="prefetch-miss")
            self.records[capture.image_key] = WorkingSetRecord(
                image_key=record.image_key,
                pages=record.pages | misses,
                recorded_at_ms=record.recorded_at_ms,
                resident_pages=record.resident_pages,
                prefetch_restores=record.prefetch_restores,
            )
