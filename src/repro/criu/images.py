"""Checkpoint image file set.

CRIU writes a directory of ``*.img`` files per dump; the model mirrors
the important ones (``pstree``, ``core``, ``mm``, ``pagemap``,
``pages-1``, ``files``, ``inventory``) with faithful size accounting —
the ``pages-1.img`` size is exactly the dumped resident set, which is
the quantity that drives restore latency in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.osproc.memory import PAGE_SIZE


@dataclass(frozen=True)
class VMADescriptor:
    """Serialized form of one VMA."""

    start: int
    length: int
    kind: str
    prot: str
    label: str
    file_path: Optional[str]
    file_offset: int
    file_size: int
    resident_indices: tuple
    content_tags: tuple  # parallel to resident_indices

    @property
    def resident_pages(self) -> int:
        return len(self.resident_indices)


@dataclass(frozen=True)
class FdDescriptor:
    """Serialized form of one open file descriptor."""

    fd: int
    path: str
    offset: int
    flags: str
    is_socket: bool
    file_size: int = 0


@dataclass
class ImageFile:
    """One ``*.img`` file inside the image directory."""

    name: str
    size_bytes: int
    payload: Any = None


@dataclass
class CheckpointImage:
    """A complete dump of one process."""

    image_id: str
    pid: int
    comm: str
    argv: List[str]
    created_at_ms: float
    namespace_ids: Dict[str, int]
    vmas: List[VMADescriptor]
    fds: List[FdDescriptor]
    runtime_state: Optional[Dict[str, Any]]
    files: Dict[str, ImageFile] = field(default_factory=dict)
    parent_image_id: Optional[str] = None  # set for incremental pre-dumps
    warm: bool = False  # snapshot taken after >= 1 request (prebake-warmup)

    # -- size accounting ----------------------------------------------------------

    @property
    def pages_bytes(self) -> int:
        return sum(v.resident_pages for v in self.vmas) * PAGE_SIZE

    @property
    def total_bytes(self) -> int:
        return sum(f.size_bytes for f in self.files.values())

    @property
    def total_mib(self) -> float:
        return self.total_bytes / (1024 * 1024)

    @property
    def resident_pages(self) -> int:
        return sum(v.resident_pages for v in self.vmas)

    def file(self, name: str) -> ImageFile:
        try:
            return self.files[name]
        except KeyError:
            raise KeyError(
                f"image {self.image_id!r} has no file {name!r}; has {sorted(self.files)}"
            ) from None

    def validate(self) -> None:
        """Internal consistency checks a restore relies on."""
        if not self.vmas:
            raise ValueError(f"image {self.image_id!r} has no VMAs")
        pages_file = self.files.get("pages-1.img")
        if pages_file is None:
            raise ValueError(f"image {self.image_id!r} is missing pages-1.img")
        if pages_file.size_bytes != self.pages_bytes:
            raise ValueError(
                f"pages-1.img size {pages_file.size_bytes} != dumped pages "
                f"{self.pages_bytes}"
            )
        for vma in self.vmas:
            if len(vma.resident_indices) != len(vma.content_tags):
                raise ValueError(
                    f"VMA {vma.label!r}: resident indices and tags out of sync"
                )
            if vma.resident_pages * PAGE_SIZE > vma.length:
                raise ValueError(
                    f"VMA {vma.label!r}: more resident pages than the mapping holds"
                )


def build_image_files(image: CheckpointImage) -> None:
    """Populate the ``*.img`` file entries from the image's contents."""
    meta_per_vma = 64
    meta_per_fd = 48
    image.files = {
        "inventory.img": ImageFile("inventory.img", 128),
        "pstree.img": ImageFile("pstree.img", 96, payload={"pid": image.pid}),
        f"core-{image.pid}.img": ImageFile(f"core-{image.pid}.img", 512,
                                           payload={"comm": image.comm, "argv": image.argv}),
        f"mm-{image.pid}.img": ImageFile(
            f"mm-{image.pid}.img", meta_per_vma * len(image.vmas), payload=image.vmas
        ),
        f"pagemap-{image.pid}.img": ImageFile(
            f"pagemap-{image.pid}.img",
            16 * sum(v.resident_pages for v in image.vmas),
        ),
        "pages-1.img": ImageFile("pages-1.img", image.pages_bytes),
        "files.img": ImageFile("files.img", meta_per_fd * len(image.fds),
                               payload=image.fds),
        "namespaces.img": ImageFile("namespaces.img", 64,
                                    payload=image.namespace_ids),
    }
