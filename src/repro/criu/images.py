"""Checkpoint image file set.

CRIU writes a directory of ``*.img`` files per dump; the model mirrors
the important ones (``pstree``, ``core``, ``mm``, ``pagemap``,
``pages-1``, ``files``, ``inventory``) with faithful size accounting —
the ``pages-1.img`` size is exactly the dumped resident set, which is
the quantity that drives restore latency in the paper.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from repro.faults.errors import SnapshotCorrupted
from repro.osproc.memory import PAGE_SIZE


def _stable(obj: Any, _depth: int = 0) -> Any:
    """Project ``obj`` into a JSON-able form that is stable across runs.

    ``repr`` of plain objects embeds memory addresses, which would make
    content digests differ between identically seeded runs; instead,
    objects are projected as class name + sorted attribute dict.
    """
    if _depth > 12:
        return f"<depth-capped {type(obj).__name__}>"
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    if isinstance(obj, dict):
        return {str(k): _stable(v, _depth + 1)
                for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = sorted(obj, key=str) if isinstance(obj, (set, frozenset)) else obj
        return [_stable(v, _depth + 1) for v in items]
    attrs = getattr(obj, "__dict__", None)
    if attrs is not None:
        projected = {k: _stable(v, _depth + 1) for k, v in sorted(attrs.items())}
        projected["__class__"] = type(obj).__name__
        return projected
    return f"<{type(obj).__name__}>"


@dataclass(frozen=True)
class VMADescriptor:
    """Serialized form of one VMA."""

    start: int
    length: int
    kind: str
    prot: str
    label: str
    file_path: Optional[str]
    file_offset: int
    file_size: int
    resident_indices: tuple
    content_tags: tuple  # parallel to resident_indices

    @property
    def resident_pages(self) -> int:
        return len(self.resident_indices)


@dataclass(frozen=True)
class FdDescriptor:
    """Serialized form of one open file descriptor."""

    fd: int
    path: str
    offset: int
    flags: str
    is_socket: bool
    file_size: int = 0


@dataclass
class ImageFile:
    """One ``*.img`` file inside the image directory."""

    name: str
    size_bytes: int
    payload: Any = None


@dataclass
class CheckpointImage:
    """A complete dump of one process."""

    image_id: str
    pid: int
    comm: str
    argv: List[str]
    created_at_ms: float
    namespace_ids: Dict[str, int]
    vmas: List[VMADescriptor]
    fds: List[FdDescriptor]
    runtime_state: Optional[Dict[str, Any]]
    files: Dict[str, ImageFile] = field(default_factory=dict)
    parent_image_id: Optional[str] = None  # set for incremental pre-dumps
    warm: bool = False  # snapshot taken after >= 1 request (prebake-warmup)
    digest: Optional[str] = None  # content digest sealed at dump time
    meta_digest: Optional[str] = None  # digest of the non-page fields (sealed)
    # Mutation bookkeeping: bumped on any in-place content change so
    # memoized derived data (chunk indexes) invalidates itself.
    generation: int = 0
    # Damage hints recorded by tamper(): (vma_index, absolute page
    # index) per corrupted page, plus whether non-page metadata was
    # hit. A Merkle-verified repair re-checks only these subtrees; an
    # empty set with a drifted digest means "location unknown" and
    # callers fall back to a full scan.
    dirty_pages: set = field(default_factory=set)
    dirty_meta: bool = False

    # -- size accounting ----------------------------------------------------------

    @property
    def pages_bytes(self) -> int:
        return sum(v.resident_pages for v in self.vmas) * PAGE_SIZE

    @property
    def total_bytes(self) -> int:
        return sum(f.size_bytes for f in self.files.values())

    @property
    def total_mib(self) -> float:
        return self.total_bytes / (1024 * 1024)

    @property
    def resident_pages(self) -> int:
        return sum(v.resident_pages for v in self.vmas)

    def file(self, name: str) -> ImageFile:
        try:
            return self.files[name]
        except KeyError:
            raise KeyError(
                f"image {self.image_id!r} has no file {name!r}; has {sorted(self.files)}"
            ) from None

    # -- integrity ---------------------------------------------------------------

    def compute_digest(self) -> str:
        """SHA-256 over everything a restore consumes.

        Covers the dumped memory contents (VMA layout + per-page
        content tags), the fd table, the runtime state and the image
        file sizes — any bit rot in those shows up as a mismatch
        against the sealed :attr:`digest`.
        """
        payload = {
            "pid": self.pid,
            "comm": self.comm,
            "argv": self.argv,
            "namespaces": {k: v for k, v in sorted(self.namespace_ids.items())},
            "vmas": [
                [v.start, v.length, v.kind, v.prot, v.label, v.file_path,
                 v.file_offset, v.file_size, list(v.resident_indices),
                 list(v.content_tags)]
                for v in self.vmas
            ],
            "fds": [
                [f.fd, f.path, f.offset, f.flags, f.is_socket, f.file_size]
                for f in self.fds
            ],
            "runtime_state": _stable(self.runtime_state),
            "files": {name: f.size_bytes for name, f in sorted(self.files.items())},
            "warm": self.warm,
        }
        encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(encoded).hexdigest()

    def compute_meta_digest(self) -> str:
        """SHA-256 over everything a restore consumes *except* pages.

        The complement of the per-chunk Merkle leaves: identity, VMA
        geometry, fd table, runtime state and file sizes. Together
        with a matching Merkle root this proves integrity without
        re-hashing any page content — the incremental verification the
        targeted repair path relies on.
        """
        payload = {
            "pid": self.pid,
            "comm": self.comm,
            "argv": self.argv,
            "namespaces": {k: v for k, v in sorted(self.namespace_ids.items())},
            "vmas": [
                [v.start, v.length, v.kind, v.prot, v.label, v.file_path,
                 v.file_offset, v.file_size, list(v.resident_indices)]
                for v in self.vmas
            ],
            "fds": [
                [f.fd, f.path, f.offset, f.flags, f.is_socket, f.file_size]
                for f in self.fds
            ],
            "runtime_state": _stable(self.runtime_state),
            "files": {name: f.size_bytes for name, f in sorted(self.files.items())},
            "warm": self.warm,
        }
        encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(encoded).hexdigest()

    def seal(self) -> str:
        """Record the content digests (done once, at dump time)."""
        self.digest = self.compute_digest()
        self.meta_digest = self.compute_meta_digest()
        return self.digest

    def verify_integrity(self) -> None:
        """Check contents against the sealed digest.

        Unsealed images (hand-built in tests, pre-digest dumps) pass
        trivially; a sealed image whose contents drifted raises
        :class:`SnapshotCorrupted`.
        """
        if self.digest is None:
            return
        actual = self.compute_digest()
        if actual != self.digest:
            raise SnapshotCorrupted(
                f"image {self.image_id!r} failed integrity verification: "
                f"digest {actual[:12]}... != sealed {self.digest[:12]}...",
                image_id=self.image_id,
            )

    def tamper(self, pages: int = 1, first_page: int = 0) -> None:
        """Corrupt the dumped page contents in place (fault injection).

        Flips the content tags of ``pages`` resident pages starting at
        resident offset ``first_page`` in the first VMA that has any —
        the smallest change that keeps :meth:`validate`'s structural
        checks passing while the content digest no longer matches,
        exactly like flipped bits in ``pages-1.img``. ``pages`` sized
        to a page-store chunk models losing one registry chunk.
        """
        self.generation += 1
        for index, vma in enumerate(self.vmas):
            if vma.content_tags:
                tags = list(vma.content_tags)
                start = min(first_page, len(tags) - 1)
                for offset in range(start, min(start + pages, len(tags))):
                    tags[offset] = tags[offset] + "\x00corrupt"
                    # Record *where* the damage landed (absolute page
                    # index) so repair can verify just that subtree.
                    self.dirty_pages.add(
                        (index, vma.resident_indices[offset]))
                self.vmas[index] = replace(vma, content_tags=tuple(tags))
                return
        self.comm = self.comm + "\x00corrupt"
        self.dirty_meta = True

    def validate(self) -> None:
        """Internal consistency checks a restore relies on."""
        if not self.vmas:
            raise ValueError(f"image {self.image_id!r} has no VMAs")
        pages_file = self.files.get("pages-1.img")
        if pages_file is None:
            raise ValueError(f"image {self.image_id!r} is missing pages-1.img")
        if pages_file.size_bytes != self.pages_bytes:
            raise ValueError(
                f"pages-1.img size {pages_file.size_bytes} != dumped pages "
                f"{self.pages_bytes}"
            )
        for vma in self.vmas:
            if len(vma.resident_indices) != len(vma.content_tags):
                raise ValueError(
                    f"VMA {vma.label!r}: resident indices and tags out of sync"
                )
            if vma.resident_pages * PAGE_SIZE > vma.length:
                raise ValueError(
                    f"VMA {vma.label!r}: more resident pages than the mapping holds"
                )


def build_image_files(image: CheckpointImage) -> None:
    """Populate the ``*.img`` file entries from the image's contents."""
    meta_per_vma = 64
    meta_per_fd = 48
    image.files = {
        "inventory.img": ImageFile("inventory.img", 128),
        "pstree.img": ImageFile("pstree.img", 96, payload={"pid": image.pid}),
        f"core-{image.pid}.img": ImageFile(f"core-{image.pid}.img", 512,
                                           payload={"comm": image.comm, "argv": image.argv}),
        f"mm-{image.pid}.img": ImageFile(
            f"mm-{image.pid}.img", meta_per_vma * len(image.vmas), payload=image.vmas
        ),
        f"pagemap-{image.pid}.img": ImageFile(
            f"pagemap-{image.pid}.img",
            16 * sum(v.resident_pages for v in image.vmas),
        ),
        "pages-1.img": ImageFile("pages-1.img", image.pages_bytes),
        "files.img": ImageFile("files.img", meta_per_fd * len(image.fds),
                               payload=image.fds),
        "namespaces.img": ImageFile("namespaces.img", 64,
                                    payload=image.namespace_ids),
    }
