"""Live process migration via iterative checkpointing.

CRIU's pre-dump/dump workflow: run N *pre-dump* passes that copy pages
while the process keeps running (clearing the soft-dirty bits each
round), then freeze for a *final* incremental dump that only copies
pages dirtied since the last pass. Downtime is the final dump plus the
restore — the trade-off studied by every live-migration system, and the
natural extension of the paper's snapshot machinery (its §3 discusses
exactly this checkpoint-frequency tension for HPC).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.criu.checkpoint import CheckpointEngine
from repro.criu.images import CheckpointImage
from repro.criu.restore import RestoreEngine
from repro.osproc.kernel import Kernel
from repro.osproc.process import Process


class MigrationError(Exception):
    """Migration workflow failure."""


@dataclass
class MigrationReport:
    """Timing and volume accounting for one migration."""

    rounds: int
    pre_dump_images: List[CheckpointImage] = field(default_factory=list)
    final_image: Optional[CheckpointImage] = None
    restored_pid: int = -1
    total_ms: float = 0.0
    downtime_ms: float = 0.0   # final dump + restore (process paused)

    @property
    def pre_dump_pages(self) -> int:
        return sum(i.resident_pages for i in self.pre_dump_images)

    @property
    def final_pages(self) -> int:
        return self.final_image.resident_pages if self.final_image else 0


class Migrator:
    """Drives pre-dump rounds and the final switchover."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.checkpoint_engine = CheckpointEngine(kernel)
        self.restore_engine = RestoreEngine(kernel)

    def migrate(
        self,
        target: Process,
        pre_dump_rounds: int = 1,
        workload_between_rounds: Optional[Callable[[], None]] = None,
    ) -> MigrationReport:
        """Migrate ``target``: pre-dump rounds, final dump, restore.

        ``workload_between_rounds`` models the process continuing to
        run (and dirty pages) while pre-dumps stream in the background.
        The donor is killed at switchover; the restored process is the
        survivor.
        """
        if pre_dump_rounds < 0:
            raise MigrationError(
                f"pre_dump_rounds must be >= 0, got {pre_dump_rounds}")
        if not target.alive:
            raise MigrationError(f"target pid {target.pid} is not alive")
        kernel = self.kernel
        started = kernel.clock.now
        report = MigrationReport(rounds=pre_dump_rounds)

        parent: Optional[CheckpointImage] = None
        for round_index in range(pre_dump_rounds):
            if round_index == 0:
                image = self.checkpoint_engine.pre_dump(target)
            else:
                image = self.checkpoint_engine.dump(
                    target, leave_running=True, parent_image=parent)
                kernel.clear_refs(target.pid)
            report.pre_dump_images.append(image)
            parent = image
            if workload_between_rounds is not None:
                workload_between_rounds()

        # Switchover: the process is paused from here until restore done.
        downtime_start = kernel.clock.now
        final = self.checkpoint_engine.dump(
            target, leave_running=False, parent_image=parent)
        report.final_image = final

        # The restore must see the *union* of all rounds: merge the
        # page sets (later rounds override earlier ones). Pages shipped
        # by pre-dumps are already resident at the destination, so the
        # switchover restore only pays the full per-MiB cost for the
        # final round's pages; pre-staged ones map at in-memory cost.
        merged = _merge_image_chain(report.pre_dump_images + [final])
        costs = kernel.costs
        final_mib = final.total_mib
        prestaged_mib = max(0.0, merged.total_mib - final_mib)
        switchover_ms = (
            costs.restore_base_ms
            + final_mib * costs.restore_per_mib_ms
            + prestaged_mib * costs.restore_per_mib_ms
            * costs.restore_in_memory_factor
        )
        restored = self.restore_engine.restore(
            merged, duration_override_ms=switchover_ms)
        report.restored_pid = restored.pid
        report.downtime_ms = kernel.clock.now - downtime_start
        report.total_ms = kernel.clock.now - started
        return report


def _merge_image_chain(chain: List[CheckpointImage]) -> CheckpointImage:
    """Merge an incremental image chain into one restorable image.

    Non-page metadata (VMAs layout, fds, runtime state) comes from the
    last image; resident pages accumulate across the chain with
    last-writer-wins per (vma, page index).
    """
    if not chain:
        raise MigrationError("cannot merge an empty image chain")
    last = chain[-1]
    # label -> {index: tag}
    pages: dict = {}
    layouts: dict = {}
    for image in chain:
        for vma in image.vmas:
            layouts[vma.label] = vma
            slot = pages.setdefault(vma.label, {})
            for index, tag in zip(vma.resident_indices, vma.content_tags):
                slot[index] = tag

    from repro.criu.images import VMADescriptor, build_image_files

    merged_vmas = []
    for vma in last.vmas:
        slot = pages.get(vma.label, {})
        indices = tuple(sorted(slot))
        merged_vmas.append(VMADescriptor(
            start=vma.start,
            length=vma.length,
            kind=vma.kind,
            prot=vma.prot,
            label=vma.label,
            file_path=vma.file_path,
            file_offset=vma.file_offset,
            file_size=vma.file_size,
            resident_indices=indices,
            content_tags=tuple(slot[i] for i in indices),
        ))
    merged = CheckpointImage(
        image_id=f"{last.image_id}-merged",
        pid=last.pid,
        comm=last.comm,
        argv=list(last.argv),
        created_at_ms=last.created_at_ms,
        namespace_ids=dict(last.namespace_ids),
        vmas=merged_vmas,
        fds=list(last.fds),
        runtime_state=last.runtime_state,
        warm=last.warm,
    )
    build_image_files(merged)
    merged.validate()
    return merged
