"""CRIU-style checkpoint/restore engine.

Implements the protocol described in the paper's §3.2 over the
simulated OS: freeze the target's threads, inject the parasite blob via
ptrace, walk ``/proc/<pid>/pagemap`` to dump every resident page into
an image file set, then detach; on restore, the criu process transmutes
itself into the checkpointed process by recreating namespaces, open
files and memory mappings. :mod:`repro.criu.cli` additionally drives a
*real* ``criu`` binary via subprocess when one is installed.
"""

from repro.criu.images import CheckpointImage, ImageFile, VMADescriptor, FdDescriptor
from repro.criu.checkpoint import CheckpointEngine, CheckpointError
from repro.criu.restore import RestoreEngine, RestoreError, RestoreMode
from repro.criu.cli import CriuCli, CriuUnavailableError
from repro.criu.migrate import MigrationReport, Migrator
from repro.criu.serialize import deserialize_image, serialize_image
from repro.criu.imgdiff import ImageDiff, diff_images
from repro.criu.pagestore import (
    CHUNK_PAGES,
    LayeredImage,
    PageStore,
    layer_image,
    rebuild_vma_pages,
)
from repro.criu.shardstore import (
    DegradedRestoreReport,
    HashRing,
    ShardedSnapshotStore,
)
from repro.criu.workingset import WorkingSetRecord, WorkingSetTracker

__all__ = [
    "Migrator",
    "MigrationReport",
    "serialize_image",
    "deserialize_image",
    "ImageDiff",
    "diff_images",
    "CheckpointImage",
    "ImageFile",
    "VMADescriptor",
    "FdDescriptor",
    "CheckpointEngine",
    "CheckpointError",
    "RestoreEngine",
    "RestoreError",
    "RestoreMode",
    "CriuCli",
    "CriuUnavailableError",
    "CHUNK_PAGES",
    "PageStore",
    "LayeredImage",
    "layer_image",
    "rebuild_vma_pages",
    "WorkingSetRecord",
    "WorkingSetTracker",
    "ShardedSnapshotStore",
    "DegradedRestoreReport",
    "HashRing",
]
